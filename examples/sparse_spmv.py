#!/usr/bin/env python3
"""Sparse matrix-vector product: the paper's flagship kernel (§6.3).

Shows the journey the paper describes:

* the **two-level** structure (``teams distribute`` + ``parallel for``)
  forces the teams region into generic mode — an extra main warp per team,
  per-row argument staging, two block barriers per row;
* the **three-level** structure (combined TDPF + ``simd``) runs the teams
  region SPMD and workshares each row across a SIMD group — sweep the
  group size like Fig 9;
* the **reduction extension** (§7 future work) replaces the paper's atomic
  updates and removes the contention entirely.

Run:  python examples/sparse_spmv.py
"""

from repro.gpu.costmodel import benchmark_profile
from repro.gpu.device import Device
from repro.kernels import sparse_matvec as spmv
from repro.perf.report import ascii_bars


def main() -> None:
    dev = Device(benchmark_profile())
    data = spmv.build_data(dev, n_rows=256, n_cols=256, mean_nnz=12)
    lens = data.csr.row_lengths()
    print(
        f"CSR matrix: {data.n_rows} rows, {data.csr.nnz} nonzeros, "
        f"row lengths {lens.min()}..{lens.max()} (mean {lens.mean():.1f})"
    )

    base = spmv.run_two_level(dev, data, num_teams=16, team_size=32)
    assert data.check()
    print(
        f"\ntwo-level baseline: {base.cycles:,.0f} cycles "
        f"(teams {base.cfg.teams_mode.value}, block_dim {base.cfg.block_dim} "
        f"— note the extra main warp)"
    )
    print(f"  worker wakeups: {base.runtime.worker_wakeups} "
          f"(one per worker per row: the state machine at work)")

    print("\nthree-level simd version, group-size sweep:")
    speedups = {}
    for g in (2, 4, 8, 16, 32):
        r = spmv.run_simd(dev, data, simd_len=g, num_teams=16, team_size=128)
        assert data.check()
        speedups[g] = base.cycles / r.cycles
    print(ascii_bars(speedups))
    best = max(speedups, key=speedups.get)
    print(f"best group size: {best} ({speedups[best]:.2f}x; paper: 3.5x at 8)")

    r_atomic = spmv.run_simd(dev, data, simd_len=8, num_teams=16, team_size=128)
    r_red = spmv.run_simd_reduction(dev, data, simd_len=8, num_teams=16, team_size=128)
    assert data.check()
    print(
        f"\nreduction extension at group 8: {r_red.cycles:,.0f} cycles vs "
        f"{r_atomic.cycles:,.0f} with atomics "
        f"({r_atomic.cycles / r_red.cycles:.2f}x faster, "
        f"{r_atomic.counters.atomics} atomics eliminated)"
    )


if __name__ == "__main__":
    main()
