#!/usr/bin/env python3
"""Quickstart: offload a loop nest with three levels of parallelism.

This walks the basic workflow:

1. build a simulated device and move data to it;
2. describe the computation as an OpenMP directive tree
   (``target teams distribute parallel for`` + ``simd``);
3. compile — the SPMDization analysis picks execution modes;
4. launch with a SIMD group size and read back results + cost counters.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Device, omp
from repro.codegen.spmdization import analyze_modes

N_ROWS = 64
ROW = 32  # small inner loop: the simd level's home turf


def main() -> None:
    dev = Device()  # A100-like profile
    x = dev.from_array("x", np.arange(N_ROWS * ROW, dtype=np.float64))
    y = dev.from_array("y", np.zeros(N_ROWS * ROW))

    # The innermost loop body: one element of one row.  Bodies are
    # generator functions; every device action goes through `tc`.
    def element(tc, ivs, view):
        i, j = ivs  # enclosing loop variables, outermost first
        idx = i * ROW + j
        v = yield from tc.load(view["x"], idx)
        yield from tc.compute("fma")
        yield from tc.store(view["y"], idx, 2.0 * v + 1.0)

    # Three levels: rows across teams x SIMD groups, elements across the
    # lanes of each group.  The simd loop is tightly nested, so the
    # analysis will run everything in SPMD mode — no state machines.
    program = omp.target(
        omp.teams_distribute_parallel_for(
            N_ROWS,
            nested=omp.simd(ROW, body=element),
        )
    )

    report = analyze_modes(program)
    print("SPMDization analysis:")
    print(report.describe())
    print()

    result = omp.launch(
        dev, program, num_teams=4, team_size=128, simd_len=8,
        args={"x": x, "y": y},
    )

    expected = 2.0 * np.arange(N_ROWS * ROW) + 1.0
    assert np.allclose(y.to_numpy(), expected), "device result mismatch!"

    print(f"launch: {result.cfg.describe()}")
    print(f"cost-model cycles: {result.cycles:,.0f}")
    s = result.summary()
    print(
        f"counters: {s['rounds']:.0f} rounds, {s['global_sectors']:.0f} DRAM "
        f"sectors, {s['syncwarps']:.0f} warp syncs, "
        f"{s['syncblocks']:.0f} block barriers"
    )
    from repro.perf.report import cost_breakdown

    print()
    print(cost_breakdown(result))
    print("result verified against NumPy ✓")


if __name__ == "__main__":
    main()
