#!/usr/bin/env python3
"""Host-device data management: keep data resident across kernels.

The paper's background (§3) notes the host "handles memory allocation and
movement between the host and target devices".  This example shows why the
structured ``target data`` region matters: iterating a stencil with a
region around the whole loop moves each array once, while mapping per
launch pays the PCIe toll every iteration.

Run:  python examples/host_data.py
"""

import numpy as np

from repro import Device, omp
from repro.host import target_data

N = 1024
ITERS = 8


def smooth_body(tc, ivs, view):
    (i,) = ivs
    if i == 0 or i == N - 1:
        v = yield from tc.load(view["src"], i)
        yield from tc.store(view["dst"], i, v)
        return
    vals = yield from tc.load_vec(view["src"], (i - 1, i, i + 1))
    yield from tc.compute("fma", 2)
    yield from tc.store(view["dst"], i, sum(vals) / 3.0)


def reference(host):
    ref = host.copy()
    for _ in range(ITERS):
        new = ref.copy()
        new[1:-1] = (ref[:-2] + ref[1:-1] + ref[2:]) / 3.0
        ref = new
    return ref


def main() -> None:
    rng = np.random.default_rng(3)
    host = rng.standard_normal(N)
    kernel = omp.compile(
        omp.target(omp.teams_distribute_parallel_for(N, body=smooth_body)),
        ("dst", "src"),
    )

    # Style A — naive: a fresh tofrom mapping around every launch.
    dev = Device()
    a = host.copy()
    b = np.zeros(N)
    naive_us = 0.0
    for _ in range(ITERS):
        with target_data(dev, src=(a, "tofrom"), dst=(b, "tofrom")) as region:
            omp.launch(dev, kernel, num_teams=4, team_size=128,
                       args=region.buffers)
        naive_us += region.counters.transfer_us
        a, b = b, a
    assert np.allclose(a, reference(host))
    print(f"per-launch mapping: {ITERS} iterations, {naive_us:8.1f} us of "
          f"host-device transfers")

    # Style B — resident: one region around the whole iteration loop.
    dev = Device()
    a2 = host.copy()
    b2 = np.zeros(N)
    with target_data(dev, src=(a2, "tofrom"), dst=(b2, "tofrom")) as region:
        bufs = region.buffers
        src, dst = bufs["src"], bufs["dst"]
        for _ in range(ITERS):
            omp.launch(dev, kernel, num_teams=4, team_size=128,
                       args={"src": src, "dst": dst})
            src, dst = dst, src
    # After an even number of swaps the result sits in the buffer mapped
    # to `src`'s host array... the final swap means results are in a2/b2
    # depending on parity; check the right one.
    result = a2 if ITERS % 2 == 0 else b2
    assert np.allclose(result, reference(host))
    print(f"resident region:    {ITERS} iterations, "
          f"{region.counters.transfer_us:8.1f} us of host-device transfers")
    print(f"\ntransfer savings: {naive_us / region.counters.transfer_us:.1f}x "
          f"({region.counters.h2d_transfers} h2d + "
          f"{region.counters.d2h_transfers} d2h instead of "
          f"{ITERS * 4})")


if __name__ == "__main__":
    main()
