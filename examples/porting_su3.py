#!/usr/bin/env python3
"""Porting guide: taking SU3_bench from two levels to three (§6.3, §6.5).

The paper's developer-recommendations section distilled:

* find the small inner loop each thread runs serially (here: the
  36-iteration link/element loop of the SU(3) multiply);
* apply ``simd`` to it — if it is tightly nested, everything stays SPMD
  and the directive is essentially free;
* sweep ``simdlen`` and prefer sizes that evenly divide the trip count
  ("choosing sizes that best evenly divide our loop trip count").

Run:  python examples/porting_su3.py
"""

from repro.gpu.costmodel import benchmark_profile
from repro.gpu.device import Device
from repro.kernels import su3
from repro.perf.report import ascii_bars


def main() -> None:
    dev = Device(benchmark_profile())
    data = su3.build_data(dev, sites=1024)
    print(
        f"SU3_bench: {data.sites} lattice sites x {su3.LINKS} links, "
        f"{su3.INNER_TRIP}-iteration inner loop (4 links x 9 complex outputs)"
    )

    print("\nstep 1 — original two-level port (inner loop serial per thread):")
    base = su3.run_baseline(dev, data, num_teams=16, team_size=64)
    assert data.check()
    print(f"  {base.cycles:,.0f} cycles; teams={base.cfg.teams_mode.value}, "
          f"parallel={base.cfg.parallel_mode.value}")

    print("\nstep 2 — add `simd` to the 36-iteration loop (tightly nested):")
    r = su3.run_simd(dev, data, simd_len=4, num_teams=16, team_size=64)
    assert data.check()
    print(f"  both levels stay SPMD (no state machine: "
          f"{r.runtime.simd_wakeups} wakeups); {r.cycles:,.0f} cycles "
          f"({base.cycles / r.cycles:.2f}x)")

    print("\nstep 3 — sweep simdlen (36 = 4·9, so 4 wastes no lanes; "
          "32 idles 28 of 64 slots):")
    speed = {}
    for g in (2, 4, 8, 16, 32):
        rg = su3.run_simd(dev, data, simd_len=g, num_teams=16, team_size=64)
        assert data.check()
        waste = (g * -(-su3.INNER_TRIP // g) - su3.INNER_TRIP) / (
            g * -(-su3.INNER_TRIP // g)
        )
        speed[f"g={g} (waste {waste:4.0%})"] = base.cycles / rg.cycles
    print(ascii_bars(speed, fmt="{:>18}"))
    print(
        "\npaper's guidance (§6.5): prefer group sizes that evenly divide "
        "the trip count; when several fit, measure — small differences "
        "remain."
    )


if __name__ == "__main__":
    main()
