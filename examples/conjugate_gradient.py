#!/usr/bin/env python3
"""Conjugate gradient: a real solver composed from the public API.

Shows what a downstream application looks like: a sparse SPD system solved
by CG, with

* the SpMV using three-level parallelism (TDPF over rows + ``simd`` over
  each row's nonzeros, with the **reduction extension** storing row sums);
* dot products and AXPYs as two-level kernels;
* the host orchestrating iterations and convergence checks while all
  vectors stay device-resident inside one ``target data`` region.

Run:  python examples/conjugate_gradient.py
"""

import numpy as np

from repro import Device, omp
from repro.host import target_data

N = 96
TOL = 1e-8


def make_spd_csr(n, density=0.08, seed=31):
    """Random sparse symmetric positive-definite matrix in CSR form."""
    rng = np.random.default_rng(seed)
    dense = np.where(rng.random((n, n)) < density, rng.standard_normal((n, n)), 0.0)
    dense = (dense + dense.T) / 2.0
    dense += np.eye(n) * (np.abs(dense).sum(axis=1) + 1.0)  # diagonal dominance
    row_ptr = [0]
    col_idx, values = [], []
    for i in range(n):
        cols = np.nonzero(dense[i])[0]
        col_idx.extend(cols)
        values.extend(dense[i, cols])
        row_ptr.append(len(col_idx))
    return (
        dense,
        np.array(row_ptr, dtype=np.int64),
        np.array(col_idx, dtype=np.int64),
        np.array(values, dtype=np.float64),
    )


# --- kernels -----------------------------------------------------------


def spmv_kernel(n):
    """y = A @ p, rows across teams x groups, nonzeros across lanes."""

    def row_pre(tc, ivs, view):
        (row,) = ivs
        bounds = yield from tc.load_vec(view["row_ptr"], (row, row + 1))
        yield from tc.compute("alu")
        return {"lo": int(bounds[0]), "len": int(bounds[1] - bounds[0])}

    def element(tc, ivs, view):
        row, j = ivs
        e = int(view["lo"]) + j
        col = yield from tc.load(view["col_idx"], e)
        a = yield from tc.load(view["values"], e)
        p = yield from tc.load(view["p"], int(col))
        yield from tc.compute("fma")
        return float(a) * float(p)

    def store_row(tc, ivs, view, total):
        (row,) = ivs
        yield from tc.store(view["ap"], row, total)

    inner = omp.simd(
        omp.loop(lambda view, row: view["len"], body=element,
                 uses=("col_idx", "values", "p")),
        reduction=("add", store_row),
    )
    tree = omp.target(
        omp.teams_distribute_parallel_for(
            n, pre=row_pre, captures=[("lo", "i64"), ("len", "i64")],
            uses=("row_ptr", "ap"), nested=inner,
        )
    )
    return omp.compile(tree, ("row_ptr", "col_idx", "values", "p", "ap"),
                       name="cg.spmv")


def dot_kernel(n):
    """out[0] = u . v (atomic accumulation)."""

    def body(tc, ivs, view):
        (i,) = ivs
        u = yield from tc.load(view["u"], i)
        v = yield from tc.load(view["v"], i)
        yield from tc.compute("fma")
        yield from tc.atomic_add(view["out"], 0, float(u) * float(v))

    tree = omp.target(omp.teams_distribute_parallel_for(n, body=body))
    return omp.compile(tree, ("out", "u", "v"), name="cg.dot")


def axpy_kernel(n):
    """y = y + alpha * x (alpha staged in a 1-element buffer)."""

    def body(tc, ivs, view):
        (i,) = ivs
        alpha = yield from tc.load(view["alpha"], 0)
        x = yield from tc.load(view["x"], i)
        y = yield from tc.load(view["y"], i)
        yield from tc.compute("fma")
        yield from tc.store(view["y"], i, float(y) + float(alpha) * float(x))

    tree = omp.target(omp.teams_distribute_parallel_for(n, body=body))
    return omp.compile(tree, ("alpha", "x", "y"), name="cg.axpy")


def xpay_kernel(n):
    """p = r + beta * p."""

    def body(tc, ivs, view):
        (i,) = ivs
        beta = yield from tc.load(view["beta"], 0)
        r = yield from tc.load(view["r"], i)
        p = yield from tc.load(view["p"], i)
        yield from tc.compute("fma")
        yield from tc.store(view["p"], i, float(r) + float(beta) * float(p))

    tree = omp.target(omp.teams_distribute_parallel_for(n, body=body))
    return omp.compile(tree, ("beta", "p", "r"), name="cg.xpay")


# --- solver --------------------------------------------------------------


def solve(n=N, verbose=True):
    dense, row_ptr, col_idx, values = make_spd_csr(n)
    rng = np.random.default_rng(7)
    b = rng.standard_normal(n)

    dev = Device()
    geometry = dict(num_teams=4, team_size=64, simd_len=8)
    spmv, dot, axpy, xpay = (k(n) for k in (spmv_kernel, dot_kernel, axpy_kernel, xpay_kernel))
    total_cycles = 0.0

    with target_data(
        dev,
        row_ptr=(row_ptr, "to"), col_idx=(col_idx, "to"), values=(values, "to"),
        x=(np.zeros(n), "tofrom"), r=(b.copy(), "to"), p=(b.copy(), "to"),
        ap=(np.zeros(n), "alloc"), scal=(np.zeros(1), "alloc"),
    ) as region:
        bufs = region.buffers
        scal = bufs["scal"]

        def run(kernel, args, simd_len=1):
            nonlocal total_cycles
            g = dict(geometry)
            g["simd_len"] = simd_len
            res = omp.launch(dev, kernel, args=args, **g)
            total_cycles += res.cycles
            return res

        def device_dot(u, v):
            scal.fill_from(np.zeros(1))
            run(dot, {"out": scal, "u": bufs[u], "v": bufs[v]})
            return float(scal.read(0))

        rs_old = device_dot("r", "r")
        iters = 0
        for iters in range(1, n + 1):
            run(spmv, {k: bufs[k] for k in ("row_ptr", "col_idx", "values", "p", "ap")},
                simd_len=geometry["simd_len"])
            p_ap = device_dot("p", "ap")
            alpha = rs_old / p_ap
            scal.fill_from(np.array([alpha]))
            run(axpy, {"alpha": scal, "x": bufs["p"], "y": bufs["x"]})
            scal.fill_from(np.array([-alpha]))
            run(axpy, {"alpha": scal, "x": bufs["ap"], "y": bufs["r"]})
            rs_new = device_dot("r", "r")
            if verbose and iters % 8 == 0:
                print(f"  iter {iters:3d}: residual {np.sqrt(rs_new):.3e}")
            if np.sqrt(rs_new) < TOL:
                break
            scal.fill_from(np.array([rs_new / rs_old]))
            run(xpay, {"beta": scal, "p": bufs["p"], "r": bufs["r"]})
            rs_old = rs_new
        x_host = np.array(bufs["x"].to_numpy())

    expect = np.linalg.solve(dense, b)
    err = np.max(np.abs(x_host - expect))
    if verbose:
        print(f"\nconverged in {iters} iterations; max |x - x_ref| = {err:.2e}")
        print(f"device cycles across all launches: {total_cycles:,.0f}")
        c = region.counters
        print(f"host-device traffic: {c.h2d_bytes + c.d2h_bytes:,} bytes in "
              f"{c.h2d_transfers + c.d2h_transfers} transfers "
              f"(vectors stayed resident)")
    return x_host, expect, iters


def main() -> None:
    print(f"solving a {N}x{N} sparse SPD system with device-side CG")
    x, expect, iters = solve()
    assert np.allclose(x, expect, atol=1e-6), "CG result mismatch!"
    print("verified against numpy.linalg.solve ✓")


if __name__ == "__main__":
    main()
