#!/usr/bin/env python3
"""Execution-mode cost study on a 3-D stencil (the paper's Fig 10).

The same 7-point Laplace stencil in three builds:

* ``no_simd`` — classic two-level offload over the collapsed loop nest;
* ``spmd_simd`` — third level tightly nested ⇒ everything SPMD; the simd
  machinery should cost (almost) nothing;
* ``generic_simd`` — sequential per-(i,j) code breaks the tight nesting ⇒
  the parallel region runs generic: SIMD worker state machine, variable
  sharing space, warp barriers.  The paper measured ≈15 % for this.

Run:  python examples/stencil_modes.py
"""

from repro.gpu.costmodel import benchmark_profile
from repro.gpu.device import Device
from repro.kernels import laplace3d
from repro.perf.report import ascii_bars


def main() -> None:
    dev = Device(benchmark_profile())
    data = laplace3d.build_data(dev, nx=16, ny=16, nz=66)
    print(f"grid: {data.nx}x{data.ny}x{data.nz}, interior updated with a "
          "7-point stencil\n")

    cycles = {}
    for variant in ("no_simd", "spmd_simd", "generic_simd"):
        r = laplace3d.run(dev, data, variant, simd_len=32,
                          num_teams=16, team_size=128)
        assert data.check(), variant
        cycles[variant] = r.cycles
        extra = ""
        if variant == "generic_simd":
            extra = (
                f"  <- {r.runtime.simd_wakeups} simd-worker wakeups, "
                f"{r.counters.syncwarps} warp barriers"
            )
        print(
            f"{variant:<13} teams={r.cfg.teams_mode.value:<5} "
            f"parallel={r.cfg.parallel_mode.value:<8} "
            f"cycles={r.cycles:>10,.0f}{extra}"
        )

    base = cycles["no_simd"]
    rel = {v: base / c for v, c in cycles.items()}
    print("\nrelative speedup vs no_simd (paper: SPMD ~1.0, generic ~0.85):")
    print(ascii_bars(rel))
    print(
        "\ntakeaway (paper §6.5): tight nesting is free — only pay for "
        "generic mode when the code truly needs sequential per-iteration "
        "work between the parallel and simd levels."
    )


if __name__ == "__main__":
    main()
