#!/usr/bin/env python3
"""Pragma-string frontend, guarded SPMDization, and the AMD fallback.

Three shorter tours in one script:

1. build a program from OpenMP pragma text (the mini-Clang frontend);
2. force teams SPMD on a split construct — the *guarded SPMDization* the
   paper cites as future work — and verify identical results;
3. launch generic-mode simd on the AMD profile and watch the §5.4.1
   demotion: no wavefront barriers ⇒ simd loops run sequentially.

Run:  python examples/pragma_and_portability.py
"""

import numpy as np

from repro import Device, omp
from repro.codegen.canonical_loop import CanonicalLoop
from repro.codegen.frontend import pragma
from repro.gpu.costmodel import amd_mi100
from repro.runtime.icv import ExecMode

N, M = 128, 32


def element(tc, ivs, view):
    i, j = ivs
    idx = i * M + j
    v = yield from tc.load(view["x"], idx)
    yield from tc.store(view["y"], idx, v * v)


def make_args(dev):
    return {
        "x": dev.from_array("x", np.arange(N * M, dtype=np.float64)),
        "y": dev.from_array("y", np.zeros(N * M)),
    }


def expected():
    return np.arange(N * M, dtype=np.float64) ** 2


def part1_pragma_frontend():
    print("— 1. pragma frontend —")
    dev = Device()
    args = make_args(dev)
    inner = pragma("simd simdlen(8)", CanonicalLoop(trip_count=M, body=element))
    tree = pragma(
        "target teams distribute parallel for schedule(static_cyclic)",
        CanonicalLoop(trip_count=N, nested=inner),
    )
    r = omp.launch(dev, tree, num_teams=4, team_size=64, simd_len=8, args=args)
    assert np.allclose(args["y"].to_numpy(), expected())
    print(f"  compiled from pragma text; modes: teams={r.cfg.teams_mode.value}, "
          f"parallel={r.cfg.parallel_mode.value}; verified ✓\n")


def part2_guarded_spmdization():
    print("— 2. guarded SPMDization —")
    results = {}
    for label, mode in (("analysis (generic)", ExecMode.AUTO),
                        ("forced SPMD", ExecMode.SPMD)):
        dev = Device()
        args = make_args(dev)
        tree = omp.target(
            omp.teams_distribute(N, nested=omp.parallel_for(M, body=element)),
            teams_mode=mode,
        )
        r = omp.launch(dev, tree, num_teams=4, team_size=64, args=args)
        results[label] = (args["y"].to_numpy(), r.cycles, r.cfg.teams_mode)
        print(f"  {label:<19} teams={r.cfg.teams_mode.value:<7} "
              f"cycles={r.cycles:>9,.0f}")
    a, b = results.values()
    assert np.array_equal(a[0], b[0]) and np.allclose(a[0], expected())
    print(f"  identical results; SPMDization saved "
          f"{(1 - b[1] / a[1]) * 100:.0f}% of the cycles ✓\n")


def part3_amd_demotion():
    print("— 3. AMD wavefront fallback (§5.4.1) —")

    def pre(tc, ivs, view):
        yield from tc.compute("alu")
        return {"base": int(ivs[0]) * M}

    def body(tc, ivs, view):
        i, j = ivs
        idx = int(view["base"]) + j
        v = yield from tc.load(view["x"], idx)
        yield from tc.store(view["y"], idx, v * v)

    tree = omp.target(
        omp.teams_distribute_parallel_for(
            N, pre=pre, captures=[("base", "i64")],
            nested=omp.simd(M, body=body), uses=(),
        )
    )
    dev = Device(amd_mi100())
    args = make_args(dev)
    r = omp.launch(dev, tree, num_teams=2, team_size=128, simd_len=8, args=args)
    assert np.allclose(args["y"].to_numpy(), expected())
    print(f"  requested simd_len=8, effective={r.cfg.simd_len} "
          f"(demoted={r.cfg.simd_demoted})")
    print(f"  {r.runtime.simd_sequential} simd regions ran sequentially — no "
          "wavefront-level barrier, no generic-mode SIMD, results still "
          "correct ✓")


if __name__ == "__main__":
    part1_pragma_frontend()
    part2_guarded_spmdization()
    part3_amd_demotion()
