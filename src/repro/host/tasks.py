"""Deferred target tasks: ``target … nowait`` with ``depend`` clauses.

The paper's related work (§2) highlights runtime support for "concurrent
execution of OpenMP target tasks" via hidden helper threads (Tian et al.
[26]); this module provides that host-side substrate:

* :meth:`TaskQueue.submit` enqueues a compiled kernel as a deferred target
  task with ``depend(in=…, out=…)`` tokens (usually the buffer names);
* kernels *execute* immediately in submission order — a legal serial
  schedule, keeping results deterministic — while the queue builds the
  concurrency **timeline**: each task starts when its dependencies have
  finished and a helper stream is free, so ``makespan_us`` shows what the
  ``nowait`` overlap would buy on ``num_streams`` copy/compute queues;
* :meth:`TaskQueue.taskwait` is the ``taskwait`` barrier.

Durations come from the launch's cost-model cycles at the device clock,
plus a per-launch host overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.core import api as omp
from repro.gpu.device import Device


@dataclass
class TargetTask:
    """One deferred target task and its schedule record."""

    task_id: int
    name: str
    depend_in: Tuple[str, ...]
    depend_out: Tuple[str, ...]
    result: object  # LaunchResult
    duration_us: float
    #: Tasks this one had to wait for (dependency edges by id).
    predecessors: Tuple[int, ...] = ()
    start_us: float = 0.0
    stream: int = 0

    @property
    def finish_us(self) -> float:
        return self.start_us + self.duration_us


class TaskQueue:
    """Host-side scheduler for deferred target tasks."""

    def __init__(
        self,
        device: Device,
        num_streams: int = 4,
        clock_ghz: float = 1.41,
        launch_overhead_us: float = 5.0,
    ) -> None:
        if num_streams < 1:
            raise ReproError("need at least one stream")
        self.device = device
        self.num_streams = num_streams
        self.clock_ghz = clock_ghz
        self.launch_overhead_us = launch_overhead_us
        self.tasks: List[TargetTask] = []
        self._stream_free = [0.0] * num_streams
        #: Last writer / readers per dependency token.
        self._last_out: Dict[str, int] = {}
        self._readers: Dict[str, List[int]] = {}
        self._waited_until = 0.0

    # ------------------------------------------------------------------
    def submit(
        self,
        kernel,
        args: Dict[str, object],
        depend_in: Sequence[str] = (),
        depend_out: Sequence[str] = (),
        name: Optional[str] = None,
        **launch_kwargs,
    ) -> TargetTask:
        """Enqueue (and functionally execute) one deferred target task.

        ``depend_in``/``depend_out`` are the task's read/written tokens;
        flow (RAW), anti (WAR) and output (WAW) dependencies against
        earlier tasks order the timeline.
        """
        task_id = len(self.tasks)
        result = omp.launch(self.device, kernel, args=args, **launch_kwargs)
        duration = (
            result.cycles / (self.clock_ghz * 1e3) + self.launch_overhead_us
        )

        preds = set()
        for token in depend_in:  # flow: wait for the last writer
            if token in self._last_out:
                preds.add(self._last_out[token])
        for token in depend_out:  # output + anti: writers and readers
            if token in self._last_out:
                preds.add(self._last_out[token])
            preds.update(self._readers.get(token, ()))

        ready = max(
            [self._waited_until]
            + [self.tasks[p].finish_us for p in preds]
        )
        stream = min(range(self.num_streams), key=lambda s: self._stream_free[s])
        start = max(ready, self._stream_free[stream])
        task = TargetTask(
            task_id=task_id,
            name=name or getattr(kernel, "name", f"task{task_id}"),
            depend_in=tuple(depend_in),
            depend_out=tuple(depend_out),
            result=result,
            duration_us=duration,
            predecessors=tuple(sorted(preds)),
            start_us=start,
            stream=stream,
        )
        self._stream_free[stream] = task.finish_us
        for token in depend_out:
            self._last_out[token] = task_id
            self._readers[token] = []
        for token in depend_in:
            self._readers.setdefault(token, []).append(task_id)
        self.tasks.append(task)
        return task

    # ------------------------------------------------------------------
    def taskwait(self) -> float:
        """``#pragma omp taskwait``: host blocks until all tasks finish."""
        self._waited_until = self.makespan_us
        self._stream_free = [self._waited_until] * self.num_streams
        return self._waited_until

    @property
    def makespan_us(self) -> float:
        """Modelled wall time with ``num_streams``-way overlap."""
        return max((t.finish_us for t in self.tasks), default=0.0)

    @property
    def serial_us(self) -> float:
        """What the same tasks cost executed back to back (no nowait)."""
        return sum(t.duration_us for t in self.tasks)

    def describe(self) -> str:
        lines = [
            f"{len(self.tasks)} target tasks on {self.num_streams} streams: "
            f"makespan {self.makespan_us:.1f} us vs serial {self.serial_us:.1f} us"
        ]
        for t in self.tasks:
            deps = f" after {list(t.predecessors)}" if t.predecessors else ""
            lines.append(
                f"  #{t.task_id} {t.name:<16} stream {t.stream} "
                f"[{t.start_us:8.1f}, {t.finish_us:8.1f}]{deps}"
            )
        return "\n".join(lines)
