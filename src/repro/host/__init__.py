"""Host-side OpenMP offloading: target-data regions and transfers.

The paper's background (§3): "OpenMP offloading utilizes a host-device
execution model where the host (CPU) schedules and synchronizes target
tasks … and handles memory allocation and movement between the host and
target devices."  This package is that substrate: ``map`` clause semantics
(``to``/``from``/``tofrom``/``alloc``), structured ``target data`` regions,
``target update`` transfers, and an interconnect cost model so examples and
benches can show the keep-data-resident lesson quantitatively.
"""

from repro.host.target_data import (
    MapKind,
    TargetDataRegion,
    TransferCounters,
    target_data,
)

__all__ = ["MapKind", "TargetDataRegion", "TransferCounters", "target_data"]
