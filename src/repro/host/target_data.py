"""Structured ``target data`` regions with map-clause semantics.

A :class:`TargetDataRegion` owns device buffers for the host arrays it
maps, with OpenMP's clause semantics:

``to``
    copy host→device on entry; device changes are *not* copied back;
``from``
    allocate on entry (device contents start undefined-as-zero), copy
    device→host on exit;
``tofrom``
    both;
``alloc``
    device-only scratch, no transfers.

``target update`` transfers (:meth:`TargetDataRegion.update_to` /
:meth:`update_from`) move data mid-region.  Every transfer is charged to an
interconnect model (latency + bandwidth) and tallied in
:class:`TransferCounters` so the classic offloading lesson — keep data
resident across kernels — is measurable, not folklore.

Usage::

    with target_data(dev, x=(host_x, "to"), y=(host_y, "from")) as region:
        omp.launch(dev, program, ..., args=region.buffers)
    # host_y now holds the device results; transfer stats in region.counters
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import ReproError
from repro.gpu.device import Device
from repro.gpu.memory import Buffer


class MapKind(enum.Enum):
    """OpenMP map clause kinds supported by the region."""

    TO = "to"
    FROM = "from"
    TOFROM = "tofrom"
    ALLOC = "alloc"


@dataclass
class InterconnectModel:
    """Host-device link cost: per-transfer latency plus bandwidth.

    Defaults approximate a PCIe 4.0 x16 link (~25 GB/s effective,
    ~10 µs launch/transfer latency).
    """

    bandwidth_gbps: float = 25.0
    latency_us: float = 10.0

    def transfer_us(self, nbytes: int) -> float:
        return self.latency_us + nbytes / (self.bandwidth_gbps * 1e3)


@dataclass
class TransferCounters:
    """Host-device traffic accounting for one region."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_transfers: int = 0
    d2h_transfers: int = 0
    transfer_us: float = 0.0

    def record(self, direction: str, nbytes: int, model: InterconnectModel) -> None:
        if direction == "h2d":
            self.h2d_bytes += nbytes
            self.h2d_transfers += 1
        else:
            self.d2h_bytes += nbytes
            self.d2h_transfers += 1
        self.transfer_us += model.transfer_us(nbytes)


MapSpec = Union[Tuple[np.ndarray, str], Tuple[np.ndarray, MapKind]]


class TargetDataRegion:
    """One structured ``target data`` region (also a context manager)."""

    def __init__(
        self,
        device: Device,
        maps: Dict[str, MapSpec],
        model: Optional[InterconnectModel] = None,
    ) -> None:
        self.device = device
        self.model = model or InterconnectModel()
        self.counters = TransferCounters()
        self._maps: Dict[str, Tuple[np.ndarray, MapKind]] = {}
        for name, (array, kind) in maps.items():
            kind = MapKind(kind) if not isinstance(kind, MapKind) else kind
            arr = np.asarray(array)
            if arr.dtype == object:
                raise ReproError(f"map {name!r}: object arrays cannot be mapped")
            self._maps[name] = (arr, kind)
        self._buffers: Dict[str, Buffer] = {}
        self._open = False

    # -- region lifecycle ---------------------------------------------------
    def open(self) -> "TargetDataRegion":
        """Enter the region: allocate device buffers, run entry transfers."""
        if self._open:
            raise ReproError("target data region is already open")
        for name, (arr, kind) in self._maps.items():
            flat = arr.reshape(-1)
            buf = self.device.alloc(f"map.{name}", flat.size, flat.dtype)
            if kind in (MapKind.TO, MapKind.TOFROM):
                buf.fill_from(flat)
                self.counters.record("h2d", buf.nbytes, self.model)
            self._buffers[name] = buf
        self._open = True
        return self

    def close(self) -> None:
        """Exit the region: run exit transfers, release device buffers."""
        self._require_open()
        for name, (arr, kind) in self._maps.items():
            buf = self._buffers[name]
            if kind in (MapKind.FROM, MapKind.TOFROM):
                arr.reshape(-1)[:] = buf.to_numpy()
                self.counters.record("d2h", buf.nbytes, self.model)
            self.device.free(buf)
        self._buffers.clear()
        self._open = False

    def __enter__(self) -> "TargetDataRegion":
        return self.open()

    def __exit__(self, exc_type, exc, tb) -> None:
        # Mirror OpenMP: exit transfers happen even when the body raised,
        # so partially computed data is observable for debugging.
        self.close()

    # -- access ---------------------------------------------------------------
    def _require_open(self) -> None:
        if not self._open:
            raise ReproError("target data region is not open")

    @property
    def buffers(self) -> Dict[str, Buffer]:
        """Device buffers by map name — pass as kernel launch args."""
        self._require_open()
        return dict(self._buffers)

    def buffer(self, name: str) -> Buffer:
        self._require_open()
        try:
            return self._buffers[name]
        except KeyError:
            raise ReproError(
                f"no mapping named {name!r}; mapped: {sorted(self._maps)}"
            ) from None

    # -- target update -----------------------------------------------------
    def update_to(self, name: str) -> None:
        """``target update to(name)``: refresh device from the host array."""
        buf = self.buffer(name)
        arr, _ = self._maps[name]
        buf.fill_from(arr.reshape(-1))
        self.counters.record("h2d", buf.nbytes, self.model)

    def update_from(self, name: str) -> None:
        """``target update from(name)``: refresh host from the device."""
        buf = self.buffer(name)
        arr, _ = self._maps[name]
        arr.reshape(-1)[:] = buf.to_numpy()
        self.counters.record("d2h", buf.nbytes, self.model)


def target_data(device: Device, model: Optional[InterconnectModel] = None, **maps) -> TargetDataRegion:
    """Build a ``target data`` region from keyword map specs.

    Each keyword is ``name=(host_array, kind)`` with kind in
    ``{"to", "from", "tofrom", "alloc"}``.
    """
    return TargetDataRegion(device, maps, model=model)
