"""sparse_matvec — CSR sparse matrix-vector product (§6.3, Fig 9).

Adapted, as in the paper, from the OpenACC best-practices guide's SpMV.
The inner (per-row) loop is short and its length varies with the matrix's
sparsity; the product accumulation uses an **atomic update** because the
paper's loop API did not yet support reductions (§6.2).

Two parallelization strategies:

* :func:`program_two_level` — the original two levels:
  ``teams distribute`` over rows + ``parallel for`` over each row's
  nonzeros.  The teams region runs **generic** (the team main schedules the
  distribute loop), costing the extra main warp, per-row argument staging,
  and two block barriers per row; with 32-thread teams most lanes idle on
  short rows.
* :func:`program_simd` — three levels: combined
  ``teams distribute parallel for`` over rows (teams **SPMD**) + ``simd``
  over each row's nonzeros (parallel **generic**, because the row-bounds
  loads make the nesting non-tight).

An optional reduction variant (:func:`program_simd_reduction`) exercises the
future-work extension for ablation A5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import api as omp
from repro.gpu.device import Device
from repro.kernels.common import CSRMatrix, make_csr


@dataclass
class SpmvData:
    """Device-resident CSR problem."""

    csr: CSRMatrix
    row_ptr: object
    col_idx: object
    values: object
    x: object
    y: object

    @property
    def n_rows(self) -> int:
        return self.csr.n_rows

    def reset(self) -> None:
        self.y.fill_from(np.zeros(self.csr.n_rows))

    def reference(self) -> np.ndarray:
        return self.csr.matvec()

    def check(self, atol: float = 1e-9) -> bool:
        return bool(np.allclose(self.y.to_numpy(), self.reference(), atol=atol))


def build_data(
    device: Device,
    n_rows: int = 512,
    n_cols: int = 512,
    mean_nnz: float = 10.0,
    skew: float = 0.6,
    seed: int = 7,
) -> SpmvData:
    """Generate a CSR matrix and move it to the device."""
    csr = make_csr(n_rows, n_cols, mean_nnz, skew, seed)
    return SpmvData(
        csr=csr,
        row_ptr=device.from_array("spmv.row_ptr", csr.row_ptr),
        col_idx=device.from_array("spmv.col_idx", csr.col_idx),
        values=device.from_array("spmv.values", csr.values),
        x=device.from_array("spmv.x", csr.x),
        y=device.from_array("spmv.y", np.zeros(n_rows)),
    )


ARGS = ("row_ptr", "col_idx", "values", "x", "y")


def _row_bounds_pre(tc, ivs, view):
    """Per-row sequential code: load the CSR row bounds."""
    (row,) = ivs
    bounds = yield from tc.load_vec(view["row_ptr"], (row, row + 1))
    yield from tc.compute("alu", 1)
    return {"row_start": int(bounds[0]), "row_len": int(bounds[1] - bounds[0])}


def _inner_trip(view, row):
    """Trip-count callback of the inner loop (bounds already in captures)."""
    return view["row_len"]


def _element_body(tc, ivs, view):
    """One nonzero: ``y[row] += values[e] * x[col_idx[e]]`` (atomic)."""
    row, j = ivs
    e = int(view["row_start"]) + j
    col = yield from tc.load(view["col_idx"], e)
    val = yield from tc.load(view["values"], e)
    xv = yield from tc.load(view["x"], int(col))
    yield from tc.compute("fma", 1)
    yield from tc.atomic_add(view["y"], row, float(val) * float(xv))


def program_two_level(n_rows: int):
    """Two-level baseline: ``teams distribute`` + ``parallel for``."""
    inner = omp.parallel_for(
        omp.loop(
            _inner_trip,
            body=_element_body,
            uses=("col_idx", "values", "x", "y"),
            name="spmv.elements",
        )
    )
    outer = omp.teams_distribute(
        omp.loop(
            n_rows,
            nested=inner,
            pre=_row_bounds_pre,
            captures=[("row_start", "i64"), ("row_len", "i64")],
            uses=("row_ptr",),
            name="spmv.rows",
        )
    )
    return omp.target(outer)


def program_simd(n_rows: int):
    """Three-level version: combined TDPF over rows + ``simd`` over nonzeros."""
    inner = omp.simd(
        omp.loop(
            _inner_trip,
            body=_element_body,
            uses=("col_idx", "values", "x", "y"),
            name="spmv.elements",
        )
    )
    outer = omp.teams_distribute_parallel_for(
        omp.loop(
            n_rows,
            nested=inner,
            pre=_row_bounds_pre,
            captures=[("row_start", "i64"), ("row_len", "i64")],
            uses=("row_ptr",),
            name="spmv.rows",
        )
    )
    return omp.target(outer)


def _element_value_body(tc, ivs, view):
    """Reduction-variant body: returns the product instead of atomics."""
    row, j = ivs
    e = int(view["row_start"]) + j
    col = yield from tc.load(view["col_idx"], e)
    val = yield from tc.load(view["values"], e)
    xv = yield from tc.load(view["x"], int(col))
    yield from tc.compute("fma", 1)
    return float(val) * float(xv)


def _store_row_sum(tc, ivs, view, total):
    """Reduction finalizer: the SIMD main thread stores the row sum."""
    (row,) = ivs
    yield from tc.store(view["y"], row, total)


def program_simd_reduction(n_rows: int):
    """Extension variant: simd-group reduction instead of atomic updates."""
    inner = omp.simd(
        omp.loop(
            _inner_trip,
            body=_element_value_body,
            uses=("col_idx", "values", "x", "y"),
            name="spmv.elements.red",
        ),
        reduction=("add", _store_row_sum),
    )
    outer = omp.teams_distribute_parallel_for(
        omp.loop(
            n_rows,
            nested=inner,
            pre=_row_bounds_pre,
            captures=[("row_start", "i64"), ("row_len", "i64")],
            uses=("row_ptr",),
            name="spmv.rows",
        )
    )
    return omp.target(outer)


def program_simd_dynamic(n_rows: int, chunk: int = 2):
    """Three-level version with ``schedule(dynamic)`` row claims.

    On skewed matrices the static-cyclic schedule leaves groups that drew
    short rows idle while long-row groups straggle; dynamic claiming from
    the team's atomic counter load-balances at the price of one atomic per
    chunk (an extension exercised by ablation A6).
    """
    inner = omp.simd(
        omp.loop(
            _inner_trip,
            body=_element_body,
            uses=("col_idx", "values", "x", "y"),
            name="spmv.elements",
        )
    )
    outer = omp.teams_distribute_parallel_for(
        omp.loop(
            n_rows,
            nested=inner,
            pre=_row_bounds_pre,
            captures=[("row_start", "i64"), ("row_len", "i64")],
            uses=("row_ptr",),
            name="spmv.rows",
        ),
        schedule="dynamic",
        chunk=chunk,
    )
    return omp.target(outer)


def _launch(device, data, prog, num_teams, team_size, simd_len, name, sharing_bytes=2048):
    args = {
        "row_ptr": data.row_ptr,
        "col_idx": data.col_idx,
        "values": data.values,
        "x": data.x,
        "y": data.y,
    }
    kernel = omp.compile(prog, tuple(args), name=name)
    return omp.launch(
        device,
        kernel,
        num_teams=num_teams,
        team_size=team_size,
        simd_len=simd_len,
        args=args,
        sharing_bytes=sharing_bytes,
    )


def run_two_level(device: Device, data: SpmvData, num_teams: int = 32, team_size: int = 32):
    """Launch the baseline (paper geometry: 32-thread teams, group size 1)."""
    data.reset()
    return _launch(device, data, program_two_level(data.n_rows), num_teams, team_size, 1, "spmv.2lvl")


def run_simd(
    device: Device,
    data: SpmvData,
    simd_len: int = 8,
    num_teams: int = 32,
    team_size: int = 128,
    sharing_bytes: int = 2048,
):
    """Launch the three-level version with the given SIMD group size."""
    data.reset()
    return _launch(
        device, data, program_simd(data.n_rows), num_teams, team_size, simd_len,
        "spmv.simd", sharing_bytes,
    )


def run_simd_dynamic(
    device: Device,
    data: SpmvData,
    simd_len: int = 8,
    num_teams: int = 32,
    team_size: int = 128,
    chunk: int = 2,
):
    """Launch the dynamic-schedule variant (ablation A6)."""
    data.reset()
    return _launch(
        device, data, program_simd_dynamic(data.n_rows, chunk), num_teams,
        team_size, simd_len, "spmv.dyn",
    )


def run_simd_reduction(
    device: Device,
    data: SpmvData,
    simd_len: int = 8,
    num_teams: int = 32,
    team_size: int = 128,
):
    """Launch the reduction-extension variant (ablation A5)."""
    data.reset()
    return _launch(
        device, data, program_simd_reduction(data.n_rows), num_teams, team_size, simd_len, "spmv.red"
    )
