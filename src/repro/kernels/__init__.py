"""The paper's evaluation codes (§6).

Fig 9 kernels (benefit of three-level parallelism):

* :mod:`repro.kernels.sparse_matvec` — CSR sparse matrix-vector product
  adapted from the OpenACC best-practices guide; atomic update in place of
  the not-yet-supported reduction, as in the paper.
* :mod:`repro.kernels.su3` — SU3_bench lattice-QCD 3×3 complex matrix
  multiply with the 36-iteration inner loop.
* :mod:`repro.kernels.ideal` — the paper's custom benchmarking kernel: a
  small non-collapsible inner loop that fits a warp.

Fig 10 kernels (cost of the implementation; three parallelizable loops):

* :mod:`repro.kernels.laplace3d` — 3-D 7-point heat-diffusion stencil.
* :mod:`repro.kernels.muram_transpose` — 3-D transpose from the MURaM
  OpenACC port.
* :mod:`repro.kernels.muram_interpol` — 1-D interpolation stencil over a
  3-D grid, also from MURaM.

Every kernel module follows one pattern: a ``build_data(device, …)``
constructor, a NumPy ``reference``, one ``program_*`` factory per variant
(baseline / simd / mode-toggled), ``run_*`` launch helpers returning
:class:`~repro.core.api.LaunchResult`, and a ``check`` verifying device
output against the reference.
"""

from repro.kernels import common

__all__ = ["common"]
