"""SU3_bench — lattice QCD SU(3) matrix-matrix multiply (§6.3, Fig 9).

Per lattice site, four link matrices are multiplied by the site matrix:
``C[s, l] = A[s, l] @ B[s]`` over complex 3×3 — 4 links × 9 output elements
= the paper's **36-iteration inner loop**, "originally executed serially by
each thread".

* :func:`program_baseline` — two levels: combined TDPF over sites; each
  thread runs the 36 iterations serially.  With the AoS site-major layout,
  adjacent lanes work on different sites, so every load is a strided,
  uncoalesced access.
* :func:`program_simd` — ``simd`` over the 36 iterations, tightly nested:
  **both** teams and parallel regions run SPMD, exactly as §6.3 states.
  Lanes of a group cover adjacent ``(l, i, j)`` elements of one site, so
  loads of ``A`` rows broadcast and loads of ``B`` columns coalesce.

Element work for iteration ``t``: decode ``(l, i, j) = (t//9, (t%9)//3,
t%3)``, then ``C[l,i,j] = Σ_k A[l,i,k] * B[k,j]`` — 6 complex loads, 3
complex FMAs (12 real mul-adds), one complex store.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import api as omp
from repro.gpu.device import Device
from repro.kernels.common import make_complex_matrices, su3_reference

LINKS = 4
INNER_TRIP = LINKS * 9  # the paper's 36


@dataclass
class Su3Data:
    """Device-resident SU3_bench problem."""

    sites: int
    a_host: np.ndarray
    b_host: np.ndarray
    a: object
    b: object
    c: object

    def reset(self) -> None:
        self.c.fill_from(np.zeros(self.sites * LINKS * 9 * 2))

    def reference(self) -> np.ndarray:
        return su3_reference(self.a_host, self.b_host).reshape(-1)

    def check(self, atol: float = 1e-9) -> bool:
        return bool(np.allclose(self.c.to_numpy(), self.reference(), atol=atol))


def build_data(device: Device, sites: int = 1024, seed: int = 13) -> Su3Data:
    a_host, b_host = make_complex_matrices(sites, LINKS, seed)
    return Su3Data(
        sites=sites,
        a_host=a_host,
        b_host=b_host,
        a=device.from_array("su3.a", a_host.reshape(-1)),
        b=device.from_array("su3.b", b_host.reshape(-1)),
        c=device.alloc("su3.c", sites * LINKS * 9 * 2, np.float64),
    )


def _a_base(site: int, l: int, i: int) -> int:
    """Flat offset of A[site, l, i, 0, re] in the interleaved layout."""
    return ((site * LINKS + l) * 3 + i) * 3 * 2


def _b_base(site: int, k: int) -> int:
    return (site * 3 + k) * 3 * 2


def _element(tc, view, site: int, t: int):
    """Compute one (l, i, j) output element of one site."""
    l, r = divmod(t, 9)
    i, j = divmod(r, 3)
    yield from tc.compute("alu", 3)  # index decode
    a_row = _a_base(site, l, i)
    # A row (i, :) — 3 complex = 6 floats, contiguous: one unrolled run.
    avals = yield from tc.load_vec(view["a"], range(a_row, a_row + 6))
    # B column (:, j) — strided by row: three 2-float runs.
    bvals = yield from tc.load_vec(
        view["b"],
        (
            _b_base(site, 0) + 2 * j, _b_base(site, 0) + 2 * j + 1,
            _b_base(site, 1) + 2 * j, _b_base(site, 1) + 2 * j + 1,
            _b_base(site, 2) + 2 * j, _b_base(site, 2) + 2 * j + 1,
        ),
    )
    cre = cim = 0.0
    for k in range(3):
        ar, ai = avals[2 * k], avals[2 * k + 1]
        br, bi = bvals[2 * k], bvals[2 * k + 1]
        cre += ar * br - ai * bi
        cim += ar * bi + ai * br
    yield from tc.compute("fma", 12)
    out = ((site * LINKS + l) * 9 + i * 3 + j) * 2
    yield from tc.store_vec(view["c"], (out, out + 1), (cre, cim))


def _serial_body(tc, ivs, view):
    """Baseline leaf: one thread runs the 36-iteration loop serially.

    This is the paper's starting point — "a small inner-loop with 36 total
    iterations that was originally executed serially by each thread"
    (§6.3): the element body executes as-is, iteration after iteration, so
    the thread's dependent load chains stack up and its warp-mates' strided
    accesses never coalesce.
    """
    (site,) = ivs
    for t in range(INNER_TRIP):
        yield from _element(tc, view, site, t)
        yield from tc.compute("alu", 1)


def _simd_body(tc, ivs, view):
    """SIMD leaf: one element of one site per loop-task invocation."""
    site, t = ivs
    yield from _element(tc, view, site, t)


def program_baseline(sites: int):
    """Two-level version: serial 36-iteration loop per thread."""
    outer = omp.teams_distribute_parallel_for(
        omp.loop(sites, body=_serial_body, uses=("a", "b", "c"), name="su3.sites")
    )
    return omp.target(outer)


def program_simd(sites: int):
    """Three-level version: tight ``simd`` over the 36 elements (all SPMD)."""
    inner = omp.simd(
        omp.loop(INNER_TRIP, body=_simd_body, uses=("a", "b", "c"), name="su3.elements")
    )
    outer = omp.teams_distribute_parallel_for(
        omp.loop(sites, nested=inner, uses=(), name="su3.sites")
    )
    return omp.target(outer)


def _launch(device, data, prog, num_teams, team_size, simd_len, name):
    args = {"a": data.a, "b": data.b, "c": data.c}
    kernel = omp.compile(prog, tuple(args), name=name)
    return omp.launch(
        device, kernel, num_teams=num_teams, team_size=team_size,
        simd_len=simd_len, args=args,
    )


def run_baseline(device: Device, data: Su3Data, num_teams: int = 16, team_size: int = 128):
    data.reset()
    return _launch(device, data, program_baseline(data.sites), num_teams, team_size, 1, "su3.2lvl")


def run_simd(
    device: Device,
    data: Su3Data,
    simd_len: int = 4,
    num_teams: int = 16,
    team_size: int = 128,
):
    data.reset()
    return _launch(device, data, program_simd(data.sites), num_teams, team_size, simd_len, "su3.simd")
