"""The paper's custom benchmarking kernel (§6.3, Fig 9 "benchmark kernel").

Constructed to "very closely fit the three levels of parallelism … a small
inner loop that fits into a single warp, but is not collapsible with the
outer-loop nest".  We reproduce that construction: every outer iteration
owns a 32-element row whose base address comes from an indirection table
(the data-dependent lookup is what makes the nest non-collapsible), and the
inner loop does a few FMAs per element.

* :func:`program_baseline` — two levels (combined TDPF over rows); each
  thread loads its row base and walks the 32 elements serially: adjacent
  lanes stride across distant rows, so nothing coalesces.
* :func:`program_simd` — the paper's shape: TDPF over rows (teams SPMD) +
  ``simd`` over the 32 elements with the base lookup as sequential per-row
  code (parallel **generic**, as §6.3 states for this kernel).  Group lanes
  cover adjacent elements: coalesced, with the dependent-load chain split
  ``simd_len`` ways.

Paper result: ≈2.15× at group size 32, with 16 close behind.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import api as omp
from repro.gpu.device import Device

#: Inner trip count — "fits into a single warp".
INNER = 32

#: FMAs per element (keeps the kernel latency/bandwidth-shaped rather than
#: compute-bound, like the paper's memory-streaming construction).
FLOPS = 2

#: Element record stride in doubles: each element lives in its own 32-byte
#: AoS record, so a serial walk touches one sector per step — the classic
#: structure-of-records layout that starves a two-level mapping.
PAD = 4


@dataclass
class IdealData:
    """Device-resident problem for the benchmark kernel."""

    n_rows: int
    perm: np.ndarray
    x_host: np.ndarray
    offsets: object
    x: object
    y: object

    def reset(self) -> None:
        self.y.fill_from(np.zeros(self.n_rows * INNER))

    def reference(self) -> np.ndarray:
        out = np.zeros(self.n_rows * INNER)
        for i in range(self.n_rows):
            base = int(self.perm[i]) * INNER
            row = self.x_host[(np.arange(INNER) + base) * PAD]
            out[base : base + INNER] = 2.0 * row * row + 1.0
        return out

    def check(self, atol: float = 1e-9) -> bool:
        return bool(np.allclose(self.y.to_numpy(), self.reference(), atol=atol))


def build_data(device: Device, n_rows: int = 256, seed: int = 17) -> IdealData:
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n_rows).astype(np.int64)
    x_host = rng.standard_normal(n_rows * INNER * PAD)
    return IdealData(
        n_rows=n_rows,
        perm=perm,
        x_host=x_host,
        offsets=device.from_array("ideal.offsets", perm),
        x=device.from_array("ideal.x", x_host),
        y=device.from_array("ideal.y", np.zeros(n_rows * INNER)),
    )


def _element(tc, view, base: int, j: int):
    v = yield from tc.load(view["x"], (base + j) * PAD)
    yield from tc.compute("fma", FLOPS)
    yield from tc.store(view["y"], base + j, 2.0 * v * v + 1.0)


def _serial_body(tc, ivs, view):
    """Baseline leaf: the thread walks its whole 32-element row."""
    (i,) = ivs
    off = yield from tc.load(view["offsets"], i)
    base = int(off) * INNER
    yield from tc.compute("alu", 1)
    for j in range(INNER):
        yield from _element(tc, view, base, j)
        yield from tc.compute("alu", 1)


def _row_pre(tc, ivs, view):
    """Sequential per-row code: the indirection lookup (non-collapsible)."""
    (i,) = ivs
    off = yield from tc.load(view["offsets"], i)
    yield from tc.compute("alu", 1)
    return {"base": int(off) * INNER}


def _simd_body(tc, ivs, view):
    i, j = ivs
    yield from _element(tc, view, int(view["base"]), j)


def program_baseline(n_rows: int):
    """Two-level version: serial inner loop per thread."""
    return omp.target(
        omp.teams_distribute_parallel_for(
            omp.loop(n_rows, body=_serial_body, uses=("offsets", "x", "y"), name="ideal.rows")
        )
    )


def program_simd(n_rows: int):
    """Three-level version: teams SPMD, parallel generic (per §6.3)."""
    inner = omp.simd(
        omp.loop(INNER, body=_simd_body, uses=("x", "y"), name="ideal.elements")
    )
    return omp.target(
        omp.teams_distribute_parallel_for(
            omp.loop(
                n_rows,
                nested=inner,
                pre=_row_pre,
                captures=[("base", "i64")],
                uses=("offsets",),
                name="ideal.rows",
            )
        )
    )


def _launch(device, data, prog, num_teams, team_size, simd_len, name):
    args = {"offsets": data.offsets, "x": data.x, "y": data.y}
    kernel = omp.compile(prog, tuple(args), name=name)
    return omp.launch(
        device, kernel, num_teams=num_teams, team_size=team_size,
        simd_len=simd_len, args=args,
    )


def run_baseline(device: Device, data: IdealData, num_teams: int = 16, team_size: int = 128):
    data.reset()
    return _launch(device, data, program_baseline(data.n_rows), num_teams, team_size, 1, "ideal.2lvl")


def run_simd(
    device: Device,
    data: IdealData,
    simd_len: int = 32,
    num_teams: int = 16,
    team_size: int = 128,
):
    data.reset()
    return _launch(device, data, program_simd(data.n_rows), num_teams, team_size, simd_len, "ideal.simd")
