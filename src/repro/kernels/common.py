"""Shared workload generators for the evaluation kernels.

All generators are deterministic given a seed so every experiment is
reproducible; sizes default to values that keep the cooperative simulator in
the seconds range while preserving each kernel's characteristic shape
(row-length skew for the sparse kernel, warp-sized inner trips, …).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class CSRMatrix:
    """A CSR sparse matrix with its dense operand vector."""

    n_rows: int
    n_cols: int
    row_ptr: np.ndarray  # int64[n_rows+1]
    col_idx: np.ndarray  # int64[nnz]
    values: np.ndarray  # float64[nnz]
    x: np.ndarray  # float64[n_cols]

    @property
    def nnz(self) -> int:
        return int(self.row_ptr[-1])

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.row_ptr)

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.n_rows, self.n_cols))
        for r in range(self.n_rows):
            lo, hi = self.row_ptr[r], self.row_ptr[r + 1]
            dense[r, self.col_idx[lo:hi]] += self.values[lo:hi]
        return dense

    def matvec(self) -> np.ndarray:
        """NumPy reference ``A @ x``."""
        y = np.zeros(self.n_rows)
        for r in range(self.n_rows):
            lo, hi = self.row_ptr[r], self.row_ptr[r + 1]
            y[r] = np.dot(self.values[lo:hi], self.x[self.col_idx[lo:hi]])
        return y


def make_csr(
    n_rows: int = 512,
    n_cols: int = 512,
    mean_nnz: float = 10.0,
    skew: float = 0.6,
    seed: int = 7,
) -> CSRMatrix:
    """Random CSR matrix with log-normally skewed row lengths.

    The sparse_matvec experiment depends on "the varying sparsity of the
    matrix" (§6.3): rows have a skewed length distribution (mean ≈
    ``mean_nnz``) so no single SIMD group size fits every row, which is what
    produces Fig 9's interior optimum.
    """
    rng = np.random.default_rng(seed)
    mu = np.log(mean_nnz) - 0.5 * skew**2
    lengths = np.maximum(1, rng.lognormal(mu, skew, n_rows).astype(np.int64))
    lengths = np.minimum(lengths, n_cols)
    row_ptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(lengths, out=row_ptr[1:])
    nnz = int(row_ptr[-1])
    col_idx = np.empty(nnz, dtype=np.int64)
    for r in range(n_rows):
        lo, hi = row_ptr[r], row_ptr[r + 1]
        col_idx[lo:hi] = np.sort(
            rng.choice(n_cols, size=hi - lo, replace=False)
        )
    values = rng.standard_normal(nnz)
    x = rng.standard_normal(n_cols)
    return CSRMatrix(n_rows, n_cols, row_ptr, col_idx, values, x)


def make_grid3d(
    nx: int = 16, ny: int = 16, nz: int = 32, seed: int = 11
) -> np.ndarray:
    """Random 3-D grid, C-ordered with ``z`` contiguous (stencil layout)."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((nx, ny, nz))


def flat3(i: int, j: int, k: int, ny: int, nz: int) -> int:
    """Flat index of ``(i, j, k)`` in a C-ordered ``(nx, ny, nz)`` grid."""
    return (i * ny + j) * nz + k


def make_complex_matrices(
    sites: int, links: int = 4, seed: int = 13
) -> Tuple[np.ndarray, np.ndarray]:
    """SU3_bench operands: per-site link matrices ``A`` and site matrix ``B``.

    Returned as interleaved-real/imaginary float64 arrays:
    ``A[sites, links, 3, 3, 2]`` and ``B[sites, 3, 3, 2]`` — the AoS,
    site-major layout whose per-thread strided access the simd mapping
    fixes.
    """
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((sites, links, 3, 3, 2))
    b = rng.standard_normal((sites, 3, 3, 2))
    return a, b


def su3_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """NumPy reference: ``C[s, l] = A[s, l] @ B[s]`` over complex 3×3."""
    ac = a[..., 0] + 1j * a[..., 1]
    bc = b[..., 0] + 1j * b[..., 1]
    cc = np.einsum("slik,skj->slij", ac, bc)
    out = np.empty(a.shape)
    out[..., 0] = cc.real
    out[..., 1] = cc.imag
    return out
