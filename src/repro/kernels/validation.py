"""On-device semantics validation kernels (an OpenMP V&V-style suite).

Each kernel here checks one contract of the three-level execution model
*on the device itself* with ``tc.device_assert`` — the style of the SOLLVE
V&V suite the OpenMP community uses to validate offloading
implementations.  They run as part of the test suite
(`tests/kernels/test_validation.py`) across mode combinations and group
sizes; a violated contract aborts the launch with block/thread context.

Contracts covered:

* ``simd`` iteration → lane mapping (Fig 8: ``iv ≡ lane (mod group)``);
* SIMD main threads are exactly the ``gid == 0`` lanes, one per group;
* every simd iteration executes exactly once (device-side count);
* ``omp_get_*`` query consistency with the geometry;
* workers observe the leader's captured values exactly (payload fidelity);
* the parallel region's implicit barrier orders cross-group writes.
"""

from __future__ import annotations

import numpy as np

from repro.core import api as omp
from repro.gpu.device import Device
from repro.runtime.query import (
    omp_get_num_teams,
    omp_get_num_threads,
    omp_get_simd_lane,
    omp_get_simd_len,
    omp_get_team_num,
    omp_get_thread_num,
)

#: Iterations per simd loop in the validation programs.
TRIP = 24
#: Outer iterations.
OUTER = 8


def check_lane_mapping(device: Device, num_teams=2, team_size=64, simd_len=8,
                       tight=True):
    """Fig 8 contract: iteration ``j`` runs on group lane ``j % simd_len``."""

    def body(tc, ivs, view):
        j = ivs[-1]
        rt = _rt_of(tc)
        yield from tc.device_assert(
            omp_get_simd_lane(tc, rt) == j % omp_get_simd_len(tc, rt),
            "simd iteration landed on the wrong lane",
        )

    _launch(device, body, num_teams, team_size, simd_len, tight)


def check_single_execution(device: Device, num_teams=2, team_size=64,
                           simd_len=8, tight=True):
    """Every (i, j) simd iteration executes exactly once."""
    hits = device.from_array("hits", np.zeros(OUTER * TRIP, dtype=np.int64))

    def body(tc, ivs, view):
        i, j = ivs[-2], ivs[-1]
        old = yield from tc.atomic_add(view["hits"], i * TRIP + j, 1)
        yield from tc.device_assert(old == 0, "simd iteration executed twice")

    _launch(device, body, num_teams, team_size, simd_len, tight,
            extra_args={"hits": hits})
    assert np.all(hits.to_numpy() == 1), "some iterations never executed"


def check_query_consistency(device: Device, num_teams=2, team_size=64,
                            simd_len=8, tight=True):
    """omp_get_* values agree with the launch geometry on every thread."""

    def body(tc, ivs, view):
        rt = _rt_of(tc)
        yield from tc.device_assert(
            omp_get_num_teams(tc, rt) == num_teams, "num_teams mismatch"
        )
        yield from tc.device_assert(
            omp_get_team_num(tc, rt) == tc.block_id, "team id mismatch"
        )
        yield from tc.device_assert(
            omp_get_num_threads(tc, rt) == team_size // simd_len,
            "num_threads must equal the group count",
        )
        yield from tc.device_assert(
            0 <= omp_get_thread_num(tc, rt) < omp_get_num_threads(tc, rt),
            "thread id out of range",
        )

    _launch(device, body, num_teams, team_size, simd_len, tight)


def check_capture_fidelity(device: Device, num_teams=2, team_size=64,
                           simd_len=8):
    """Workers see exactly the leader's captured pre-computed values.

    Runs non-tight (generic parallel) so captures travel through the
    variable sharing space.
    """

    def pre(tc, ivs, view):
        (i,) = ivs
        yield from tc.compute("alu")
        return {"mark": i * 1000 + 7, "scale": float(i) * 0.5}

    def body(tc, ivs, view):
        i, j = ivs
        yield from tc.device_assert(
            int(view["mark"]) == i * 1000 + 7, "i64 capture corrupted"
        )
        yield from tc.device_assert(
            float(view["scale"]) == float(i) * 0.5, "f64 capture corrupted"
        )

    tree = omp.target(
        omp.teams_distribute_parallel_for(
            OUTER,
            pre=pre,
            captures=[("mark", "i64"), ("scale", "f64")],
            nested=omp.simd(TRIP, body=body, uses=()),
            uses=(),
        )
    )
    omp.launch(device, tree, num_teams=num_teams, team_size=team_size,
               simd_len=simd_len, args={})


def check_implicit_barrier(device: Device, num_teams=1, team_size=64,
                           simd_len=8):
    """Writes from one parallel region are visible after its implicit
    barrier to every thread of the team in the next region."""
    flags = device.from_array("flags", np.zeros(OUTER * TRIP, dtype=np.int64))

    def writer(tc, ivs, view):
        i, j = ivs
        yield from tc.store(view["flags"], i * TRIP + j, 1)

    def checker(tc, ivs, view):
        i, j = ivs
        v = yield from tc.load(view["flags"], ((i + 3) % OUTER) * TRIP + j)
        yield from tc.device_assert(int(v) == 1, "missed preceding region's write")

    for body in (writer, checker):
        tree = omp.target(
            omp.teams_distribute_parallel_for(
                OUTER, nested=omp.simd(TRIP, body=body, uses=("flags",)), uses=(),
            )
        )
        omp.launch(device, tree, num_teams=num_teams, team_size=team_size,
                   simd_len=simd_len, args={"flags": flags})


ALL_CHECKS = (
    check_lane_mapping,
    check_single_execution,
    check_query_consistency,
)


# --- helpers ---------------------------------------------------------------


def _rt_of(tc):
    """The OpenMP runtime context of this thread's team."""
    return tc.block._omp_rt


def _launch(device, body, num_teams, team_size, simd_len, tight, extra_args=None):
    args = dict(extra_args or {})
    uses = tuple(args)
    if tight:
        loop = omp.loop(
            OUTER, nested=omp.simd(TRIP, body=body, uses=uses), uses=()
        )
    else:
        def pre(tc, ivs, view):
            yield from tc.compute("alu")
            return {"unused": 0}

        loop = omp.loop(
            OUTER,
            pre=pre,
            captures=[("unused", "i64")],
            nested=omp.simd(TRIP, body=body, uses=uses),
            uses=(),
        )
    tree = omp.target(omp.teams_distribute_parallel_for(loop))
    omp.launch(device, tree, num_teams=num_teams, team_size=team_size,
               simd_len=simd_len, args=args)
