"""laplace3d — 3-D heat-diffusion stencil (§6.4, Fig 10).

A 7-point Jacobi update over the interior of a 3-D grid: three nested
parallelizable loops, used by the paper to measure the *cost* of the simd
implementation rather than its benefit.  "The execution modes of these
kernels can be adjusted between generic and SPMD mode by changing whether
or not the loops are tightly-nested" — exactly how the three variants here
differ:

* :func:`program_no_simd` — the reference point: two-level combined TDPF
  over the collapsed (i, j, k) space; teams SPMD, group size 1.
* :func:`program_spmd_simd` — TDPF over collapsed (i, j) + **tightly**
  nested ``simd`` over k ⇒ parallel SPMD.
* :func:`program_generic_simd` — identical except the (i, j) decode runs as
  sequential per-iteration code feeding captures ⇒ non-tight ⇒ parallel
  generic, paying the SIMD state machine and variable sharing (the ≈15 %
  of Fig 10).

All variants run the same launch geometry; Fig 10 uses SIMD group size 32.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import api as omp
from repro.gpu.device import Device
from repro.kernels.common import make_grid3d

C0 = 0.4
C1 = 0.1


@dataclass
class LaplaceData:
    """Device-resident grid problem."""

    nx: int
    ny: int
    nz: int
    x_host: np.ndarray
    x: object
    y: object

    def reset(self) -> None:
        self.y.fill_from(np.zeros(self.nx * self.ny * self.nz))

    def reference(self) -> np.ndarray:
        x = self.x_host
        out = np.zeros_like(x)
        out[1:-1, 1:-1, 1:-1] = C0 * x[1:-1, 1:-1, 1:-1] + C1 * (
            x[:-2, 1:-1, 1:-1]
            + x[2:, 1:-1, 1:-1]
            + x[1:-1, :-2, 1:-1]
            + x[1:-1, 2:, 1:-1]
            + x[1:-1, 1:-1, :-2]
            + x[1:-1, 1:-1, 2:]
        )
        return out.reshape(-1)

    def check(self, atol: float = 1e-9) -> bool:
        return bool(np.allclose(self.y.to_numpy(), self.reference(), atol=atol))


def build_data(
    device: Device, nx: int = 16, ny: int = 16, nz: int = 66, seed: int = 11
) -> LaplaceData:
    x_host = make_grid3d(nx, ny, nz, seed)
    return LaplaceData(
        nx=nx,
        ny=ny,
        nz=nz,
        x_host=x_host,
        x=device.from_array("lap.x", x_host.reshape(-1)),
        y=device.from_array("lap.y", np.zeros(nx * ny * nz)),
    )


def _update(tc, view, nx, ny, nz, i, j, k):
    """One 7-point stencil update at interior cell (i, j, k)."""
    x, y = view["x"], view["y"]
    c = (i * ny + j) * nz + k
    # Centre and the two z-neighbours are contiguous: one access run.
    mid = yield from tc.load_vec(x, (c - 1, c, c + 1))
    n4 = yield from tc.load_vec(
        x, (c - ny * nz, c + ny * nz, c - nz, c + nz)
    )
    yield from tc.compute("fma", 7)
    val = C0 * mid[1] + C1 * (mid[0] + mid[2] + n4[0] + n4[1] + n4[2] + n4[3])
    yield from tc.store(y, c, val)


def _decode_ij(flat: int, ny: int):
    return flat // (ny - 2) + 1, flat % (ny - 2) + 1


def program_no_simd(nx: int, ny: int, nz: int):
    """Two-level baseline: TDPF over the collapsed interior (i, j, k)."""
    interior = (nx - 2) * (ny - 2) * (nz - 2)

    def body(tc, ivs, view):
        (flat,) = ivs
        yield from tc.compute("alu", 4)  # 3-way index decode
        ij, k = divmod(flat, nz - 2)
        i, j = _decode_ij(ij, ny)
        yield from _update(tc, view, nx, ny, nz, i, j, k + 1)

    return omp.target(
        omp.teams_distribute_parallel_for(
            omp.loop(interior, body=body, uses=("x", "y"), name="lap.cells")
        )
    )


def program_spmd_simd(nx: int, ny: int, nz: int):
    """Three-level, tightly nested: parallel SPMD (Fig 10 "SPMD SIMD")."""
    outer = (nx - 2) * (ny - 2)

    def body(tc, ivs, view):
        ij, k = ivs
        yield from tc.compute("alu", 2)  # 2-way index decode, per element
        i, j = _decode_ij(ij, ny)
        yield from _update(tc, view, nx, ny, nz, i, j, k + 1)

    inner = omp.simd(omp.loop(nz - 2, body=body, uses=("x", "y"), name="lap.z"))
    return omp.target(
        omp.teams_distribute_parallel_for(
            omp.loop(outer, nested=inner, uses=(), name="lap.ij")
        )
    )


def program_generic_simd(nx: int, ny: int, nz: int):
    """Three-level, non-tight: parallel generic (Fig 10 "Generic SIMD")."""
    outer = (nx - 2) * (ny - 2)

    def pre(tc, ivs, view):
        (ij,) = ivs
        yield from tc.compute("alu", 2)
        i, j = _decode_ij(ij, ny)
        return {"i": i, "j": j}

    def body(tc, ivs, view):
        ij, k = ivs
        yield from _update(
            tc, view, nx, ny, nz, int(view["i"]), int(view["j"]), k + 1
        )

    inner = omp.simd(omp.loop(nz - 2, body=body, uses=("x", "y"), name="lap.z"))
    return omp.target(
        omp.teams_distribute_parallel_for(
            omp.loop(
                outer,
                nested=inner,
                pre=pre,
                captures=[("i", "i64"), ("j", "i64")],
                uses=(),
                name="lap.ij",
            )
        )
    )


PROGRAMS = {
    "no_simd": program_no_simd,
    "spmd_simd": program_spmd_simd,
    "generic_simd": program_generic_simd,
}


def run(
    device: Device,
    data: LaplaceData,
    variant: str,
    simd_len: int = 32,
    num_teams: int = 16,
    team_size: int = 128,
):
    """Launch one Fig 10 variant; group size 1 for the no-simd baseline."""
    data.reset()
    prog = PROGRAMS[variant](data.nx, data.ny, data.nz)
    args = {"x": data.x, "y": data.y}
    kernel = omp.compile(prog, tuple(args), name=f"laplace3d.{variant}")
    return omp.launch(
        device,
        kernel,
        num_teams=num_teams,
        team_size=team_size,
        simd_len=1 if variant == "no_simd" else simd_len,
        args=args,
    )
