"""muram_transpose — 3-D array transpose from the MURaM port (§6.4, Fig 10).

MURaM's radiative-MHD solver permutes its field arrays between sweep
directions; this kernel transposes ``out[k, j, i] = in[i, j, k]`` over a
3-D grid.  Reads along ``k`` are contiguous; writes scatter with stride
``ny·nx`` — the transpose's inherent cost, identical in all variants.

The three Fig 10 variants follow the same pattern as
:mod:`repro.kernels.laplace3d`: a two-level collapsed baseline, a tightly
nested ``simd`` over ``k`` (parallel SPMD), and a non-tight version whose
per-(i, j) decode forces parallel generic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import api as omp
from repro.gpu.device import Device
from repro.kernels.common import make_grid3d


@dataclass
class TransposeData:
    """Device-resident transpose problem."""

    nx: int
    ny: int
    nz: int
    x_host: np.ndarray
    x: object
    y: object

    def reset(self) -> None:
        self.y.fill_from(np.zeros(self.nx * self.ny * self.nz))

    def reference(self) -> np.ndarray:
        return np.transpose(self.x_host, (2, 1, 0)).reshape(-1).copy()

    def check(self, atol: float = 1e-12) -> bool:
        return bool(np.allclose(self.y.to_numpy(), self.reference(), atol=atol))


def build_data(
    device: Device, nx: int = 16, ny: int = 16, nz: int = 64, seed: int = 19
) -> TransposeData:
    x_host = make_grid3d(nx, ny, nz, seed)
    return TransposeData(
        nx=nx,
        ny=ny,
        nz=nz,
        x_host=x_host,
        x=device.from_array("tr.x", x_host.reshape(-1)),
        y=device.from_array("tr.y", np.zeros(nx * ny * nz)),
    )


def _move(tc, view, nx, ny, nz, i, j, k):
    v = yield from tc.load(view["x"], (i * ny + j) * nz + k)
    yield from tc.compute("alu", 2)  # destination index arithmetic
    yield from tc.store(view["y"], (k * ny + j) * nx + i, v)


def program_no_simd(nx: int, ny: int, nz: int):
    total = nx * ny * nz

    def body(tc, ivs, view):
        (flat,) = ivs
        yield from tc.compute("alu", 4)
        ij, k = divmod(flat, nz)
        i, j = divmod(ij, ny)
        yield from _move(tc, view, nx, ny, nz, i, j, k)

    return omp.target(
        omp.teams_distribute_parallel_for(
            omp.loop(total, body=body, uses=("x", "y"), name="tr.cells")
        )
    )


def program_spmd_simd(nx: int, ny: int, nz: int):
    outer = nx * ny

    def body(tc, ivs, view):
        ij, k = ivs
        yield from tc.compute("alu", 2)
        i, j = divmod(ij, ny)
        yield from _move(tc, view, nx, ny, nz, i, j, k)

    inner = omp.simd(omp.loop(nz, body=body, uses=("x", "y"), name="tr.z"))
    return omp.target(
        omp.teams_distribute_parallel_for(
            omp.loop(outer, nested=inner, uses=(), name="tr.ij")
        )
    )


def program_generic_simd(nx: int, ny: int, nz: int):
    outer = nx * ny

    def pre(tc, ivs, view):
        (ij,) = ivs
        yield from tc.compute("alu", 2)
        i, j = divmod(ij, ny)
        return {"i": i, "j": j}

    def body(tc, ivs, view):
        ij, k = ivs
        yield from _move(
            tc, view, nx, ny, nz, int(view["i"]), int(view["j"]), k
        )

    inner = omp.simd(omp.loop(nz, body=body, uses=("x", "y"), name="tr.z"))
    return omp.target(
        omp.teams_distribute_parallel_for(
            omp.loop(
                outer,
                nested=inner,
                pre=pre,
                captures=[("i", "i64"), ("j", "i64")],
                uses=(),
                name="tr.ij",
            )
        )
    )


PROGRAMS = {
    "no_simd": program_no_simd,
    "spmd_simd": program_spmd_simd,
    "generic_simd": program_generic_simd,
}


def run(
    device: Device,
    data: TransposeData,
    variant: str,
    simd_len: int = 32,
    num_teams: int = 16,
    team_size: int = 128,
):
    data.reset()
    prog = PROGRAMS[variant](data.nx, data.ny, data.nz)
    args = {"x": data.x, "y": data.y}
    kernel = omp.compile(prog, tuple(args), name=f"muram_transpose.{variant}")
    return omp.launch(
        device,
        kernel,
        num_teams=num_teams,
        team_size=team_size,
        simd_len=1 if variant == "no_simd" else simd_len,
        args=args,
    )
