"""muram_interpol — staggered-grid interpolation from the MURaM port (§6.4).

MURaM interpolates cell-centred quantities onto staggered faces; the kernel
here is a 4-point weighted interpolation along the contiguous ``z``
dimension: ``out[i,j,k] = Σ_d w[d] · x[i,j,k+d-1]``, ``d ∈ {0..3}``.  Like
the other Fig 10 codes it has three parallelizable loops and the usual
three variants (collapsed two-level, tight simd = parallel SPMD, non-tight
simd = parallel generic).  The paper observed a marginal improvement for
"SPMD SIMD" here (slightly better z-reuse in the group) and the ≈15 %
generic-mode penalty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import api as omp
from repro.gpu.device import Device
from repro.kernels.common import make_grid3d

#: Cubic-flavoured interpolation weights (sum to 1).
WEIGHTS = (-0.0625, 0.5625, 0.5625, -0.0625)


@dataclass
class InterpolData:
    """Device-resident interpolation problem."""

    nx: int
    ny: int
    nz: int
    x_host: np.ndarray
    x: object
    y: object

    @property
    def nz_out(self) -> int:
        return self.nz - 3

    def reset(self) -> None:
        self.y.fill_from(np.zeros(self.nx * self.ny * self.nz_out))

    def reference(self) -> np.ndarray:
        x = self.x_host
        out = sum(
            w * x[:, :, d : d + self.nz_out] for d, w in enumerate(WEIGHTS)
        )
        return out.reshape(-1)

    def check(self, atol: float = 1e-9) -> bool:
        return bool(np.allclose(self.y.to_numpy(), self.reference(), atol=atol))


def build_data(
    device: Device, nx: int = 16, ny: int = 16, nz: int = 67, seed: int = 23
) -> InterpolData:
    x_host = make_grid3d(nx, ny, nz, seed)
    nz_out = nz - 3
    return InterpolData(
        nx=nx,
        ny=ny,
        nz=nz,
        x_host=x_host,
        x=device.from_array("ip.x", x_host.reshape(-1)),
        y=device.from_array("ip.y", np.zeros(nx * ny * nz_out)),
    )


def _interp(tc, view, nx, ny, nz, nz_out, i, j, k):
    base = (i * ny + j) * nz + k
    vals = yield from tc.load_vec(view["x"], range(base, base + 4))
    yield from tc.compute("fma", 4)
    out = sum(w * v for w, v in zip(WEIGHTS, vals))
    yield from tc.store(view["y"], (i * ny + j) * nz_out + k, out)


def program_no_simd(nx: int, ny: int, nz: int):
    nz_out = nz - 3
    total = nx * ny * nz_out

    def body(tc, ivs, view):
        (flat,) = ivs
        yield from tc.compute("alu", 4)
        ij, k = divmod(flat, nz_out)
        i, j = divmod(ij, ny)
        yield from _interp(tc, view, nx, ny, nz, nz_out, i, j, k)

    return omp.target(
        omp.teams_distribute_parallel_for(
            omp.loop(total, body=body, uses=("x", "y"), name="ip.cells")
        )
    )


def program_spmd_simd(nx: int, ny: int, nz: int):
    nz_out = nz - 3
    outer = nx * ny

    def body(tc, ivs, view):
        ij, k = ivs
        yield from tc.compute("alu", 2)
        i, j = divmod(ij, ny)
        yield from _interp(tc, view, nx, ny, nz, nz_out, i, j, k)

    inner = omp.simd(omp.loop(nz_out, body=body, uses=("x", "y"), name="ip.z"))
    return omp.target(
        omp.teams_distribute_parallel_for(
            omp.loop(outer, nested=inner, uses=(), name="ip.ij")
        )
    )


def program_generic_simd(nx: int, ny: int, nz: int):
    nz_out = nz - 3
    outer = nx * ny

    def pre(tc, ivs, view):
        (ij,) = ivs
        yield from tc.compute("alu", 2)
        i, j = divmod(ij, ny)
        return {"i": i, "j": j}

    def body(tc, ivs, view):
        ij, k = ivs
        yield from _interp(
            tc, view, nx, ny, nz, nz_out, int(view["i"]), int(view["j"]), k
        )

    inner = omp.simd(omp.loop(nz_out, body=body, uses=("x", "y"), name="ip.z"))
    return omp.target(
        omp.teams_distribute_parallel_for(
            omp.loop(
                outer,
                nested=inner,
                pre=pre,
                captures=[("i", "i64"), ("j", "i64")],
                uses=(),
                name="ip.ij",
            )
        )
    )


PROGRAMS = {
    "no_simd": program_no_simd,
    "spmd_simd": program_spmd_simd,
    "generic_simd": program_generic_simd,
}


def run(
    device: Device,
    data: InterpolData,
    variant: str,
    simd_len: int = 32,
    num_teams: int = 16,
    team_size: int = 128,
):
    data.reset()
    prog = PROGRAMS[variant](data.nx, data.ny, data.nz)
    args = {"x": data.x, "y": data.y}
    kernel = omp.compile(prog, tuple(args), name=f"muram_interpol.{variant}")
    return omp.launch(
        device,
        kernel,
        num_teams=num_teams,
        team_size=team_size,
        simd_len=1 if variant == "no_simd" else simd_len,
        args=args,
    )
