"""CUDA-style launch streams: ordered within, concurrent across.

A :class:`Stream` owns one worker thread and an ordered queue: work
submitted to the stream runs strictly in submission order, while
independent streams make progress concurrently.  Actual device
execution still serializes on ``Device.lock`` — one simulated GPU runs
one grid at a time — so what streams buy is *pipeline* concurrency
(building entries, allocating buffers, waiting on handles) plus the
ordering contract the serve tier's per-stream lanes build on.

``omp.launch(..., stream=s)`` submits the launch and returns a
:class:`LaunchHandle` immediately; ``handle.result()`` blocks until the
launch completes and returns the usual
:class:`~repro.core.api.LaunchResult` (or re-raises the launch's
error — same exception a synchronous call would have raised).
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import Callable, Optional

__all__ = ["LaunchHandle", "Stream"]

_stream_ids = itertools.count()


class LaunchHandle:
    """Future for one stream-submitted launch."""

    __slots__ = ("_event", "_result", "_error", "stream", "seq")

    def __init__(self, stream: "Stream", seq: int) -> None:
        self._event = threading.Event()
        self._result = None
        self._error: Optional[BaseException] = None
        self.stream = stream
        self.seq = seq

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block until the launch completes; return its result or
        re-raise its error."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"launch {self.seq} on {self.stream!r} still pending "
                f"after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        if not self._event.wait(timeout):
            raise TimeoutError(f"launch {self.seq} still pending")
        return self._error

    # -- producer side (stream worker only) ---------------------------------
    def _resolve(self, result) -> None:
        self._result = result
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class Stream:
    """An ordered launch queue with its own worker thread.

    Work items are plain callables; :meth:`submit` enqueues and returns
    a :class:`LaunchHandle`.  Items run one at a time in FIFO order — a
    failed item rejects its own handle and the stream continues with
    the next (matching CUDA streams, where an error poisons the
    erroring launch, not the stream).  :meth:`synchronize` blocks until
    everything submitted so far has completed.  Streams are context
    managers; :meth:`close` drains the queue and joins the worker.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or f"stream-{next(_stream_ids)}"
        self._queue: "queue.Queue" = queue.Queue()
        self._seq = itertools.count()
        self._closed = False
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._worker = threading.Thread(
            target=self._run, name=self.name, daemon=True
        )
        self._worker.start()

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "Stream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Finish queued work, then stop the worker; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._queue.put(None)
        self._worker.join()

    # -- submission ---------------------------------------------------------
    def submit(self, fn: Callable[[], object]) -> LaunchHandle:
        """Enqueue ``fn`` for in-order execution; returns its handle."""
        with self._lock:
            if self._closed:
                raise RuntimeError(f"{self.name} is closed")
            handle = LaunchHandle(self, next(self._seq))
            self._inflight += 1
        self._queue.put((fn, handle))
        return handle

    def synchronize(self, timeout: Optional[float] = None) -> None:
        """Block until every launch submitted so far has completed."""
        with self._idle:
            if not self._idle.wait_for(lambda: self._inflight == 0, timeout):
                raise TimeoutError(
                    f"{self.name}: {self._inflight} launches still "
                    f"in flight after {timeout}s"
                )

    @property
    def pending(self) -> int:
        with self._lock:
            return self._inflight

    # -- worker -------------------------------------------------------------
    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                break
            fn, handle = item
            try:
                handle._resolve(fn())
            except BaseException as err:
                handle._reject(err)
            finally:
                with self._idle:
                    self._inflight -= 1
                    self._idle.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream({self.name!r}, pending={self.pending})"
