"""Write-ahead request journal: crash durability for the serve tier.

The service's exactly-once contract for *acknowledged* requests rests on
one ordering rule: a request's ``done`` record is appended **and
fsynced** before its client ever sees the ack.  Everything else follows:

* **admit** records are buffered at admission (encoding deferred off
  the event loop) and ride the next group commit.  Losing a buffered or
  unsynced admit is safe — the client was never acked, so it resubmits
  (same idempotency key) and execution happens once on the new attempt.
* **done** records carry the request's wire-level result (outputs,
  cycles).  They are fsynced before the future resolves, so a crash
  after the ack always finds the result on disk, and a resubmitted key
  is answered from the journal without re-execution.
* on restart, :func:`RequestJournal.replay` rebuilds both maps; keys
  admitted but not done are the crash's in-flight requests — the
  service re-executes exactly those (:meth:`LaunchService.recover`).

Format: JSON lines, one record per line, each wrapped as
``{"c": <crc32 of the record JSON>, "r": {...}}``.  Replay tolerates a
torn tail (a crash mid-append leaves a truncated last line) and any
CRC-mismatching line by skipping it and counting ``torn_records`` —
recovery never requires a clean shutdown.

Group commit keeps the WAL off the latency ladder: appends are buffered
writes on the event-loop thread; one ``commit()`` (flush + fsync) covers
every record appended before it, so a dispatch group of N requests pays
one fsync, not N.

The ``journal.torn_write`` fault site (:mod:`repro.faults.plan`,
coordinate ``index``) truncates an *admit* record mid-line, modelling
power loss during an unsynced append.  ``done`` records are exempt by
design: they are fsynced before the ack, and a synced-then-lost write
would model the disk lying about fsync, which is out of scope.
"""

from __future__ import annotations

import base64
import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

__all__ = ["JournalState", "RequestJournal", "pack_array", "unpack_array"]


def pack_array(values) -> dict:
    """Wire form of a float64 array: base64 of its raw bytes.

    JSON float lists cost ~17 chars and a Python-level ``repr`` per
    element; this is a single C-speed copy, bit-exact by construction,
    and what keeps the journal's encode cost off the latency ladder.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    return {"__f64__": base64.b64encode(arr.tobytes()).decode("ascii")}


def unpack_array(value) -> "np.ndarray":
    """Inverse of :func:`pack_array`; tolerates plain JSON lists (older
    records and hand-written test fixtures)."""
    if isinstance(value, dict) and "__f64__" in value:
        raw = base64.b64decode(value["__f64__"])
        return np.frombuffer(raw, dtype=np.float64).copy()
    return np.asarray(value, dtype=np.float64)


@dataclass
class JournalState:
    """What replaying a journal file yields."""

    #: key → request wire dict (as the client submitted it).
    admitted: Dict[str, dict] = field(default_factory=dict)
    #: key → result wire dict (``outputs``/``cycles``).
    done: Dict[str, dict] = field(default_factory=dict)
    #: Torn/corrupt lines skipped during replay.
    torn_records: int = 0
    #: Total well-formed records replayed.
    records: int = 0

    def unfinished(self) -> Dict[str, dict]:
        """Admitted requests with no durable result — the crash's
        in-flight set, to be re-executed on recovery."""
        return {k: v for k, v in self.admitted.items() if k not in self.done}


class RequestJournal:
    """Append-only JSON-lines WAL with CRC'd records and group commit.

    Thread-safe: appends come from the event-loop thread, ``commit()``
    runs on an executor thread; one lock covers the (buffered) write and
    the flush+fsync.  ``fsync=False`` drops durability for tests that
    only need the format.
    """

    def __init__(self, path: str, *, faults=None, fsync: bool = True) -> None:
        self.path = path
        self.faults = faults
        self.fsync = bool(fsync)
        directory = os.path.dirname(os.path.abspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "ab")
        self._lock = threading.Lock()
        self._index = 0
        self._dirty = False
        #: Admits buffered as (index, key, wire) until the next write of
        #: a critical record or commit: admission runs on the event
        #: loop, and JSON encoding is the journal's dominant cost, so it
        #: is deferred to the commit thread.  Losing a buffered admit in
        #: a crash is the same non-event as losing an unsynced one.
        self._admit_buf = []
        self.stats = {"appends": 0, "commits": 0, "torn_writes": 0}

    # -- append -------------------------------------------------------------
    def _encode(self, record: dict) -> bytes:
        # The body is spliced into the wrapper verbatim rather than
        # re-serialized: encoding is the journal's dominant cost (the
        # fsync is amortized by group commit) and the record would
        # otherwise be JSON-dumped twice.
        body = json.dumps(record, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(body.encode())
        return ('{"c":%d,"r":%s}\n' % (crc, body)).encode()

    def _write_record_locked(self, index: int, record: dict,
                             *, critical: bool) -> None:
        line = self._encode(record)
        if (not critical and self.faults is not None
                and self.faults.fires("journal.torn_write",
                                      index=index) is not None):
            # Model power loss mid-append: half the bytes land, the
            # record is unrecoverable, replay skips it.  The newline
            # bounds the damage to this record, as filesystem block
            # boundaries bound a real torn write.
            self.faults.record("journal.torn_write", {"index": index},
                               recovered=True,
                               detail="journal append truncated")
            self.stats["torn_writes"] += 1
            self._fh.write(line[: max(1, len(line) // 2)] + b"\n")
        else:
            self._fh.write(line)

    def _flush_admits_locked(self) -> None:
        for index, key, wire in self._admit_buf:
            self._write_record_locked(
                index, {"t": "admit", "key": key, "req": wire},
                critical=False)
        self._admit_buf.clear()

    def append_admit(self, key: str, request_wire: dict) -> None:
        """Journal an admitted request (synced with the next commit).

        Cheap on the caller's thread: the record is buffered and only
        encoded/written by the next :meth:`commit` or done append.
        """
        with self._lock:
            self._admit_buf.append((self._index, key, request_wire))
            self._index += 1
            self._dirty = True
            self.stats["appends"] += 1

    def append_done(self, key: str, result_wire: dict) -> None:
        """Journal a completed result.  MUST be followed by
        :meth:`commit` before the client is acked."""
        record = {"t": "done", "key": key, "res": result_wire}
        with self._lock:
            # Preserve file order: buffered admits precede this done.
            self._flush_admits_locked()
            index = self._index
            self._index += 1
            self._write_record_locked(index, record, critical=True)
            self._dirty = True
            self.stats["appends"] += 1

    # -- durability ---------------------------------------------------------
    def commit(self) -> None:
        """Flush and fsync everything appended so far (group commit)."""
        with self._lock:
            if not self._dirty:
                return
            self._flush_admits_locked()
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._dirty = False
            self.stats["commits"] += 1

    def close(self) -> None:
        with self._lock:
            if self._fh.closed:
                return
            self._flush_admits_locked()
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- replay -------------------------------------------------------------
    @staticmethod
    def replay(path: str) -> JournalState:
        """Rebuild journal state from disk, tolerating a torn tail.

        Any line that fails to decode or whose CRC mismatches is skipped
        and counted — a crash can only tear the unsynced tail, and a
        torn admit means the request was never acked.
        """
        state = JournalState()
        try:
            fh = open(path, "rb")
        except OSError:
            return state
        with fh:
            for raw in fh:
                try:
                    wrapped = json.loads(raw)
                    record = wrapped["r"]
                    body = json.dumps(record, sort_keys=True,
                                      separators=(",", ":"))
                    if zlib.crc32(body.encode()) != wrapped["c"]:
                        raise ValueError("crc mismatch")
                except (ValueError, KeyError, TypeError):
                    state.torn_records += 1
                    continue
                state.records += 1
                kind = record.get("t")
                key = record.get("key")
                if not key:
                    continue
                if kind == "admit":
                    state.admitted[key] = record.get("req") or {}
                elif kind == "done":
                    state.done[key] = record.get("res") or {}
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RequestJournal({self.path!r}, appends="
                f"{self.stats['appends']}, commits={self.stats['commits']})")
