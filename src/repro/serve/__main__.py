"""CLI: boot the launch service, optionally drive it with load.

Modes::

    python -m repro.serve                     # serve the demo catalog on TCP
    python -m repro.serve --port 9000 --pool 4
    python -m repro.serve --journal /var/tmp/serve.wal   # durable serve
    python -m repro.serve --selftest          # boot + TCP loadgen + verify,
                                              # print metrics JSON, exit
    python -m repro.serve --selftest --faults 42:worker.crash=0.3
    python -m repro.serve chaos --cycles 25 --seed 2023  # kill/restart
                                              # campaign (see serve/chaos.py)

``--pool N`` attaches a persistent warm worker pool (N forked workers)
so block execution survives across launches with zero fork-per-launch;
without it, batches run on the in-process serial engine.  ``--faults``
takes the ``REPRO_FAULTS`` grammar and wires the plan into the pool
(``worker.crash``/``worker.hang``), admission (``serve.reject``), and
the serve-layer durability sites (``serve.conn_drop``,
``serve.dispatch_stall``, ``journal.torn_write``, ``lease.corrupt``) —
the selftest must still return verified-correct results, which is
exactly what the CI fault leg asserts.

``--journal PATH`` makes acknowledged requests durable: the write-ahead
journal is replayed at boot (completed keys answer resubmits without
re-execution; admitted-but-unfinished requests are re-executed), and
SIGTERM triggers a graceful drain — new submissions get
``Backpressure(reason="draining")``, in-flight requests finish, the
journal is flushed, then the process exits.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys

from repro.faults import coerce_faults
from repro.gpu.device import Device
from repro.serve.demo import demo_catalog
from repro.serve.lease import PoolLease
from repro.serve.loadgen import drive_tcp
from repro.serve.scheduler import FairScheduler
from repro.serve.server import LaunchService


def build_service(args) -> LaunchService:
    """Wire device, catalog, scheduler, and (optionally) the warm pool."""
    device = Device()
    catalog = demo_catalog()
    faults = coerce_faults(args.faults) if args.faults else None
    lease = None
    if args.pool:
        lease = PoolLease(catalog, device.params, workers=args.pool,
                          faults=faults)
    scheduler = FairScheduler(max_queue=args.max_queue, faults=faults)
    return LaunchService(
        device, catalog,
        scheduler=scheduler,
        lease=lease,
        engine=args.engine,
        faults=faults,
        max_batch=args.max_batch,
        max_inflight=args.max_inflight,
    )


async def _serve(args) -> int:
    service = build_service(args)
    state = None
    if getattr(args, "journal", None):
        state = service.load_journal(args.journal)
    server = await service.serve_tcp(args.host, args.port)
    addr = server.sockets[0].getsockname()
    print(f"repro.serve listening on {addr[0]}:{addr[1]} "
          f"(kernels: {', '.join(service.catalog.names())})", flush=True)
    if state is not None:
        recovered = await service.recover(state)
        print(f"journal: {len(state.done)} durable results replayed, "
              f"{recovered} unfinished re-executed, "
              f"{state.torn_records} torn records skipped", flush=True)
    loop = asyncio.get_running_loop()
    drain_requested = asyncio.Event()
    try:
        loop.add_signal_handler(signal.SIGTERM, drain_requested.set)
    except NotImplementedError:  # pragma: no cover - non-POSIX loops
        pass
    serve_task = asyncio.ensure_future(server.serve_forever())
    drain_task = asyncio.ensure_future(drain_requested.wait())
    try:
        await asyncio.wait({serve_task, drain_task},
                           return_when=asyncio.FIRST_COMPLETED)
        if drain_requested.is_set():
            print("SIGTERM: draining...", flush=True)
            service.begin_drain()
            await service.drain()
            print("drained; shutting down", flush=True)
    except asyncio.CancelledError:
        pass
    finally:
        for task in (serve_task, drain_task):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        await service.stop()
        if service.journal is not None:
            service.journal.close()
        if service.lease is not None:
            service.lease.close()
    return 0


async def _selftest(args) -> int:
    service = build_service(args)
    server = await service.serve_tcp(args.host, 0)
    host, port = server.sockets[0].getsockname()[:2]
    try:
        metrics = await drive_tcp(
            host, port,
            clients=args.clients,
            requests_per_client=args.requests,
            seed=args.seed,
        )
    finally:
        await service.stop()
        if service.lease is not None:
            metrics["pool_warm_dispatches"] = float(
                service.lease.stats.get("warm_dispatches", 0))
            metrics["pool_worker_deaths"] = float(
                service.lease.stats.get("worker_deaths", 0))
            service.lease.close()
    metrics["batches"] = float(service.stats["batches"])
    metrics["batched_requests"] = float(service.stats["batched_requests"])
    metrics["max_batch_size"] = float(service.stats["max_batch_size"])
    print(json.dumps(metrics, indent=2, sort_keys=True))
    if metrics["errors"]:
        print(f"selftest FAILED: {int(metrics['errors'])} errors",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="async launch-stream service over the simulated GPU",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8473)
    parser.add_argument("--pool", type=int, default=0, metavar="N",
                        help="attach a warm worker pool with N forked workers")
    parser.add_argument("--engine", default=None,
                        help="round engine for batches (fast/jit/instrumented)")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault plan, REPRO_FAULTS grammar "
                             "(e.g. 42:worker.crash=0.3)")
    parser.add_argument("--max-batch", type=int, default=16)
    parser.add_argument("--max-queue", type=int, default=2048)
    parser.add_argument("--max-inflight", type=int, default=4096)
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="write-ahead request journal (replayed at boot; "
                             "SIGTERM drains gracefully)")
    parser.add_argument("--selftest", action="store_true",
                        help="boot, drive TCP load, verify outputs, exit")
    parser.add_argument("--clients", type=int, default=16)
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    if args.selftest:
        return asyncio.run(_selftest(args))
    return asyncio.run(_serve(args))


def _dispatch(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "chaos":
        from repro.serve.chaos import main as chaos_main
        return chaos_main(argv[1:])
    return main(argv)


if __name__ == "__main__":
    sys.exit(_dispatch())
