"""Demo kernel catalog for the serve CLI, benchmarks, and CI smoke.

Kernels compile against a fixed trip count (canonical loops are static
by design), so each servable kernel bakes in its problem size — the
serving analogue of a compiled model artifact.  ``REFERENCE`` holds the
NumPy oracle per kernel; the load generator uses it to verify every
response against ground truth, which is what turns the CI smoke job
into a correctness gate rather than a liveness ping.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro import omp
from repro.serve.catalog import KernelCatalog

__all__ = ["DEMO_N", "REFERENCE", "demo_catalog"]

#: Element count every demo kernel is compiled for.
DEMO_N = 256


def _axpy_body(tc, ivs, view):
    (i,) = ivs
    x = yield from tc.load(view["x"], i)
    y = yield from tc.load(view["y"], i)
    yield from tc.store(view["y"], i, 2.0 * x + y)


def _square_body(tc, ivs, view):
    (i,) = ivs
    x = yield from tc.load(view["x"], i)
    yield from tc.compute("mul")
    yield from tc.store(view["y"], i, x * x)


def _scale_sum_body(tc, ivs, view):
    (i,) = ivs
    x = yield from tc.load(view["x"], i)
    yield from tc.store(view["y"], i, 0.5 * x)
    yield from tc.atomic_add(view["acc"], 0, x)


def demo_catalog() -> KernelCatalog:
    """Compile and register the demo kernels ('axpy', 'square',
    'scale_sum' — the last exercises cross-block atomics through the
    merge)."""
    catalog = KernelCatalog()
    catalog.register("axpy", omp.compile(
        omp.target(omp.teams_distribute_parallel_for(DEMO_N, body=_axpy_body)),
        ("x", "y"), name="axpy",
    ))
    catalog.register("square", omp.compile(
        omp.target(omp.teams_distribute_parallel_for(DEMO_N, body=_square_body)),
        ("x", "y"), name="square",
    ))
    catalog.register("scale_sum", omp.compile(
        omp.target(omp.teams_distribute_parallel_for(
            DEMO_N, body=_scale_sum_body)),
        ("acc", "x", "y"), name="scale_sum",
    ))
    return catalog


def _ref_axpy(args: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    return {"y": 2.0 * args["x"] + args["y"]}


def _ref_square(args: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    return {"y": args["x"] * args["x"]}


def _ref_scale_sum(args: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    return {"y": 0.5 * args["x"],
            "acc": args["acc"] + np.sum(args["x"], keepdims=True)}


#: NumPy ground truth per kernel: ``fn(args) -> expected outputs``.
REFERENCE: Dict[str, Callable] = {
    "axpy": _ref_axpy,
    "square": _ref_square,
    "scale_sum": _ref_scale_sum,
}
