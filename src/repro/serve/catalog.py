"""Kernel catalog: named compiled kernels shared with warm workers.

A persistent forked worker inherits the parent's memory **at spawn
time** and never sees objects created afterwards, so kernels the serve
tier dispatches to a :class:`~repro.serve.lease.PoolLease` must exist
*before* the pool forks.  The catalog is that pre-fork registry: the
server registers every servable kernel by name at boot, the pool's
runner closes over the catalog (inherited copy-on-write into each
worker), and requests then name kernels instead of shipping unpicklable
entry closures.

Registration after a lease has forked its workers still works for
in-process execution paths, but warm workers will not see the new
kernel — :meth:`KernelCatalog.freeze` makes that explicit by rejecting
late registrations once a pool has captured the catalog.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.codegen.program import CompiledKernel
from repro.errors import LaunchError
from repro.runtime.icv import DEFAULT_SHARING_BYTES, LaunchConfig
from repro.runtime.state import RuntimeCounters

__all__ = ["KernelCatalog"]


class KernelCatalog:
    """Named registry of :class:`~repro.codegen.program.CompiledKernel`.

    Thread-safe; the serve tier reads it from the batcher thread while
    the boot path registers kernels.
    """

    def __init__(self) -> None:
        self._kernels: Dict[str, CompiledKernel] = {}
        self._lock = threading.Lock()
        self._frozen = False

    def register(self, name: str, kernel: CompiledKernel) -> CompiledKernel:
        """Register a compiled kernel under ``name``."""
        if not isinstance(kernel, CompiledKernel):
            raise LaunchError(
                "register() takes a CompiledKernel — compile directive "
                "trees first (omp.compile(tree, arg_names, name=...))"
            )
        with self._lock:
            if self._frozen:
                raise LaunchError(
                    f"catalog is frozen (a warm pool already forked); "
                    f"cannot register {name!r} — warm workers would never "
                    "see it"
                )
            if name in self._kernels:
                raise LaunchError(f"kernel {name!r} already registered")
            self._kernels[name] = kernel
        return kernel

    def freeze(self) -> None:
        """Reject further registrations (called when a pool forks)."""
        with self._lock:
            self._frozen = True

    def get(self, name: str) -> CompiledKernel:
        with self._lock:
            try:
                return self._kernels[name]
            except KeyError:
                raise LaunchError(
                    f"unknown kernel {name!r}; catalog has "
                    f"{sorted(self._kernels)}"
                ) from None

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._kernels))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._kernels

    def __len__(self) -> int:
        with self._lock:
            return len(self._kernels)

    # -- entry construction -------------------------------------------------
    def build_entry(
        self,
        name: str,
        gmem,
        args: Dict[str, object],
        *,
        num_teams: int,
        team_size: int,
        simd_len: Optional[int] = None,
        sharing_bytes: int = DEFAULT_SHARING_BYTES,
        params=None,
    ):
        """Resolve geometry exactly like :func:`repro.core.api.launch`
        and bind one launch entry.

        Returns ``(entry, cfg, rc)`` — the generator entry, the resolved
        :class:`~repro.runtime.icv.LaunchConfig`, and the fresh
        :class:`~repro.runtime.state.RuntimeCounters` the entry mutates.
        Shared by the in-process batch path and the warm workers so both
        resolve ``simd_len``/modes identically (bit-identity depends on
        it).
        """
        kernel = self.get(name)
        if simd_len is None:
            simd_len = kernel.simdlen_hint or 1
        if not kernel.has_simd:
            simd_len = 1
        cfg = LaunchConfig(
            num_teams=num_teams,
            team_size=team_size,
            simd_len=simd_len,
            teams_mode=kernel.teams_mode,
            parallel_mode=kernel.parallel_mode,
            sharing_bytes=sharing_bytes,
            params=params,
        )
        rc = RuntimeCounters()
        entry = kernel.make_entry(cfg, gmem, rc, dict(args))
        return entry, cfg, rc
