"""Multi-tenant admission and weighted fair scheduling.

Two concerns, one small module:

*Admission control* — the scheduler owns bounded queues.  A submit that
would exceed the global or per-tenant depth cap is rejected
**immediately** with a typed :class:`Backpressure` carrying a
machine-readable reason and a ``retry_after`` hint, instead of queueing
unboundedly and letting latency collapse.  The ``serve.reject`` fault
site (:mod:`repro.faults.plan`) hooks the same point, so clients'
retry paths can be exercised deterministically under a seeded plan.

*Weighted fairness* — deficit round robin (DRR) across tenants.  Each
tenant accrues ``weight × quantum`` deficit per scheduling round and
dispatches queued work while its deficit covers the work's cost (cost =
the request's block count, the unit the device actually spends).  A
tenant flooding the queue therefore cannot starve a light tenant: over
any window, dispatched block-cost converges to the weight ratio
(asserted by the skewed-load fairness test).

The scheduler is synchronous and lock-protected; the asyncio server
drives it from its batching loop.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["Backpressure", "CircuitBreaker", "FairScheduler", "TenantQueue"]

#: Default deficit replenished per tenant per round, in block-cost units.
DEFAULT_QUANTUM = 8
#: Default bound on queued entries across all tenants.
DEFAULT_MAX_QUEUE = 2048


class Backpressure(Exception):
    """Typed reject: the service cannot accept this request right now.

    ``reason`` is machine-readable (``"queue_full"``,
    ``"tenant_queue_full"``, ``"injected"``); ``retry_after`` is the
    client's backoff hint in seconds.  The TCP protocol maps this to a
    structured error response rather than a dropped connection.
    """

    def __init__(self, reason: str, *, retry_after: float = 0.05,
                 tenant: Optional[str] = None, detail: str = "") -> None:
        self.reason = reason
        self.retry_after = float(retry_after)
        self.tenant = tenant
        self.detail = detail
        msg = f"backpressure: {reason}"
        if tenant is not None:
            msg += f" (tenant {tenant!r})"
        if detail:
            msg += f" — {detail}"
        super().__init__(msg)

    def as_dict(self) -> Dict[str, object]:
        return {
            "reason": self.reason,
            "retry_after": self.retry_after,
            "tenant": self.tenant,
        }


class CircuitBreaker:
    """Per-tenant failure breaker: open after K consecutive failures.

    Classic three-state machine.  *Closed* admits everything and counts
    consecutive failures; ``threshold`` of them in a row trips it
    *open*, which rejects until ``cooldown`` seconds pass; the first
    :meth:`allow` after the cooldown transitions to *half-open* and
    admits exactly one probe — its success closes the breaker, its
    failure re-opens it for another cooldown.  A breaker protects the
    device from a tenant whose requests deterministically fail (bad
    kernels, impossible deadlines) without costing well-behaved tenants
    anything.

    ``clock`` is injectable for tests; not thread-safe on its own — the
    service drives it from the event loop.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0

    def allow(self) -> bool:
        """May a request pass right now?  (May transition open →
        half-open; the admitted request is then the probe.)"""
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self.opened_at >= self.cooldown:
                self.state = "half_open"
                return True
            return False
        # half_open: one probe is already in flight; hold the line.
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.state = "closed"
        self.opened_at = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if (self.state == "half_open"
                or self.consecutive_failures >= self.threshold):
            if self.state != "open":
                self.trips += 1
            self.state = "open"
            self.opened_at = self._clock()
            self.consecutive_failures = 0

    def snapshot(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
        }


@dataclass
class TenantQueue:
    """Per-tenant scheduling state (DRR deficit + FIFO of entries).

    Entries are ``(cost, deadline, item)``; ``deadline`` is an absolute
    :func:`time.monotonic` value or None.
    """

    name: str
    weight: float = 1.0
    deficit: float = 0.0
    entries: Deque[Tuple[float, Optional[float], object]] = field(
        default_factory=deque)
    #: Cumulative dispatched block-cost (observability / fairness tests).
    dispatched_cost: float = 0.0

    @property
    def depth(self) -> int:
        return len(self.entries)


class FairScheduler:
    """Deficit-round-robin scheduler with bounded admission.

    ``submit`` enqueues (or raises :class:`Backpressure`);
    ``next_batch`` pops up to ``max_items``/``max_cost`` of work in DRR
    order for the server's batching loop.  Tenants are created on
    first submit with weight 1.0 unless :meth:`set_weight` configured
    them; an idle tenant's deficit resets so bursts cannot bank
    unbounded credit.
    """

    def __init__(
        self,
        *,
        quantum: float = DEFAULT_QUANTUM,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_tenant_queue: Optional[int] = None,
        faults=None,
    ) -> None:
        self.quantum = float(quantum)
        self.max_queue = int(max_queue)
        self.max_tenant_queue = (
            int(max_tenant_queue) if max_tenant_queue is not None else None
        )
        self.faults = faults
        self._tenants: "OrderedDict[str, TenantQueue]" = OrderedDict()
        self._lock = threading.Lock()
        self._depth = 0
        self._seq = itertools.count()
        #: Rejects by reason (observability surface).
        self.rejects: Dict[str, int] = {}
        #: Called with each entry whose deadline expired while queued
        #: (outside the lock); the server fails the request's future
        #: with a typed ``Backpressure("deadline")``.
        self.on_expire: Optional[Callable[[object], None]] = None

    # -- configuration ------------------------------------------------------
    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError("tenant weight must be > 0")
        with self._lock:
            self._queue_for(tenant).weight = float(weight)

    def _queue_for(self, tenant: str) -> TenantQueue:
        tq = self._tenants.get(tenant)
        if tq is None:
            tq = TenantQueue(tenant)
            self._tenants[tenant] = tq
        return tq

    # -- admission ----------------------------------------------------------
    def submit(self, item, *, tenant: str = "default",
               cost: float = 1.0,
               deadline: Optional[float] = None) -> None:
        """Enqueue ``item`` for ``tenant`` or raise :class:`Backpressure`.

        ``deadline`` (absolute :func:`time.monotonic`) marks the entry
        stale after that instant: :meth:`next_batch` drops it unstarted
        and reports it through :attr:`on_expire` instead of wasting
        device time on a result the client no longer wants.
        """
        seq = next(self._seq)
        if self.faults is not None:
            coords = {"tenant": tenant, "seq": seq}
            if self.faults.fires("serve.reject", **coords) is not None:
                self.faults.record("serve.reject", coords, recovered=True,
                                   detail="admission reject injected")
                self._count_reject("injected")
                raise Backpressure("injected", tenant=tenant,
                                   detail="fault-plan forced reject")
        with self._lock:
            if self._depth >= self.max_queue:
                self._count_reject_locked("queue_full")
                raise Backpressure(
                    "queue_full", tenant=tenant,
                    retry_after=self._retry_hint(),
                    detail=f"{self._depth} entries queued (cap "
                           f"{self.max_queue})",
                )
            tq = self._queue_for(tenant)
            if (self.max_tenant_queue is not None
                    and tq.depth >= self.max_tenant_queue):
                self._count_reject_locked("tenant_queue_full")
                raise Backpressure(
                    "tenant_queue_full", tenant=tenant,
                    retry_after=self._retry_hint(),
                    detail=f"tenant has {tq.depth} queued (cap "
                           f"{self.max_tenant_queue})",
                )
            tq.entries.append((float(cost), deadline, item))
            self._depth += 1

    def _retry_hint(self) -> float:
        # Crude but honest: deeper backlog, longer hint (50ms per 1k).
        return 0.05 * (1 + self._depth / 1000.0)

    def _count_reject(self, reason: str) -> None:
        with self._lock:
            self._count_reject_locked(reason)

    def _count_reject_locked(self, reason: str) -> None:
        self.rejects[reason] = self.rejects.get(reason, 0) + 1

    # -- dispatch -----------------------------------------------------------
    def next_batch(
        self,
        max_items: int = 64,
        max_cost: Optional[float] = None,
    ) -> List[object]:
        """Pop up to ``max_items`` entries in weighted DRR order.

        One call is one scheduling *round*: every backlogged tenant is
        offered ``weight × quantum`` fresh deficit, then tenants are
        visited round-robin, each dispatching entries while its deficit
        covers their cost.  Entries from different tenants interleave
        into one list — the server's batcher decides how they group
        into grids.
        """
        out: List[object] = []
        expired: List[object] = []
        budget = float("inf") if max_cost is None else float(max_cost)
        now = time.monotonic()
        with self._lock:
            active = [tq for tq in self._tenants.values() if tq.entries]
            if not active:
                return out
            for tq in active:
                tq.deficit += tq.weight * self.quantum
            progress = True
            while progress and len(out) < max_items and budget > 0:
                progress = False
                for tq in active:
                    if len(out) >= max_items or budget <= 0:
                        break
                    # Stale heads (client deadline already passed) are
                    # dropped unstarted: they cost no deficit and make
                    # no progress toward the batch.
                    while tq.entries:
                        cost, deadline, item = tq.entries[0]
                        if deadline is None or now < deadline:
                            break
                        tq.entries.popleft()
                        self._depth -= 1
                        self._count_reject_locked("deadline")
                        expired.append(item)
                        progress = True
                    if not tq.entries:
                        continue
                    cost, deadline, item = tq.entries[0]
                    if cost > tq.deficit:
                        continue
                    tq.entries.popleft()
                    tq.deficit -= cost
                    tq.dispatched_cost += cost
                    self._depth -= 1
                    budget -= cost
                    out.append(item)
                    progress = True
            for tq in active:
                if not tq.entries:
                    # No backlog: credit does not bank across idleness.
                    tq.deficit = 0.0
        if expired and self.on_expire is not None:
            for item in expired:
                self.on_expire(item)
        return out

    # -- observability ------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant queue depth / weight / dispatched-cost snapshot."""
        with self._lock:
            return {
                name: {
                    "depth": float(tq.depth),
                    "weight": tq.weight,
                    "dispatched_cost": tq.dispatched_cost,
                }
                for name, tq in self._tenants.items()
            }
