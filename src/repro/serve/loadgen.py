"""Load generator: drive the serve tier, measure, and verify.

Two transports, one workload model: ``drive_service`` submits straight
into an in-process :class:`~repro.serve.server.LaunchService` (what the
tests and benchmarks use), ``drive_tcp`` opens real sockets against a
running server (what the CI smoke job uses).  Each simulated client is
an asyncio task that issues requests back-to-back on its own stream —
so per-stream ordering is continuously exercised — retrying typed
backpressure rejects after the server's ``retry_after`` hint.

Every response is checked against the NumPy oracle in
:data:`repro.serve.demo.REFERENCE`; a single wrong element fails the
run.  The returned metrics dict (latency percentiles, launches/sec,
reject/retry counts) is the payload ``benchmarks/bench_serve.py``
snapshots into ``BENCH_serve.json`` and CI gates on.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, List, Optional

import numpy as np

from repro.serve.demo import DEMO_N, REFERENCE
from repro.serve.scheduler import Backpressure

__all__ = ["drive_service", "drive_tcp", "percentile"]

#: Cap on backpressure retries before a request counts as failed.
MAX_RETRIES = 50


def percentile(samples: List[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``samples`` (0.0 if empty)."""
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples), q))


def _make_request(rng: np.random.Generator, client: int, seq: int,
                  *, seed: int = 0, keyed: bool = False) -> dict:
    kernel = ("axpy", "square", "scale_sum")[seq % 3]
    args = {"x": rng.standard_normal(DEMO_N)}
    if kernel == "axpy":
        args["y"] = rng.standard_normal(DEMO_N)
    elif kernel == "square":
        args["y"] = np.zeros(DEMO_N)
    else:
        args["y"] = np.zeros(DEMO_N)
        args["acc"] = np.zeros(1)
    spec = {
        "kernel": kernel,
        "args": args,
        "num_teams": 1 + (seq % 3),
        "team_size": 64,
        "out": sorted(args),
        "tenant": f"tenant-{client % 4}",
        "stream": f"client-{client}",
    }
    if keyed:
        spec["key"] = f"s{seed}-c{client}-r{seq}"
    return spec


def _verify(kernel: str, args: Dict[str, np.ndarray],
            outputs: Dict[str, np.ndarray]) -> None:
    expected = REFERENCE[kernel](args)
    for name, want in expected.items():
        got = np.asarray(outputs[name])
        if not np.allclose(got, want, rtol=1e-12, atol=1e-12):
            raise AssertionError(
                f"{kernel}: output {name!r} mismatch "
                f"(max |err| {np.max(np.abs(got - want))})"
            )


def _metrics(latencies: List[float], wall: float, rejects: int,
             retries: int, errors: int) -> Dict[str, float]:
    n = len(latencies)
    return {
        "launches": float(n),
        "wall_s": wall,
        "launches_per_s": n / wall if wall > 0 else 0.0,
        "p50_ms": percentile(latencies, 50) * 1e3,
        "p99_ms": percentile(latencies, 99) * 1e3,
        "max_ms": (max(latencies) * 1e3) if latencies else 0.0,
        "rejects": float(rejects),
        "retries": float(retries),
        "errors": float(errors),
    }


async def drive_service(
    service,
    *,
    clients: int = 32,
    requests_per_client: int = 8,
    seed: int = 0,
    verify: bool = True,
    keyed: bool = False,
) -> Dict[str, float]:
    """Drive an in-process service with concurrent stream clients.

    ``keyed=True`` stamps every request with a deterministic idempotency
    key (``s<seed>-c<client>-r<seq>``) so journaled services exercise
    the durability path under plain load.
    """
    latencies: List[float] = []
    counters = {"rejects": 0, "retries": 0, "errors": 0}
    from repro.serve.server import LaunchRequest

    async def client(cid: int) -> None:
        rng = np.random.default_rng(seed * 10007 + cid)
        for seq in range(requests_per_client):
            spec = _make_request(rng, cid, seq, seed=seed, keyed=keyed)
            args = spec.pop("args")
            request = LaunchRequest(args={k: v.copy() for k, v in args.items()},
                                    **spec)
            start = time.monotonic()
            for _ in range(MAX_RETRIES):
                try:
                    outcome = await service.submit(request)
                    break
                except Backpressure as bp:
                    counters["rejects"] += 1
                    counters["retries"] += 1
                    await asyncio.sleep(bp.retry_after)
            else:
                counters["errors"] += 1
                continue
            latencies.append(time.monotonic() - start)
            if outcome.error is not None:
                counters["errors"] += 1
            elif verify:
                _verify(spec["kernel"], args, outcome.outputs)

    start = time.monotonic()
    await asyncio.gather(*(client(c) for c in range(clients)))
    wall = time.monotonic() - start
    return _metrics(latencies, wall, counters["rejects"],
                    counters["retries"], counters["errors"])


async def drive_tcp(
    host: str,
    port: int,
    *,
    clients: int = 16,
    requests_per_client: int = 8,
    seed: int = 0,
    verify: bool = True,
    keyed: bool = False,
) -> Dict[str, float]:
    """Drive a TCP server: one connection + one stream per client.

    With ``keyed=True`` every request carries a deterministic
    idempotency key and a dropped connection (injected
    ``serve.conn_drop`` or a restart) is handled by reconnecting and
    resubmitting the same key — the journal answers the resubmit
    without re-executing.
    """
    latencies: List[float] = []
    counters = {"rejects": 0, "retries": 0, "errors": 0}

    async def client(cid: int) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        rng = np.random.default_rng(seed * 10007 + cid)
        try:
            for seq in range(requests_per_client):
                spec = _make_request(rng, cid, seq, seed=seed, keyed=keyed)
                args = spec.pop("args")
                msg = dict(spec)
                msg["id"] = seq
                msg["args"] = {k: v.tolist() for k, v in args.items()}
                start = time.monotonic()
                reply: Optional[dict] = None
                for _ in range(MAX_RETRIES):
                    try:
                        writer.write(json.dumps(msg).encode() + b"\n")
                        await writer.drain()
                        raw = await reader.readline()
                    except (ConnectionError, OSError):
                        raw = b""
                    if not raw:
                        # Connection dropped mid-request: reconnect and
                        # resubmit.  Only safe for keyed requests, which
                        # the journal deduplicates.
                        reply = None
                        counters["retries"] += 1
                        try:
                            writer.close()
                        except Exception:
                            pass
                        await asyncio.sleep(0.05)
                        try:
                            reader, writer = await asyncio.open_connection(
                                host, port)
                        except OSError:
                            pass
                        continue
                    reply = json.loads(raw)
                    if "backpressure" in reply:
                        counters["rejects"] += 1
                        counters["retries"] += 1
                        await asyncio.sleep(
                            reply["backpressure"].get("retry_after", 0.05)
                        )
                        continue
                    break
                if reply is None or "backpressure" in reply:
                    counters["errors"] += 1
                    continue
                latencies.append(time.monotonic() - start)
                if not reply.get("ok"):
                    counters["errors"] += 1
                elif verify:
                    _verify(spec["kernel"], args, reply["outputs"])
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except Exception:
                pass

    start = time.monotonic()
    await asyncio.gather(*(client(c) for c in range(clients)))
    wall = time.monotonic() - start
    return _metrics(latencies, wall, counters["rejects"],
                    counters["retries"], counters["errors"])
