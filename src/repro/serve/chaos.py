"""Chaos campaign: SIGKILL the durable server under load, prove
exactly-once.

``python -m repro.serve chaos`` runs the serve tier's crash-recovery
acceptance test end-to-end, with real processes and real sockets:

1. a journaled server subprocess is booted on a free port;
2. deterministic keyed clients (the :mod:`repro.serve.loadgen` workload,
   seeded) submit requests over TCP, reconnecting and **resubmitting the
   same idempotency key** whenever the connection dies;
3. a killer task SIGKILLs the server ``--cycles`` times — paced so kills
   land while traffic is in flight — and restarts it each time; the
   restart replays the journal and re-executes whatever was admitted but
   unfinished;
4. the final shutdown is a SIGTERM drain (the graceful path), and then
   the verdict is computed.

The campaign passes only if **every acknowledged request completed
exactly once**: each acked key has exactly one durable ``done`` record
in the journal, and its acked outputs are bit-identical (``tobytes``
equality, not allclose) to a fault-free serial baseline executed
in-driver.  Crashes may lose *unacknowledged* work — that is the
contract — but an ack, once seen by a client, must survive any number
of SIGKILLs.

On divergence the campaign dumps repro artifacts (seed, per-key expected
vs. got arrays, the journal file) under ``--artifacts`` so the failure
can be replayed offline.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

import numpy as np

import repro
from repro.serve import batch as batchmod
from repro.serve.demo import demo_catalog
from repro.serve.journal import RequestJournal
from repro.serve.loadgen import _make_request

__all__ = ["main", "run_campaign"]

#: The documented acceptance seed (ISSUE 9): 25+ cycles, zero loss.
DEFAULT_SEED = 2023
DEFAULT_CYCLES = 25
#: Default serve-layer fault mix layered on top of the kills.
DEFAULT_SITES = "serve.conn_drop=0.08,serve.dispatch_stall=0.05," \
                "journal.torn_write=0.1"


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _requests_for(seed: int, clients: int, per_client: int) -> List[dict]:
    """The campaign's deterministic keyed workload (loadgen's model)."""
    out = []
    for cid in range(clients):
        rng = np.random.default_rng(seed * 10007 + cid)
        for seq in range(per_client):
            out.append(_make_request(rng, cid, seq, seed=seed, keyed=True))
    return out


def serial_baseline(requests: List[dict]) -> Dict[str, Dict[str, bytes]]:
    """Fault-free serial execution of the workload, keyed by idempotency
    key; values are output-name → raw bytes for bit-exact comparison."""
    from repro.gpu.device import Device

    device = Device()
    catalog = demo_catalog()
    expected: Dict[str, Dict[str, bytes]] = {}
    for spec in requests:
        prepared = batchmod.prepare(
            device, catalog, spec["kernel"], spec["args"],
            num_teams=spec["num_teams"], team_size=spec["team_size"],
            out=spec["out"], tag=spec["key"],
        )
        try:
            outcome = batchmod.run_batch(device, [prepared])[0]
            outcome.raise_for_error()
            expected[spec["key"]] = {
                name: arr.tobytes() for name, arr in outcome.outputs.items()
            }
        finally:
            batchmod.release(device, prepared)
    return expected


class _Server:
    """The journaled server subprocess: boot, health-poll, kill, restart."""

    def __init__(self, port: int, journal: str, *, faults: Optional[str],
                 pool: int, log_path: str) -> None:
        self.port = port
        self.journal = journal
        self.faults = faults
        self.pool = pool
        self.log_path = log_path
        self.proc: Optional[subprocess.Popen] = None
        self.boots = 0

    def _cmd(self) -> List[str]:
        cmd = [sys.executable, "-m", "repro.serve",
               "--host", "127.0.0.1", "--port", str(self.port),
               "--journal", self.journal]
        if self.faults:
            cmd += ["--faults", self.faults]
        if self.pool:
            cmd += ["--pool", str(self.pool)]
        return cmd

    def start(self) -> None:
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        log = open(self.log_path, "ab")
        # Own session/process group: a SIGKILL must take down the warm
        # pool's forked workers too (they inherit the listening socket;
        # a surviving orphan would hold the port across the restart —
        # and a real machine crash kills the whole tree anyway).
        self.proc = subprocess.Popen(
            self._cmd(), stdout=log, stderr=subprocess.STDOUT, env=env,
            start_new_session=True,
        )
        log.close()
        self.boots += 1

    async def wait_ready(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.proc is not None and self.proc.poll() is not None:
                raise RuntimeError(
                    f"server exited during boot (rc {self.proc.returncode}); "
                    f"see {self.log_path}")
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", self.port)
                writer.write(b'{"op": "health"}\n')
                await writer.drain()
                reply = json.loads(await asyncio.wait_for(
                    reader.readline(), 2.0))
                writer.close()
                if reply.get("ready"):
                    return
            except (OSError, asyncio.TimeoutError, ValueError):
                await asyncio.sleep(0.1)
        raise RuntimeError(f"server not ready within {timeout}s")

    def _killpg(self) -> None:
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            self.proc.kill()

    def kill(self) -> None:
        """SIGKILL the whole server session: no cleanup, no journal
        flush, no survivors (the crash model)."""
        if self.proc is not None and self.proc.poll() is None:
            self._killpg()
            self.proc.wait()

    def terminate(self, timeout: float = 30.0) -> int:
        """SIGTERM (graceful drain) and wait; returns the exit code."""
        if self.proc is None:
            return 0
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                return self.proc.wait(timeout)
            except subprocess.TimeoutExpired:
                self._killpg()
                return self.proc.wait()
        return self.proc.returncode


async def _client(server: _Server, requests: List[dict],
                  acked: Dict[str, Dict[str, bytes]],
                  counters: Dict[str, int], stop_by: float) -> None:
    """Submit this client's requests in order; survive kills by
    reconnecting and resubmitting the unacked key."""
    reader = writer = None
    for spec in requests:
        msg = {k: v for k, v in spec.items() if k != "args"}
        msg["id"] = spec["key"]
        msg["args"] = {k: v.tolist() for k, v in spec["args"].items()}
        payload = json.dumps(msg).encode() + b"\n"
        while True:
            if time.monotonic() > stop_by:
                raise RuntimeError(
                    f"campaign wall-clock budget exhausted with key "
                    f"{spec['key']} unacked")
            try:
                if writer is None:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port)
                writer.write(payload)
                await writer.drain()
                raw = await asyncio.wait_for(reader.readline(), 20.0)
            except (OSError, asyncio.TimeoutError):
                raw = b""
            if not raw:
                # Server died (or dropped us): reconnect, resubmit key.
                counters["resubmits"] += 1
                if writer is not None:
                    try:
                        writer.close()
                    except Exception:
                        pass
                reader = writer = None
                await asyncio.sleep(0.2)
                continue
            reply = json.loads(raw)
            if "backpressure" in reply:
                counters["rejects"] += 1
                await asyncio.sleep(
                    reply["backpressure"].get("retry_after", 0.05))
                continue
            if not reply.get("ok"):
                raise RuntimeError(
                    f"key {spec['key']} failed: {reply.get('error')}")
            if reply.get("replayed"):
                counters["replays"] += 1
            acked[spec["key"]] = {
                name: np.asarray(vals, dtype=np.float64).tobytes()
                for name, vals in reply["outputs"].items()
            }
            break
    if writer is not None:
        try:
            writer.close()
        except Exception:
            pass


async def _killer(server: _Server, cycles: int, total: int,
                  acked: Dict[str, Dict[str, bytes]],
                  counters: Dict[str, int], stop_by: float) -> None:
    """SIGKILL + restart ``cycles`` times, paced across the workload so
    kills land while requests are genuinely in flight."""
    for cycle in range(cycles):
        target = min(total - 1, ((cycle + 1) * total) // (cycles + 1))
        while len(acked) < target and time.monotonic() < stop_by:
            await asyncio.sleep(0.05)
        server.kill()
        counters["kills"] += 1
        server.start()
        await server.wait_ready()


async def run_campaign(args) -> dict:
    """Run the campaign; returns the verdict/metrics dict (and raises
    nothing — failures are reported in the dict)."""
    workdir = args.artifacts or tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(workdir, exist_ok=True)
    journal_path = os.path.join(workdir, "serve.wal")
    if os.path.exists(journal_path):
        os.unlink(journal_path)
    faults = (f"{args.seed}:{args.sites}" if args.sites else None)
    server = _Server(_free_port(), journal_path, faults=faults,
                     pool=args.pool,
                     log_path=os.path.join(workdir, "server.log"))

    requests = _requests_for(args.seed, args.clients, args.requests)
    per_client: Dict[int, List[dict]] = {}
    for i, spec in enumerate(requests):
        per_client.setdefault(i // args.requests, []).append(spec)
    expected = serial_baseline(requests)

    acked: Dict[str, Dict[str, bytes]] = {}
    counters = {"kills": 0, "resubmits": 0, "rejects": 0, "replays": 0}
    start = time.monotonic()
    stop_by = start + args.budget
    server.start()
    await server.wait_ready()
    failure: Optional[str] = None
    try:
        kill_task = asyncio.ensure_future(_killer(
            server, args.cycles, len(requests), acked, counters, stop_by))
        await asyncio.gather(*(
            _client(server, reqs, acked, counters, stop_by)
            for reqs in per_client.values()
        ))
        await kill_task
    except Exception as err:
        failure = f"campaign aborted: {err!r}"
        kill_task.cancel()
    rc = server.terminate()
    wall = time.monotonic() - start

    # -- verdict ------------------------------------------------------------
    problems: List[str] = []
    if failure:
        problems.append(failure)
    if rc != 0:
        problems.append(f"graceful drain exited with rc {rc}")
    state = RequestJournal.replay(journal_path)
    done_counts: Dict[str, int] = {}
    try:
        with open(journal_path, "rb") as fh:
            for raw in fh:
                try:
                    record = json.loads(raw)["r"]
                except (ValueError, KeyError, TypeError):
                    continue
                if record.get("t") == "done":
                    key = record.get("key")
                    done_counts[key] = done_counts.get(key, 0) + 1
    except OSError:
        problems.append("journal file missing after campaign")
    mismatched = []
    for key, outputs in acked.items():
        if key not in state.done:
            problems.append(f"acked key {key} has no durable done record")
        if done_counts.get(key, 0) > 1:
            problems.append(
                f"key {key} executed {done_counts[key]} times "
                f"(duplicate done records)")
        want = expected.get(key)
        if want is None:
            problems.append(f"acked key {key} not in the workload")
            continue
        if outputs != want:
            mismatched.append(key)
    if mismatched:
        problems.append(
            f"{len(mismatched)} acked results diverge bit-wise from the "
            f"fault-free serial baseline: {mismatched[:5]}")
        for key in mismatched:
            np.save(os.path.join(workdir, f"got-{key}.npy"),
                    {n: np.frombuffer(b) for n, b in acked[key].items()},
                    allow_pickle=True)
            np.save(os.path.join(workdir, f"want-{key}.npy"),
                    {n: np.frombuffer(b) for n, b in expected[key].items()},
                    allow_pickle=True)
    if len(acked) < len(requests) and not failure:
        problems.append(
            f"only {len(acked)}/{len(requests)} requests acked")

    verdict = {
        "ok": not problems,
        "problems": problems,
        "seed": args.seed,
        "cycles": counters["kills"],
        "boots": server.boots,
        "requests": len(requests),
        "acked": len(acked),
        "resubmits": counters["resubmits"],
        "rejects": counters["rejects"],
        "replayed_acks": counters["replays"],
        "journal_records": state.records,
        "journal_torn_records": state.torn_records,
        "wall_s": round(wall, 3),
        "artifacts": workdir,
    }
    if not problems and not args.artifacts:
        shutil.rmtree(workdir, ignore_errors=True)
        verdict["artifacts"] = None
    return verdict


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve chaos",
        description="SIGKILL/restart campaign against the journaled "
                    "server; asserts exactly-once for acknowledged "
                    "requests, bit-identical to a serial baseline",
    )
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLES,
                        help="SIGKILL/restart cycles (default 25)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--requests", type=int, default=10,
                        help="requests per client")
    parser.add_argument("--pool", type=int, default=0,
                        help="warm pool workers in the server (0 = none)")
    parser.add_argument("--sites", default=DEFAULT_SITES,
                        help="serve-layer fault sites layered on the kills "
                             "('' to disable)")
    parser.add_argument("--budget", type=float, default=600.0,
                        help="campaign wall-clock budget in seconds")
    parser.add_argument("--artifacts", default=None, metavar="DIR",
                        help="keep journal/logs/divergence dumps here")
    args = parser.parse_args(argv)
    verdict = asyncio.run(run_campaign(args))
    print(json.dumps(verdict, indent=2, sort_keys=True))
    if not verdict["ok"]:
        print("chaos campaign FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
