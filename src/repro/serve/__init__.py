"""repro.serve — async launch-stream service over the simulated GPU.

The serving tier turns ``omp.launch``'s synchronous, device-owning call
into a multi-tenant request path (the ROADMAP's "serve heavy traffic"
north star), reusing the executor substrate rather than reinventing it:

* :class:`~repro.serve.stream.Stream` — CUDA-style streams: launches
  within a stream run in submission order, independent streams proceed
  concurrently (``omp.launch(..., stream=s)`` returns a
  :class:`~repro.serve.stream.LaunchHandle`);
* :mod:`repro.serve.batch` — coalesces compatible small launches into
  one segmented grid (:class:`repro.exec.GridSegment`) and demuxes
  per-request results, bit-identical to running each launch alone;
* :class:`~repro.serve.lease.PoolLease` — executes batches on a
  persistent warm :class:`repro.exec.WorkerPool` (no fork-per-launch),
  keeping the crash/hang retry → redistribute → degrade recovery ladder;
* :class:`~repro.serve.scheduler.FairScheduler` — deficit-round-robin
  weighted fairness across tenants with admission control and typed
  :class:`~repro.serve.scheduler.Backpressure` rejects;
* :class:`~repro.serve.server.LaunchService` — the asyncio front door
  (``python -m repro.serve``), JSON-lines over TCP, driven by
  :mod:`repro.serve.loadgen` for benchmarks and CI smoke.

See ``docs/SERVE.md`` for the full design: batching eligibility rules,
fairness/backpressure semantics, and the warm-pool lifecycle.
"""

from __future__ import annotations

from repro.serve.batch import LaunchOutcome, PreparedLaunch, prepare, run_batch
from repro.serve.catalog import KernelCatalog
from repro.serve.lease import PoolLease
from repro.serve.scheduler import Backpressure, FairScheduler
from repro.serve.server import LaunchRequest, LaunchService
from repro.serve.stream import LaunchHandle, Stream

__all__ = [
    "Backpressure",
    "FairScheduler",
    "KernelCatalog",
    "LaunchHandle",
    "LaunchOutcome",
    "LaunchRequest",
    "LaunchService",
    "PoolLease",
    "PreparedLaunch",
    "Stream",
    "prepare",
    "run_batch",
]
