"""repro.serve — async launch-stream service over the simulated GPU.

The serving tier turns ``omp.launch``'s synchronous, device-owning call
into a multi-tenant request path (the ROADMAP's "serve heavy traffic"
north star), reusing the executor substrate rather than reinventing it:

* :class:`~repro.serve.stream.Stream` — CUDA-style streams: launches
  within a stream run in submission order, independent streams proceed
  concurrently (``omp.launch(..., stream=s)`` returns a
  :class:`~repro.serve.stream.LaunchHandle`);
* :mod:`repro.serve.batch` — coalesces compatible small launches into
  one segmented grid (:class:`repro.exec.GridSegment`) and demuxes
  per-request results, bit-identical to running each launch alone;
* :class:`~repro.serve.lease.PoolLease` — executes batches on a
  persistent warm :class:`repro.exec.WorkerPool` (no fork-per-launch),
  keeping the crash/hang retry → redistribute → degrade recovery ladder;
* :class:`~repro.serve.scheduler.FairScheduler` — deficit-round-robin
  weighted fairness across tenants with admission control and typed
  :class:`~repro.serve.scheduler.Backpressure` rejects;
* :class:`~repro.serve.journal.RequestJournal` — fsync'd write-ahead
  journal with group commit and torn-tail-tolerant replay; keyed
  (idempotent) requests are exactly-once across process crashes, with
  recovery re-executing only the crash's in-flight requests;
* :class:`~repro.serve.server.LaunchService` — the asyncio front door
  (``python -m repro.serve``), JSON-lines over TCP, with client
  deadlines, drain-mode shutdown, and per-tenant
  :class:`~repro.serve.scheduler.CircuitBreaker` degradation, driven by
  :mod:`repro.serve.loadgen` for benchmarks and CI smoke and by
  :mod:`repro.serve.chaos` (``python -m repro.serve chaos``) for the
  SIGKILL/restart exactly-once campaign.

See ``docs/SERVE.md`` for the full design: batching eligibility rules,
fairness/backpressure semantics, the warm-pool lifecycle, and the
journal's durability contract.
"""

from __future__ import annotations

from repro.serve.batch import LaunchOutcome, PreparedLaunch, prepare, run_batch
from repro.serve.catalog import KernelCatalog
from repro.serve.journal import JournalState, RequestJournal
from repro.serve.lease import PoolLease
from repro.serve.scheduler import Backpressure, CircuitBreaker, FairScheduler
from repro.serve.server import LaunchRequest, LaunchService
from repro.serve.stream import LaunchHandle, Stream

__all__ = [
    "Backpressure",
    "CircuitBreaker",
    "FairScheduler",
    "JournalState",
    "KernelCatalog",
    "LaunchHandle",
    "LaunchOutcome",
    "LaunchRequest",
    "LaunchService",
    "PoolLease",
    "PreparedLaunch",
    "RequestJournal",
    "Stream",
    "prepare",
    "run_batch",
]
