"""Warm-pool lease: batched block execution on persistent workers.

The per-launch fork pool (``repro.exec.pool.fork_map``) relies on fork
inheriting the *current* parent state — kernel closures, live buffers —
which is exactly what a persistent pool cannot do: warm workers were
forked once, at boot, and see nothing created afterwards.  The lease
bridges that gap by making every request **self-describing**:

1. the worker's runner is fixed at pool construction and closes over
   the pre-fork :class:`~repro.serve.catalog.KernelCatalog` and the
   device's cost parameters (inherited copy-on-write);
2. each payload ships picklable data only — kernel *name*, geometry,
   input arrays, and the server-side buffer handle per arg;
3. the worker rebuilds the request locally: fresh
   :class:`~repro.gpu.device.Device`, buffers allocated from the
   shipped arrays, entry bound from the catalog kernel, each block run
   in snapshot isolation via the parallel engine's block runner;
4. the resulting :class:`~repro.exec.BlockRecord`\\ s are remapped from
   worker-local buffer handles to the server's handles and shipped
   back, where :func:`repro.exec.merge_records` folds them into server
   memory through the *identical* deterministic merge every other
   executor uses.

Recovery inherits :class:`~repro.exec.WorkerPool`'s ladder unchanged —
crash/hang detection, retry with redistribution, in-process
degradation — so a ``worker.crash`` fault plan on the pool exercises
the serve path end-to-end while results stay bit-identical.

In-block fault sites (``sharing.overflow``, ``atomic.transient``,
``memory.bitflip``) are deliberately **not** forwarded to warm workers:
those belong to solo-launch plans where ``Device.launch`` coordinates
snapshot/scrub/rollback.  The lease's fault surface is the worker
lifecycle, which is the one that matters under sustained load.
"""

from __future__ import annotations

import itertools
import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exec import ParallelExecutor, WorkerPool
from repro.exec.engine import LaunchPlan
from repro.exec.record import BlockRecord
from repro.exec.transport import pack_records, unpack_records

__all__ = ["PoolLease", "make_runner"]


def make_runner(catalog, params):
    """Build the picklable-payload runner a warm pool executes.

    Must be called **before** the pool forks (the returned closure is
    inherited, not shipped).  The payload contract is a dict with keys
    ``kernel`` (catalog name), ``args`` (name → ndarray), ``num_teams``,
    ``team_size``, ``simd_len``, ``sharing_bytes``, ``engine``,
    ``handles`` (arg name → server buffer handle), ``block_range``
    (list of local block ids to run), and ``side_slots``/``side_index``
    (how to pad side-state deltas into the batch's layout).

    Results come back packed (:mod:`repro.exec.transport`): columnar
    write-sets, and — from a forked worker — large payloads ride a
    shared-memory segment instead of the result pipe.  The pool's
    in-process degradation path returns raw records (``unpack_records``
    passes them through), so recovery semantics are transport-free.
    """
    from repro.gpu.device import Device

    parent_pid = os.getpid()

    def runner(payload: dict):
        dev = Device(params=params)
        local_args = {}
        handle_map: Dict[int, int] = {}
        dtypes: Dict[int, np.dtype] = {}
        for arg_name in sorted(payload["args"]):
            buf = dev.from_array(
                f"lease:{arg_name}", np.asarray(payload["args"][arg_name])
            )
            local_args[arg_name] = buf
            handle_map[buf.handle] = payload["handles"][arg_name]
            dtypes[payload["handles"][arg_name]] = buf.dtype
        entry, cfg, rc = catalog.build_entry(
            payload["kernel"],
            dev.gmem,
            local_args,
            num_teams=payload["num_teams"],
            team_size=payload["team_size"],
            simd_len=payload["simd_len"],
            sharing_bytes=payload["sharing_bytes"],
            params=params,
        )
        plan = LaunchPlan(
            entry=entry,
            args=(),
            num_blocks=cfg.num_teams,
            threads_per_block=cfg.block_dim,
            side_state=(rc,),
            engine=payload["engine"],
        )
        watermark = dev.gmem.mark()
        runner_exec = ParallelExecutor(processes=False)
        slots = payload["side_slots"]
        index = payload["side_index"]
        records = []
        for local_id in payload["block_range"]:
            rec = runner_exec._run_block(dev, plan, watermark, local_id)
            _remap_record(rec, handle_map)
            # Pad this request's single-rc delta into the batch-wide
            # side-state layout so the coordinator's apply_deltas zips
            # each delta onto the right RuntimeCounters.
            deltas = list(rec.side_deltas or ({},))
            rec.side_deltas = tuple(
                [{}] * index + deltas + [{}] * (slots - index - 1)
            )
            records.append(rec)
        if os.getpid() == parent_pid:
            # In-process execution (degradation, processes=False): the
            # records never cross a pipe, so hand them back as-is.
            return records
        return pack_records(records, dtypes)

    return runner


def _remap_record(rec: BlockRecord, handle_map: Dict[int, int]) -> None:
    """Rewrite worker-local buffer handles to server handles in place.

    Blocks can only touch pre-launch arg buffers (tracked by handle) —
    kernel-time allocations travel by name in ``live_allocs`` and need
    no mapping.  An unmapped handle would mean the block reached a
    buffer outside its request, which the disjointness construction
    makes impossible; ``KeyError`` here is therefore a real bug.
    """
    rec.write_set = {
        (handle_map[h], idx): v for (h, idx), v in rec.write_set.items()
    }
    rec.oplog = [
        (op[0], handle_map[op[1]], *op[2:]) for op in rec.oplog
    ]
    if rec.read_cells:
        rec.read_cells = {(handle_map[h], idx) for h, idx in rec.read_cells}


class PoolLease:
    """A serve-tier lease on one persistent :class:`WorkerPool`.

    Construct once at boot (freezing the catalog — warm workers cannot
    see kernels registered later), then :meth:`run` arbitrarily many
    batches: each call health-checks and reuses the same forked
    workers, so sustained load pays zero fork cost per launch
    (asserted by the warm-reuse test via stable worker pids).
    """

    def __init__(
        self,
        catalog,
        params,
        *,
        workers: Optional[int] = None,
        faults=None,
        retry=None,
        processes: Optional[bool] = None,
    ) -> None:
        catalog.freeze()
        self.catalog = catalog
        self.params = params
        self.faults = faults
        self._batch_seq = itertools.count()
        self.pool = WorkerPool(
            make_runner(catalog, params),
            workers,
            faults=faults,
            retry=retry,
            processes=processes,
        )

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "PoolLease":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        self.pool.close()

    def pids(self) -> List[Optional[int]]:
        return self.pool.pids()

    @property
    def stats(self) -> dict:
        return self.pool.stats

    # -- execution ----------------------------------------------------------
    def run(
        self,
        device,
        prepared: Sequence,
        *,
        engine: str,
        deadline: Optional[float] = None,
    ) -> List[BlockRecord]:
        """Execute a batch's blocks on the warm pool; return records
        keyed by **global** block id, ready for ``merge_records``.

        One payload per request (small launches are the batching
        target, so request granularity doubles as shard granularity —
        a request's blocks stay on one worker, its records arrive
        together or retry together).
        """
        payloads = []
        offsets = []
        offset = 0
        n = len(prepared)
        for i, p in enumerate(prepared):
            # ``to_numpy`` already returns a fresh host copy.
            arrays = {
                name: buf.to_numpy()
                for name, buf in p.buffers.items()
            }
            handles = {name: buf.handle for name, buf in p.buffers.items()}
            payloads.append({
                "kernel": p.name,
                "args": arrays,
                "handles": handles,
                "num_teams": p.cfg.num_teams,
                "team_size": p.cfg.team_size,
                "simd_len": p.cfg.simd_len,
                "sharing_bytes": p.cfg.sharing_bytes,
                "engine": engine,
                "block_range": list(range(p.num_blocks)),
                "side_slots": n,
                "side_index": i,
            })
            offsets.append(offset)
            offset += p.num_blocks

        batch = next(self._batch_seq)
        records: List[BlockRecord] = []
        for i, (status, result) in enumerate(
            self.pool.map(payloads, deadline=deadline)
        ):
            if status == "err":
                # Machinery failure (kernel errors are captured inside
                # records) — surface it; the service layer converts it
                # into per-request errors.
                result.reraise()
            result = unpack_records(result)
            result = self._verified(batch, i, payloads[i], result, deadline)
            for rec in result:
                rec.block_id += offsets[i]
                records.append(rec)
        return records

    def _verified(self, batch: int, payload_index: int, payload: dict,
                  result: List[BlockRecord],
                  deadline: Optional[float]) -> List[BlockRecord]:
        """The ``lease.corrupt`` hook: a result payload modelled as
        arriving corrupted is discarded whole and its request
        re-dispatched — execution is deterministic, so the replacement
        records are bit-identical to what the corrupt shipment carried.
        The ``attempt`` coordinate counts re-dispatches, so a spec's
        ``attempts`` bound lets a retry through."""
        if self.faults is None:
            return result
        attempt = 0
        while self.faults.fires("lease.corrupt", batch=batch,
                                payload=payload_index,
                                attempt=attempt) is not None:
            self.faults.record(
                "lease.corrupt",
                {"batch": batch, "payload": payload_index,
                 "attempt": attempt},
                recovered=True,
                detail="corrupt result payload discarded; re-dispatched",
            )
            attempt += 1
            status, result = self.pool.map([payload], deadline=deadline)[0]
            if status == "err":
                result.reraise()
            result = unpack_records(result)
        return result
