"""The asyncio launch service: socket → scheduler → batcher → device.

:class:`LaunchService` is the serving front door.  Thousands of
concurrent :meth:`LaunchService.submit` calls (or JSON-lines TCP
requests) flow through:

1. **per-stream lanes** — requests naming a stream are chained so a
   stream's request *n+1* enters the scheduler only after *n*
   completes (ordered within a stream; different streams interleave
   freely, which also means same-stream requests never share a batch);
2. **admission** — :class:`~repro.serve.scheduler.FairScheduler`
   either queues the request or rejects it with typed
   :class:`~repro.serve.scheduler.Backpressure` (also the service's
   in-flight cap, and the ``serve.reject`` fault site);
3. **the batching pump** — an asyncio task drains the scheduler in
   weighted DRR order, groups compatible requests (same block shape)
   up to ``max_batch``, and hands each group to the dispatch thread;
4. **dispatch** — the group is prepared (buffers bound), executed as
   one segmented grid via :func:`repro.serve.batch.run_batch` — on the
   warm :class:`~repro.serve.lease.PoolLease` when one is attached —
   demuxed, and each request's future resolved with its own
   bit-identical :class:`~repro.serve.batch.LaunchOutcome`.

A single dispatch thread feeds the device: the device lock serializes
grids anyway, so extra dispatch threads would only add contention.
Concurrency lives in front (the event loop holds thousands of pending
futures) and below (the pool's warm workers run a grid's blocks in
parallel).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.gpu.counters import KernelCounters
from repro.runtime.icv import DEFAULT_SHARING_BYTES, LaunchConfig
from repro.serve import batch as batchmod
from repro.serve.journal import RequestJournal, pack_array, unpack_array
from repro.serve.scheduler import Backpressure, CircuitBreaker, FairScheduler

__all__ = ["LaunchRequest", "LaunchService"]

_request_ids = itertools.count()


@dataclass
class LaunchRequest:
    """One kernel-launch request as the service sees it.

    ``key`` is the client-supplied idempotency key: journaled services
    deduplicate on it, so a resubmission after a lost ack is answered
    from the journal instead of re-executing.  ``deadline_ms`` is the
    client's patience, relative to submission — stale queue entries are
    shed unstarted and the launch watchdog is armed with what remains.
    """

    kernel: str
    args: Dict[str, np.ndarray]
    num_teams: int
    team_size: int
    simd_len: Optional[int] = None
    out: Optional[Sequence[str]] = None
    tenant: str = "default"
    stream: Optional[str] = None
    key: Optional[str] = None
    deadline_ms: Optional[float] = None
    rid: int = field(default_factory=lambda: next(_request_ids))

    @property
    def cost(self) -> float:
        """Scheduling cost: block count — what the device spends."""
        return float(self.num_teams)


class _Pending:
    """A request riding through the service with its future."""

    __slots__ = ("request", "future", "submitted", "prepared", "deadline",
                 "result_wire")

    def __init__(self, request: LaunchRequest, future) -> None:
        self.request = request
        self.future = future
        self.submitted = time.monotonic()
        self.prepared = None
        self.deadline = (
            self.submitted + request.deadline_ms / 1000.0
            if request.deadline_ms is not None else None
        )
        self.result_wire = None


class LaunchService:
    """Async multi-tenant launch service over one simulated device.

    Parameters mirror the layers they configure: ``lease`` (warm pool)
    or ``executor`` (in-process) pick the execution substrate,
    ``scheduler`` the fairness/admission policy, ``engine`` the round
    engine, ``faults`` the fault plan consulted by admission
    (``serve.reject``) and in-process batch execution.  ``max_batch``
    bounds requests per merged grid; ``batch_window`` is the pump's
    idle poll interval; ``max_inflight`` caps accepted-but-unfinished
    requests (typed backpressure beyond it).
    """

    def __init__(
        self,
        device,
        catalog,
        *,
        scheduler: Optional[FairScheduler] = None,
        lease=None,
        executor=None,
        engine: Optional[str] = None,
        faults=None,
        journal: Optional[RequestJournal] = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 1.0,
        max_batch: int = 16,
        batch_window: float = 0.002,
        max_inflight: int = 4096,
        sharing_bytes: int = DEFAULT_SHARING_BYTES,
    ) -> None:
        self.device = device
        self.catalog = catalog
        self.scheduler = scheduler or FairScheduler(faults=faults)
        self.scheduler.on_expire = self._expire_pending
        self.lease = lease
        self.executor = executor
        self.engine = engine
        self.faults = faults
        self.journal = journal
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self.max_batch = int(max_batch)
        self.batch_window = float(batch_window)
        self.max_inflight = int(max_inflight)
        self.sharing_bytes = sharing_bytes
        self._lanes: Dict[Tuple[str, Optional[str]], Deque[_Pending]] = {}
        self._inflight = 0
        self._pump_task: Optional[asyncio.Task] = None
        self._tcp_server = None
        self._dispatch = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-dispatch"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        #: idempotency key → durable result wire (journal replay + acks).
        self._done_cache: Dict[str, dict] = {}
        #: idempotency key → future of the in-flight execution (dup
        #: submissions of a live key share it instead of re-executing).
        self._inflight_keys: Dict[str, object] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._batch_seq = itertools.count()
        self._conn_drop_attempts: Dict[str, int] = {}
        self.stats = {
            "accepted": 0,
            "completed": 0,
            "errors": 0,
            "rejected": 0,
            "replays": 0,
            "batches": 0,
            "batched_requests": 0,
            "max_batch_size": 0,
        }

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Start the batching pump (idempotent)."""
        if self._pump_task is None or self._pump_task.done():
            self._loop = asyncio.get_running_loop()
            self._pump_task = asyncio.create_task(
                self._pump(), name="serve-pump"
            )

    async def stop(self) -> None:
        """Stop the pump and TCP listener; leave lease/device to owner."""
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        self._dispatch.shutdown(wait=True)

    async def __aenter__(self) -> "LaunchService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def draining(self) -> bool:
        return self._draining

    # -- durability / graceful shutdown -------------------------------------
    def begin_drain(self) -> None:
        """Enter drain mode: new submissions are rejected with
        ``Backpressure(reason="draining")``; in-flight work finishes."""
        self._draining = True

    async def drain(self, poll: Optional[float] = None) -> None:
        """Wait for every in-flight request to finish, then flush the
        journal.  Call :meth:`begin_drain` first (or this waits forever
        under sustained load)."""
        interval = poll if poll is not None else self.batch_window
        while self._inflight > 0:
            await asyncio.sleep(interval)
        if self.journal is not None:
            self.journal.commit()

    def load_journal(self, path: str, *, fsync: bool = True):
        """Attach (and replay) a journal at ``path``.

        Returns the replayed :class:`~repro.serve.journal.JournalState`;
        every durable ``done`` result seeds the dedup cache so
        resubmitted keys are answered without re-execution.  Pass the
        state to :meth:`recover` to re-execute the crash's in-flight
        requests.
        """
        state = RequestJournal.replay(path)
        self._done_cache.update(state.done)
        self.journal = RequestJournal(path, faults=self.faults, fsync=fsync)
        return state

    async def recover(self, state) -> int:
        """Re-execute the journal's unfinished (admitted, never done)
        requests.  Returns how many were re-run; individual failures are
        journal-visible but do not abort recovery."""
        unfinished = state.unfinished()
        if not unfinished:
            return 0

        async def _one(key: str, wire: dict) -> None:
            try:
                await self.submit(self._request_from_wire(key, wire))
            except Exception:
                pass

        await asyncio.gather(*(
            _one(key, wire) for key, wire in unfinished.items()
        ))
        return len(unfinished)

    # -- submission ---------------------------------------------------------
    async def submit(self, request: LaunchRequest):
        """Accept one request; resolves to its
        :class:`~repro.serve.batch.LaunchOutcome`.

        Raises :class:`Backpressure` synchronously when admission
        rejects — the caller never gets a future that was doomed at
        submit time.

        Keyed requests are idempotent: a key with a durable result is
        answered from the journal/dedup cache (``journal_replay`` marked
        in ``kc.extra``), and a key currently executing shares the
        in-flight future instead of running twice.
        """
        await self.start()
        if self._draining:
            self.stats["rejected"] += 1
            raise Backpressure(
                "draining", tenant=request.tenant, retry_after=0.5,
                detail="service is draining for shutdown",
            )
        key = request.key
        if key is not None:
            wire = self._done_cache.get(key)
            if wire is not None:
                self.stats["replays"] += 1
                return self._outcome_from_wire(request, wire)
            shared = self._inflight_keys.get(key)
            if shared is not None:
                self.stats["replays"] += 1
                return await shared
        breaker = self._breakers.get(request.tenant)
        if breaker is not None and not breaker.allow():
            self.stats["rejected"] += 1
            raise Backpressure(
                "circuit_open", tenant=request.tenant,
                retry_after=breaker.cooldown,
                detail=f"breaker open after repeated failures "
                       f"({breaker.trips} trips)",
            )
        if self._inflight >= self.max_inflight:
            self.stats["rejected"] += 1
            raise Backpressure(
                "inflight_limit", tenant=request.tenant,
                retry_after=0.05,
                detail=f"{self._inflight} in flight (cap "
                       f"{self.max_inflight})",
            )
        future = self._loop.create_future()
        pending = _Pending(request, future)
        if key is not None:
            if self.journal is not None:
                self.journal.append_admit(key, self._request_wire(request))
            self._inflight_keys[key] = future
        lane_key = (request.tenant, request.stream)
        if request.stream is not None:
            lane = self._lanes.setdefault(lane_key, deque())
            if lane:
                # An earlier launch of this stream is still in flight:
                # chain behind it (scheduler admission happens when it
                # reaches the head).
                lane.append(pending)
                self._inflight += 1
                self.stats["accepted"] += 1
                return await future
            lane.append(pending)
        try:
            self.scheduler.submit(
                pending, tenant=request.tenant, cost=request.cost,
                deadline=pending.deadline,
            )
        except Backpressure:
            if request.stream is not None:
                self._lanes[lane_key].remove(pending)
            if key is not None and self._inflight_keys.get(key) is future:
                self._inflight_keys.pop(key, None)
            self.stats["rejected"] += 1
            raise
        self._inflight += 1
        self.stats["accepted"] += 1
        return await future

    # -- the batching pump --------------------------------------------------
    async def _pump(self) -> None:
        while True:
            items: List[_Pending] = self.scheduler.next_batch(self.max_batch)
            if not items:
                await asyncio.sleep(self.batch_window)
                continue
            for group in self._group(items):
                outcomes = await self._loop.run_in_executor(
                    self._dispatch, self._run_group, group
                )
                await self._journal_group(group, outcomes)
                self._resolve_group(group, outcomes)

    async def _journal_group(self, group: List[_Pending],
                             results: List) -> None:
        """Make the group's successful keyed results durable *before*
        any client sees an ack: append one ``done`` record each, then a
        single group fsync (off-loop — the pump must not block)."""
        if self.journal is None:
            return
        durable = []
        for pending, result in zip(group, results):
            key = pending.request.key
            if (key is None or isinstance(result, Exception)
                    or result.error is not None):
                continue
            pending.result_wire = self._result_wire(result)
            durable.append((key, pending.result_wire))
        if not durable:
            return

        def _append_and_commit() -> None:
            # JSON encoding is the journal's dominant cost; keep it (and
            # the fsync) off the event loop so unrelated requests keep
            # flowing while this group becomes durable.
            for key, wire in durable:
                self.journal.append_done(key, wire)
            self.journal.commit()

        await self._loop.run_in_executor(None, _append_and_commit)

    def _block_dim(self, request: LaunchRequest) -> int:
        kernel = self.catalog.get(request.kernel)
        simd_len = request.simd_len
        if simd_len is None:
            simd_len = kernel.simdlen_hint or 1
        if not kernel.has_simd:
            simd_len = 1
        cfg = LaunchConfig(
            num_teams=request.num_teams,
            team_size=request.team_size,
            simd_len=simd_len,
            teams_mode=kernel.teams_mode,
            parallel_mode=kernel.parallel_mode,
            sharing_bytes=self.sharing_bytes,
            params=self.device.params,
        )
        return cfg.block_dim

    def _group(self, items: List[_Pending]) -> List[List[_Pending]]:
        """Split a scheduling round into batchable groups (same block
        shape), preserving DRR order within each group."""
        groups: "dict[int, List[_Pending]]" = {}
        order: List[int] = []
        for p in items:
            try:
                key = self._block_dim(p.request)
            except Exception as err:
                # Bad geometry/kernel name: fail this request alone.
                self._reject_pending(p, err)
                continue
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(p)
        return [groups[k] for k in order]

    def _reject_pending(self, pending: _Pending, err: Exception) -> None:
        self._finish(pending, error=err)

    # -- dispatch thread ----------------------------------------------------
    def _run_group(self, group: List[_Pending]) -> List:
        """Prepare, execute as one segmented grid, read back, release.

        Runs on the dispatch thread; returns one item per pending —
        either a LaunchOutcome or the exception that doomed it.
        """
        if self.faults is not None:
            bid = next(self._batch_seq)
            if self.faults.fires("serve.dispatch_stall", batch=bid) \
                    is not None:
                self.faults.record(
                    "serve.dispatch_stall", {"batch": bid}, recovered=True,
                    detail="dispatch stalled 50ms before launch",
                )
                time.sleep(0.05)
        prepared = []
        live = []
        for p in group:
            req = p.request
            try:
                p.prepared = batchmod.prepare(
                    self.device, self.catalog, req.kernel, req.args,
                    num_teams=req.num_teams, team_size=req.team_size,
                    simd_len=req.simd_len, out=req.out,
                    sharing_bytes=self.sharing_bytes,
                    tag=f"r{req.rid}",
                )
            except Exception as err:
                prepared.append(err)
                continue
            prepared.append(p.prepared)
            live.append(p)
        results: List = list(prepared)
        try:
            if live:
                # Client deadlines arm the launch watchdog: the group
                # gets the tightest member's remaining patience, so a
                # doomed launch is cut off instead of running to
                # completion for a client that stopped waiting.
                deadlines = [p.deadline for p in live
                             if p.deadline is not None]
                timeout = None
                if deadlines:
                    timeout = max(1e-3, min(deadlines) - time.monotonic())
                outcomes = batchmod.run_batch(
                    self.device,
                    [p.prepared for p in live],
                    engine=self.engine,
                    executor=self.executor,
                    faults=self.faults,
                    lease=self.lease,
                    timeout=timeout,
                )
                it = iter(outcomes)
                results = [
                    next(it) if not isinstance(r, Exception) else r
                    for r in results
                ]
        except Exception as err:
            results = [
                err if not isinstance(r, Exception) else r for r in results
            ]
        finally:
            for p in live:
                batchmod.release(self.device, p.prepared)
            if live:
                self.stats["batches"] += 1
                self.stats["batched_requests"] += len(live)
                self.stats["max_batch_size"] = max(
                    self.stats["max_batch_size"], len(live)
                )
        return results

    # -- completion ---------------------------------------------------------
    def _resolve_group(self, group: List[_Pending], results: List) -> None:
        for pending, result in zip(group, results):
            if isinstance(result, Exception):
                self._finish(pending, error=result)
            else:
                self._finish(pending, outcome=result)

    def _finish(self, pending: _Pending, *, outcome=None, error=None) -> None:
        request = pending.request
        key = request.key
        if key is not None and self._inflight_keys.get(key) is pending.future:
            self._inflight_keys.pop(key, None)
        if not pending.future.done():
            if error is not None:
                if isinstance(error, Backpressure):
                    # Typed shed (deadline expiry, drain): the tenant's
                    # work wasn't tried, so the breaker stays out of it.
                    self.stats["rejected"] += 1
                else:
                    self.stats["errors"] += 1
                    self._breaker_for(request.tenant).record_failure()
                pending.future.set_exception(error)
            else:
                if outcome.error is not None:
                    self.stats["errors"] += 1
                    self._breaker_for(request.tenant).record_failure()
                else:
                    self.stats["completed"] += 1
                    breaker = self._breakers.get(request.tenant)
                    if breaker is not None:
                        breaker.record_success()
                    if key is not None:
                        self._done_cache[key] = (
                            pending.result_wire
                            or self._result_wire(outcome)
                        )
                pending.future.set_result(outcome)
        self._inflight -= 1
        if request.stream is None:
            return
        # Advance the stream lane: this request was the lane head.
        lane_key = (request.tenant, request.stream)
        lane = self._lanes.get(lane_key)
        if not lane:
            return
        if lane and lane[0] is pending:
            lane.popleft()
        while lane:
            nxt = lane[0]
            try:
                self.scheduler.submit(
                    nxt, tenant=nxt.request.tenant, cost=nxt.request.cost,
                    deadline=nxt.deadline,
                )
                break
            except Backpressure as bp:
                # The waiter was accepted at submit time but the queue
                # filled meanwhile: structured reject, try the next.
                lane.popleft()
                self.stats["rejected"] += 1
                self._inflight -= 1
                if not nxt.future.done():
                    nxt.future.set_exception(bp)
        if not lane:
            self._lanes.pop(lane_key, None)

    def _expire_pending(self, pending: _Pending) -> None:
        """Scheduler callback: this entry's client deadline passed while
        it was still queued.  Shed it with a typed reject."""
        self._finish(pending, error=Backpressure(
            "deadline", tenant=pending.request.tenant, retry_after=0.0,
            detail="client deadline expired while queued",
        ))

    def _breaker_for(self, tenant: str) -> CircuitBreaker:
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = CircuitBreaker(
                self.breaker_threshold, self.breaker_cooldown
            )
            self._breakers[tenant] = breaker
        return breaker

    # -- wire forms (journal records and replayed outcomes) ------------------
    @staticmethod
    def _request_wire(request: LaunchRequest) -> dict:
        return {
            "kernel": request.kernel,
            "args": {k: pack_array(v) for k, v in request.args.items()},
            "num_teams": request.num_teams,
            "team_size": request.team_size,
            "simd_len": request.simd_len,
            "out": list(request.out) if request.out is not None else None,
            "tenant": request.tenant,
            "stream": request.stream,
        }

    @staticmethod
    def _request_from_wire(key: str, wire: dict) -> LaunchRequest:
        return LaunchRequest(
            kernel=wire["kernel"],
            args={k: unpack_array(v)
                  for k, v in (wire.get("args") or {}).items()},
            num_teams=int(wire.get("num_teams", 1)),
            team_size=int(wire.get("team_size", 64)),
            simd_len=wire.get("simd_len"),
            out=wire.get("out"),
            tenant=wire.get("tenant", "default"),
            stream=wire.get("stream"),
            key=key,
        )

    @staticmethod
    def _result_wire(outcome) -> dict:
        return {
            "outputs": {k: pack_array(v)
                        for k, v in outcome.outputs.items()},
            "cycles": outcome.counters.cycles,
        }

    def _outcome_from_wire(self, request: LaunchRequest, wire: dict):
        """A durable result replayed as a LaunchOutcome: bit-identical
        outputs, ``journal_replay`` flagged in the counters."""
        counters = KernelCounters(cycles=float(wire.get("cycles", 0.0)))
        counters.extra["journal_replay"] = 1.0
        return batchmod.LaunchOutcome(
            name=request.kernel,
            counters=counters,
            runtime=None,
            outputs={k: unpack_array(v)
                     for k, v in (wire.get("outputs") or {}).items()},
            error=None,
        )

    # -- TCP front door -----------------------------------------------------
    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 8473):
        """Listen for JSON-lines launch requests; returns the server.

        One request per line::

            {"id": 7, "kernel": "axpy", "args": {"x": [...], "y": [...]},
             "num_teams": 2, "team_size": 64, "out": ["y"],
             "tenant": "acme", "stream": "s0"}

        Responses echo ``id`` and carry either ``outputs`` (+ per-launch
        ``cycles``) or a structured ``error`` /``backpressure`` object.
        ``{"op": "stats"}`` returns service statistics, ``{"op":
        "kernels"}`` the catalog names.
        """
        await self.start()
        self._tcp_server = await asyncio.start_server(
            self._handle_conn, host, port
        )
        return self._tcp_server

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    msg = json.loads(line)
                except json.JSONDecodeError as err:
                    await self._send(writer, {"ok": False,
                                              "error": f"bad json: {err}"})
                    continue
                if msg.get("op") == "stats":
                    await self._send(writer, {
                        "ok": True,
                        "stats": dict(self.stats),
                        "inflight": self._inflight,
                        "tenants": self.scheduler.snapshot(),
                        "rejects": dict(self.scheduler.rejects),
                        "pool": dict(self.lease.stats) if self.lease else None,
                        "respawns": (self.lease.stats.get(
                            "worker_respawns", 0) if self.lease else 0),
                        "forced_rejects": (
                            self.faults.counters.forced_rejects
                            if self.faults is not None else 0),
                        "breakers": {t: b.snapshot()
                                     for t, b in self._breakers.items()},
                        "journal": (dict(self.journal.stats)
                                    if self.journal is not None else None),
                    })
                    continue
                if msg.get("op") == "health":
                    pump = self._pump_task
                    await self._send(writer, {
                        "ok": True,
                        "ready": pump is not None and not pump.done(),
                        "draining": self._draining,
                        "inflight": self._inflight,
                        "queued": self.scheduler.depth,
                    })
                    continue
                if msg.get("op") == "kernels":
                    await self._send(writer, {
                        "ok": True, "kernels": list(self.catalog.names()),
                    })
                    continue
                asyncio.ensure_future(self._handle_request(writer, msg))
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Listener shut down mid-read; end the handler task cleanly.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_request(self, writer: asyncio.StreamWriter,
                              msg: dict) -> None:
        rid = msg.get("id")
        try:
            request = LaunchRequest(
                kernel=msg["kernel"],
                args={k: np.asarray(v, dtype=np.float64)
                      for k, v in msg.get("args", {}).items()},
                num_teams=int(msg["num_teams"]),
                team_size=int(msg["team_size"]),
                simd_len=msg.get("simd_len"),
                out=msg.get("out"),
                tenant=msg.get("tenant", "default"),
                stream=msg.get("stream"),
                key=msg.get("key"),
                deadline_ms=msg.get("deadline_ms"),
            )
        except (KeyError, TypeError, ValueError) as err:
            await self._send(writer, {"id": rid, "ok": False,
                                      "error": f"bad request: {err}"})
            return
        try:
            outcome = await self.submit(request)
        except Backpressure as bp:
            await self._send(writer, {
                "id": rid, "ok": False, "backpressure": bp.as_dict(),
            })
            return
        except Exception as err:
            await self._send(writer, {"id": rid, "ok": False,
                                      "error": repr(err)})
            return
        if outcome.error is not None:
            await self._send(writer, {
                "id": rid, "ok": False,
                "error": repr(outcome.error.rebuild()),
            })
            return
        if self.faults is not None and request.key is not None:
            # The exactly-once ambiguity, injected: the result is
            # executed (and journaled) but the ack never reaches the
            # client, which resubmits the key and must be answered from
            # the journal without a second execution.  ``attempt``
            # counts drops per key so a spec's attempts bound lets the
            # retry through.
            attempt = self._conn_drop_attempts.get(request.key, 0)
            coords = {"tenant": request.tenant, "seq": request.key,
                      "attempt": attempt}
            if self.faults.fires("serve.conn_drop", **coords) is not None:
                self._conn_drop_attempts[request.key] = attempt + 1
                self.faults.record(
                    "serve.conn_drop",
                    {"tenant": request.tenant, "seq": request.key},
                    recovered=True, detail="ack dropped after execution",
                )
                writer.close()
                return
        replayed = outcome.counters.extra.get("journal_replay", 0.0)
        await self._send(writer, {
            "id": rid,
            "ok": True,
            "outputs": {k: v.tolist() for k, v in outcome.outputs.items()},
            "cycles": outcome.counters.cycles,
            **({"replayed": True} if replayed else {}),
        })

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
