"""The asyncio launch service: socket → scheduler → batcher → device.

:class:`LaunchService` is the serving front door.  Thousands of
concurrent :meth:`LaunchService.submit` calls (or JSON-lines TCP
requests) flow through:

1. **per-stream lanes** — requests naming a stream are chained so a
   stream's request *n+1* enters the scheduler only after *n*
   completes (ordered within a stream; different streams interleave
   freely, which also means same-stream requests never share a batch);
2. **admission** — :class:`~repro.serve.scheduler.FairScheduler`
   either queues the request or rejects it with typed
   :class:`~repro.serve.scheduler.Backpressure` (also the service's
   in-flight cap, and the ``serve.reject`` fault site);
3. **the batching pump** — an asyncio task drains the scheduler in
   weighted DRR order, groups compatible requests (same block shape)
   up to ``max_batch``, and hands each group to the dispatch thread;
4. **dispatch** — the group is prepared (buffers bound), executed as
   one segmented grid via :func:`repro.serve.batch.run_batch` — on the
   warm :class:`~repro.serve.lease.PoolLease` when one is attached —
   demuxed, and each request's future resolved with its own
   bit-identical :class:`~repro.serve.batch.LaunchOutcome`.

A single dispatch thread feeds the device: the device lock serializes
grids anyway, so extra dispatch threads would only add contention.
Concurrency lives in front (the event loop holds thousands of pending
futures) and below (the pool's warm workers run a grid's blocks in
parallel).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime.icv import DEFAULT_SHARING_BYTES, LaunchConfig
from repro.serve import batch as batchmod
from repro.serve.scheduler import Backpressure, FairScheduler

__all__ = ["LaunchRequest", "LaunchService"]

_request_ids = itertools.count()


@dataclass
class LaunchRequest:
    """One kernel-launch request as the service sees it."""

    kernel: str
    args: Dict[str, np.ndarray]
    num_teams: int
    team_size: int
    simd_len: Optional[int] = None
    out: Optional[Sequence[str]] = None
    tenant: str = "default"
    stream: Optional[str] = None
    rid: int = field(default_factory=lambda: next(_request_ids))

    @property
    def cost(self) -> float:
        """Scheduling cost: block count — what the device spends."""
        return float(self.num_teams)


class _Pending:
    """A request riding through the service with its future."""

    __slots__ = ("request", "future", "submitted", "prepared")

    def __init__(self, request: LaunchRequest, future) -> None:
        self.request = request
        self.future = future
        self.submitted = time.monotonic()
        self.prepared = None


class LaunchService:
    """Async multi-tenant launch service over one simulated device.

    Parameters mirror the layers they configure: ``lease`` (warm pool)
    or ``executor`` (in-process) pick the execution substrate,
    ``scheduler`` the fairness/admission policy, ``engine`` the round
    engine, ``faults`` the fault plan consulted by admission
    (``serve.reject``) and in-process batch execution.  ``max_batch``
    bounds requests per merged grid; ``batch_window`` is the pump's
    idle poll interval; ``max_inflight`` caps accepted-but-unfinished
    requests (typed backpressure beyond it).
    """

    def __init__(
        self,
        device,
        catalog,
        *,
        scheduler: Optional[FairScheduler] = None,
        lease=None,
        executor=None,
        engine: Optional[str] = None,
        faults=None,
        max_batch: int = 16,
        batch_window: float = 0.002,
        max_inflight: int = 4096,
        sharing_bytes: int = DEFAULT_SHARING_BYTES,
    ) -> None:
        self.device = device
        self.catalog = catalog
        self.scheduler = scheduler or FairScheduler(faults=faults)
        self.lease = lease
        self.executor = executor
        self.engine = engine
        self.faults = faults
        self.max_batch = int(max_batch)
        self.batch_window = float(batch_window)
        self.max_inflight = int(max_inflight)
        self.sharing_bytes = sharing_bytes
        self._lanes: Dict[Tuple[str, Optional[str]], Deque[_Pending]] = {}
        self._inflight = 0
        self._pump_task: Optional[asyncio.Task] = None
        self._tcp_server = None
        self._dispatch = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-dispatch"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.stats = {
            "accepted": 0,
            "completed": 0,
            "errors": 0,
            "rejected": 0,
            "batches": 0,
            "batched_requests": 0,
            "max_batch_size": 0,
        }

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        """Start the batching pump (idempotent)."""
        if self._pump_task is None or self._pump_task.done():
            self._loop = asyncio.get_running_loop()
            self._pump_task = asyncio.create_task(
                self._pump(), name="serve-pump"
            )

    async def stop(self) -> None:
        """Stop the pump and TCP listener; leave lease/device to owner."""
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        self._dispatch.shutdown(wait=True)

    async def __aenter__(self) -> "LaunchService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def inflight(self) -> int:
        return self._inflight

    # -- submission ---------------------------------------------------------
    async def submit(self, request: LaunchRequest):
        """Accept one request; resolves to its
        :class:`~repro.serve.batch.LaunchOutcome`.

        Raises :class:`Backpressure` synchronously when admission
        rejects — the caller never gets a future that was doomed at
        submit time.
        """
        await self.start()
        if self._inflight >= self.max_inflight:
            self.stats["rejected"] += 1
            raise Backpressure(
                "inflight_limit", tenant=request.tenant,
                retry_after=0.05,
                detail=f"{self._inflight} in flight (cap "
                       f"{self.max_inflight})",
            )
        future = self._loop.create_future()
        pending = _Pending(request, future)
        lane_key = (request.tenant, request.stream)
        if request.stream is not None:
            lane = self._lanes.setdefault(lane_key, deque())
            if lane:
                # An earlier launch of this stream is still in flight:
                # chain behind it (scheduler admission happens when it
                # reaches the head).
                lane.append(pending)
                self._inflight += 1
                self.stats["accepted"] += 1
                return await future
            lane.append(pending)
        try:
            self.scheduler.submit(
                pending, tenant=request.tenant, cost=request.cost
            )
        except Backpressure:
            if request.stream is not None:
                self._lanes[lane_key].remove(pending)
            self.stats["rejected"] += 1
            raise
        self._inflight += 1
        self.stats["accepted"] += 1
        return await future

    # -- the batching pump --------------------------------------------------
    async def _pump(self) -> None:
        while True:
            items: List[_Pending] = self.scheduler.next_batch(self.max_batch)
            if not items:
                await asyncio.sleep(self.batch_window)
                continue
            for group in self._group(items):
                outcomes = await self._loop.run_in_executor(
                    self._dispatch, self._run_group, group
                )
                self._resolve_group(group, outcomes)

    def _block_dim(self, request: LaunchRequest) -> int:
        kernel = self.catalog.get(request.kernel)
        simd_len = request.simd_len
        if simd_len is None:
            simd_len = kernel.simdlen_hint or 1
        if not kernel.has_simd:
            simd_len = 1
        cfg = LaunchConfig(
            num_teams=request.num_teams,
            team_size=request.team_size,
            simd_len=simd_len,
            teams_mode=kernel.teams_mode,
            parallel_mode=kernel.parallel_mode,
            sharing_bytes=self.sharing_bytes,
            params=self.device.params,
        )
        return cfg.block_dim

    def _group(self, items: List[_Pending]) -> List[List[_Pending]]:
        """Split a scheduling round into batchable groups (same block
        shape), preserving DRR order within each group."""
        groups: "dict[int, List[_Pending]]" = {}
        order: List[int] = []
        for p in items:
            try:
                key = self._block_dim(p.request)
            except Exception as err:
                # Bad geometry/kernel name: fail this request alone.
                self._reject_pending(p, err)
                continue
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(p)
        return [groups[k] for k in order]

    def _reject_pending(self, pending: _Pending, err: Exception) -> None:
        self._finish(pending, error=err)

    # -- dispatch thread ----------------------------------------------------
    def _run_group(self, group: List[_Pending]) -> List:
        """Prepare, execute as one segmented grid, read back, release.

        Runs on the dispatch thread; returns one item per pending —
        either a LaunchOutcome or the exception that doomed it.
        """
        prepared = []
        live = []
        for p in group:
            req = p.request
            try:
                p.prepared = batchmod.prepare(
                    self.device, self.catalog, req.kernel, req.args,
                    num_teams=req.num_teams, team_size=req.team_size,
                    simd_len=req.simd_len, out=req.out,
                    sharing_bytes=self.sharing_bytes,
                    tag=f"r{req.rid}",
                )
            except Exception as err:
                prepared.append(err)
                continue
            prepared.append(p.prepared)
            live.append(p)
        results: List = list(prepared)
        try:
            if live:
                outcomes = batchmod.run_batch(
                    self.device,
                    [p.prepared for p in live],
                    engine=self.engine,
                    executor=self.executor,
                    faults=self.faults,
                    lease=self.lease,
                )
                it = iter(outcomes)
                results = [
                    next(it) if not isinstance(r, Exception) else r
                    for r in results
                ]
        except Exception as err:
            results = [
                err if not isinstance(r, Exception) else r for r in results
            ]
        finally:
            for p in live:
                batchmod.release(self.device, p.prepared)
            if live:
                self.stats["batches"] += 1
                self.stats["batched_requests"] += len(live)
                self.stats["max_batch_size"] = max(
                    self.stats["max_batch_size"], len(live)
                )
        return results

    # -- completion ---------------------------------------------------------
    def _resolve_group(self, group: List[_Pending], results: List) -> None:
        for pending, result in zip(group, results):
            if isinstance(result, Exception):
                self._finish(pending, error=result)
            else:
                self._finish(pending, outcome=result)

    def _finish(self, pending: _Pending, *, outcome=None, error=None) -> None:
        request = pending.request
        if not pending.future.done():
            if error is not None:
                self.stats["errors"] += 1
                pending.future.set_exception(error)
            else:
                if outcome.error is not None:
                    self.stats["errors"] += 1
                else:
                    self.stats["completed"] += 1
                pending.future.set_result(outcome)
        self._inflight -= 1
        if request.stream is None:
            return
        # Advance the stream lane: this request was the lane head.
        lane_key = (request.tenant, request.stream)
        lane = self._lanes.get(lane_key)
        if not lane:
            return
        if lane and lane[0] is pending:
            lane.popleft()
        while lane:
            nxt = lane[0]
            try:
                self.scheduler.submit(
                    nxt, tenant=nxt.request.tenant, cost=nxt.request.cost
                )
                break
            except Backpressure as bp:
                # The waiter was accepted at submit time but the queue
                # filled meanwhile: structured reject, try the next.
                lane.popleft()
                self.stats["rejected"] += 1
                self._inflight -= 1
                if not nxt.future.done():
                    nxt.future.set_exception(bp)
        if not lane:
            self._lanes.pop(lane_key, None)

    # -- TCP front door -----------------------------------------------------
    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 8473):
        """Listen for JSON-lines launch requests; returns the server.

        One request per line::

            {"id": 7, "kernel": "axpy", "args": {"x": [...], "y": [...]},
             "num_teams": 2, "team_size": 64, "out": ["y"],
             "tenant": "acme", "stream": "s0"}

        Responses echo ``id`` and carry either ``outputs`` (+ per-launch
        ``cycles``) or a structured ``error`` /``backpressure`` object.
        ``{"op": "stats"}`` returns service statistics, ``{"op":
        "kernels"}`` the catalog names.
        """
        await self.start()
        self._tcp_server = await asyncio.start_server(
            self._handle_conn, host, port
        )
        return self._tcp_server

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    msg = json.loads(line)
                except json.JSONDecodeError as err:
                    await self._send(writer, {"ok": False,
                                              "error": f"bad json: {err}"})
                    continue
                if msg.get("op") == "stats":
                    await self._send(writer, {
                        "ok": True,
                        "stats": dict(self.stats),
                        "inflight": self._inflight,
                        "tenants": self.scheduler.snapshot(),
                        "rejects": dict(self.scheduler.rejects),
                        "pool": dict(self.lease.stats) if self.lease else None,
                    })
                    continue
                if msg.get("op") == "kernels":
                    await self._send(writer, {
                        "ok": True, "kernels": list(self.catalog.names()),
                    })
                    continue
                asyncio.ensure_future(self._handle_request(writer, msg))
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Listener shut down mid-read; end the handler task cleanly.
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_request(self, writer: asyncio.StreamWriter,
                              msg: dict) -> None:
        rid = msg.get("id")
        try:
            request = LaunchRequest(
                kernel=msg["kernel"],
                args={k: np.asarray(v, dtype=np.float64)
                      for k, v in msg.get("args", {}).items()},
                num_teams=int(msg["num_teams"]),
                team_size=int(msg["team_size"]),
                simd_len=msg.get("simd_len"),
                out=msg.get("out"),
                tenant=msg.get("tenant", "default"),
                stream=msg.get("stream"),
            )
        except (KeyError, TypeError, ValueError) as err:
            await self._send(writer, {"id": rid, "ok": False,
                                      "error": f"bad request: {err}"})
            return
        try:
            outcome = await self.submit(request)
        except Backpressure as bp:
            await self._send(writer, {
                "id": rid, "ok": False, "backpressure": bp.as_dict(),
            })
            return
        except Exception as err:
            await self._send(writer, {"id": rid, "ok": False,
                                      "error": repr(err)})
            return
        if outcome.error is not None:
            await self._send(writer, {
                "id": rid, "ok": False,
                "error": repr(outcome.error.rebuild()),
            })
            return
        await self._send(writer, {
            "id": rid,
            "ok": True,
            "outputs": {k: v.tolist() for k, v in outcome.outputs.items()},
            "cycles": outcome.counters.cycles,
        })

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, payload: dict) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
