"""Launch coalescing: many small requests, one segmented grid.

The executor substrate already merges per-block effects
deterministically in ascending block id; batching rides that machinery
by concatenating compatible requests into one
:class:`~repro.exec.GridSegment`-typed plan.  Each request's blocks
execute with **local** coordinates (block 0..n-1 of its own grid) so
every lane — and the JIT's trace-cache key — observes exactly what a
solo launch would have shown it; only the merge order uses global ids.
The result is bit-identical to running the requests one at a time
(tested by the hypothesis property in ``tests/serve``).

Eligibility (:func:`compatible`): same ``threads_per_block``, hook-free
(no tracer/sanitizer/races/schedule-policy — enforced by
``LaunchPlan.validate_segments``), same resolved round engine, and
disjoint global buffers — guaranteed here by construction, because
:func:`prepare` allocates each request's buffers fresh from its input
arrays.  Per-request telemetry demuxes from the per-segment outcome:
block counters, shared high-water mark, runtime-counter deltas, and the
cost model's cycle composition are all computed per segment, exactly as
``Device.launch`` composes them for a solo grid.  Launch-scoped JIT
telemetry (``kc.extra["jit_*"]``) is the one deliberate exception: it
cannot be attributed to a single request inside a batch, so batched
counters omit it (documented in ``docs/SERVE.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import LaunchError
from repro.exec import GridSegment, LaunchPlan, SerialExecutor, merge_records
from repro.exec.record import ErrorCapsule
from repro.gpu.counters import KernelCounters
from repro.gpu.sm import compose_kernel_cycles
from repro.runtime.icv import DEFAULT_SHARING_BYTES

__all__ = [
    "LaunchOutcome",
    "PreparedLaunch",
    "compatible",
    "prepare",
    "recycle",
    "release",
    "run_batch",
]


@dataclass
class PreparedLaunch:
    """One request, bound to the serving device and ready to run.

    Created by :func:`prepare`: input arrays are materialized as fresh
    global buffers (disjoint from every other prepared request by
    construction), the entry closure is bound, and geometry is resolved
    through the same ladder ``omp.launch`` uses.
    """

    name: str
    kernel: object
    cfg: object
    rc: object
    entry: object
    buffers: Dict[str, object]
    out: Sequence[str]
    regs_per_thread: int = 32

    @property
    def num_blocks(self) -> int:
        return self.cfg.num_teams

    @property
    def threads_per_block(self) -> int:
        return self.cfg.block_dim


@dataclass
class LaunchOutcome:
    """Demuxed per-request result of a (possibly batched) execution."""

    name: str
    counters: Optional[KernelCounters] = None
    runtime: object = None
    outputs: Dict[str, np.ndarray] = field(default_factory=dict)
    error: Optional[ErrorCapsule] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def raise_for_error(self) -> None:
        if self.error is not None:
            self.error.reraise()


def prepare(
    device,
    catalog,
    name: str,
    args: Dict[str, np.ndarray],
    *,
    num_teams: int,
    team_size: int,
    simd_len: Optional[int] = None,
    out: Optional[Sequence[str]] = None,
    sharing_bytes: int = DEFAULT_SHARING_BYTES,
    regs_per_thread: int = 32,
    tag: Optional[str] = None,
) -> PreparedLaunch:
    """Bind one request: allocate its buffers, build its entry.

    ``args`` maps kernel arg names to host arrays; each is copied into
    a fresh global buffer (tagged so concurrent requests never share a
    name).  ``out`` names the args to read back after execution
    (default: all of them).
    """
    kernel = catalog.get(name)
    tag = tag or name
    buffers = {}
    with device.lock:
        try:
            for arg_name in sorted(args):
                buffers[arg_name] = device.from_array(
                    f"{tag}:{arg_name}", np.asarray(args[arg_name])
                )
        except BaseException:
            for buf in buffers.values():
                device.free(buf)
            raise
    entry, cfg, rc = catalog.build_entry(
        name,
        device.gmem,
        buffers,
        num_teams=num_teams,
        team_size=team_size,
        simd_len=simd_len,
        sharing_bytes=sharing_bytes,
        params=device.params,
    )
    return PreparedLaunch(
        name=name,
        kernel=kernel,
        cfg=cfg,
        rc=rc,
        entry=entry,
        buffers=buffers,
        out=tuple(out) if out is not None else tuple(sorted(args)),
        regs_per_thread=regs_per_thread,
    )


def recycle(
    device,
    catalog,
    prepared: PreparedLaunch,
    args: Dict[str, np.ndarray],
    *,
    out: Optional[Sequence[str]] = None,
) -> PreparedLaunch:
    """Rebind a completed request's state to a new request **in place**.

    The cheap-cloning path for sustained same-shape traffic: instead of
    allocating fresh buffers per request (and growing the allocator's
    churn), the previous request's buffers are refilled from the new
    input arrays — ``fill_from`` marks every page dirty, so snapshots
    and the merge see the refill like any other write — and a fresh
    entry/runtime-counter pair is bound over them.  Geometry is carried
    over from ``prepared``; arg names, shapes, and dtypes must match
    (anything else needs a real :func:`prepare`).  Returns ``prepared``.
    """
    if prepared.buffers.keys() != args.keys():
        raise LaunchError(
            f"recycle arg mismatch for {prepared.name!r}: have "
            f"{sorted(prepared.buffers)}, got {sorted(args)}"
        )
    cfg = prepared.cfg
    with device.lock:
        for arg_name in sorted(args):
            buf = prepared.buffers[arg_name]
            arr = np.ascontiguousarray(args[arg_name]).reshape(-1)
            if arr.size != buf.size or arr.dtype != buf.dtype:
                raise LaunchError(
                    f"recycle shape/dtype mismatch on {arg_name!r}: buffer "
                    f"is {buf.size} x {buf.dtype}, array is "
                    f"{arr.size} x {arr.dtype}"
                )
            buf.fill_from(arr)
    entry, new_cfg, rc = catalog.build_entry(
        prepared.name,
        device.gmem,
        prepared.buffers,
        num_teams=cfg.num_teams,
        team_size=cfg.team_size,
        simd_len=cfg.simd_len,
        sharing_bytes=cfg.sharing_bytes,
        params=device.params,
    )
    prepared.cfg = new_cfg
    prepared.rc = rc
    prepared.entry = entry
    if out is not None:
        prepared.out = tuple(out)
    return prepared


def release(device, prepared: PreparedLaunch) -> None:
    """Free a prepared request's buffers (after outputs are read)."""
    with device.lock:
        for buf in prepared.buffers.values():
            try:
                device.free(buf)
            except Exception:
                pass  # already freed (e.g. rollback path)
        prepared.buffers = {}


def compatible(a: PreparedLaunch, b: PreparedLaunch) -> bool:
    """Can ``a`` and ``b`` share one merged grid?

    Same block shape is the only per-pair condition — buffer
    disjointness holds by construction and hook-freedom is enforced at
    plan level.  (The resolved engine is a batch-level property: every
    request in a batch runs under the batch's engine.)
    """
    return a.threads_per_block == b.threads_per_block


def resolve_batch_engine(engine: Optional[str], faults) -> str:
    """The round engine a batch runs under — ``Device.launch``'s ladder
    minus the per-launch hooks batches reject anyway.

    An active fault plan forces the instrumented engine (fault sites
    live in the instrumented block scheduler), exactly as it does for
    solo launches; otherwise the explicit choice, then ``REPRO_ENGINE``,
    then auto → fast.
    """
    from repro.jit import coerce_engine, default_engine

    if engine is not None:
        resolved = coerce_engine(engine)
        if resolved in ("fast", "jit") and faults is not None:
            raise LaunchError(
                f"engine={resolved!r} is incompatible with an attached "
                "fault plan (fault sites need the instrumented engine)"
            )
    else:
        resolved = default_engine()
    if faults is not None:
        return "instrumented"
    return "fast" if resolved == "auto" else resolved


def run_batch(
    device,
    prepared: Sequence[PreparedLaunch],
    *,
    engine: Optional[str] = None,
    executor=None,
    faults=None,
    lease=None,
    timeout: Optional[float] = None,
    read_outputs: bool = True,
) -> List[LaunchOutcome]:
    """Execute prepared requests as one segmented grid; demux results.

    ``executor`` picks the in-process engine (default
    :class:`~repro.exec.SerialExecutor`); ``lease`` instead dispatches
    block execution to a persistent warm
    :class:`~repro.serve.lease.PoolLease` and feeds the returned
    records through the identical :func:`repro.exec.merge_records`.
    Either way the whole execute-and-merge runs under ``device.lock``
    (one grid owns the device at a time).

    A request whose kernel raises gets the error in its own
    :class:`LaunchOutcome` — the same exception a solo launch would
    have raised, after the same partial state commit — and the other
    requests in the batch are unaffected.
    """
    if not prepared:
        return []
    tpb = prepared[0].threads_per_block
    for p in prepared[1:]:
        if not compatible(prepared[0], p):
            raise LaunchError(
                f"incompatible batch: {prepared[0].name!r} has "
                f"threads_per_block={tpb}, {p.name!r} has "
                f"{p.threads_per_block}"
            )
    resolved = resolve_batch_engine(engine, faults)

    jit_stats = None
    if resolved == "jit":
        from repro.jit import JitCounters

        jit_stats = JitCounters()

    segments = tuple(
        GridSegment(p.entry, p.num_blocks, label=p.name) for p in prepared
    )
    side = tuple(p.rc for p in prepared)
    use_lease = lease is not None
    plan = LaunchPlan(
        entry=None,
        args=(),
        num_blocks=sum(p.num_blocks for p in prepared),
        threads_per_block=tpb,
        segments=segments,
        side_state=side if use_lease else (
            side + ((faults.counters,) if faults is not None else ())
        ),
        faults=None if use_lease else faults,
        engine=resolved,
        jit_stats=jit_stats,
        deadline=(time.monotonic() + timeout) if timeout is not None else None,
    )
    exec_ = executor if executor is not None else SerialExecutor()

    with device.lock:
        if use_lease:
            records = lease.run(device, prepared, engine=resolved,
                                deadline=plan.deadline)
            outcome = merge_records(device, plan, records)
        else:
            outcome = exec_.execute(device, plan)

        results: List[LaunchOutcome] = []
        for p, seg in zip(prepared, outcome.segments):
            kc = KernelCounters(
                num_blocks=p.num_blocks, threads_per_block=tpb
            )
            kc.blocks = list(seg.blocks)
            cycles, resident, waves = compose_kernel_cycles(
                device.params, kc.blocks, tpb, seg.shared_used,
                p.regs_per_thread,
            )
            kc.cycles = cycles
            kc.blocks_per_sm = resident
            kc.waves = waves
            kc.extra["shared_bytes_per_block"] = float(seg.shared_used)
            kc.extra["regs_per_thread"] = float(p.regs_per_thread)
            kc.extra.update(p.rc.as_dict())
            kc.extra["simd_len"] = float(p.cfg.simd_len)
            outputs = {}
            if read_outputs:
                # ``to_numpy`` already returns a fresh host copy.
                outputs = {
                    name: p.buffers[name].to_numpy()
                    for name in p.out
                    if name in p.buffers
                }
            results.append(LaunchOutcome(
                name=p.name,
                counters=kc,
                runtime=p.rc,
                outputs=outputs,
                error=seg.error,
            ))
    return results
