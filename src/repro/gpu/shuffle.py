"""Warp shuffle semantics.

Shuffles exchange register values between the lanes of a mask without going
through memory.  The paper's runtime does not use them (it stages values in
the shared-memory sharing space), but the *reduction extension*
(:mod:`repro.runtime.reduction`, the paper's §7 future work) builds
SIMD-group tree reductions on them, so the substrate provides the CUDA
``__shfl_*_sync`` family.

Lane arithmetic is performed **relative to the ordered set of lanes in the
mask**: for a SIMD group occupying lanes ``{8..15}``, ``shfl_down(value, 4)``
moves lane 12's value to lane 8.  This gives groups smaller than a warp
self-contained shuffle segments, the same trick CUDA's ``width`` parameter
plays for power-of-two sub-warps.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import SynchronizationError
from repro.gpu.events import SHUFFLE_MODES


def resolve_shuffles(
    mode: str,
    lanes: Sequence[int],
    values: Dict[int, object],
    lane_args: Dict[int, int],
) -> Dict[int, object]:
    """Compute each lane's shuffle result for one converged mask group.

    Parameters
    ----------
    mode:
        One of :data:`SHUFFLE_MODES`.
    lanes:
        The participating lane ids, ascending.
    values, lane_args:
        Per-lane posted value and lane argument (source index or delta).

    Returns a dict mapping lane id → received value.  Out-of-segment sources
    return the lane's own value, as on hardware.
    """
    if mode not in SHUFFLE_MODES:
        raise SynchronizationError(f"unknown shuffle mode {mode!r}")
    order = list(lanes)
    pos = {lane: i for i, lane in enumerate(order)}
    n = len(order)
    out: Dict[int, object] = {}
    for lane in order:
        arg = lane_args[lane]
        i = pos[lane]
        if mode == "idx":
            src = arg
        elif mode == "up":
            src = i - arg
        elif mode == "down":
            src = i + arg
        else:  # xor
            src = i ^ arg
        if 0 <= src < n:
            out[lane] = values[order[src]]
        else:
            out[lane] = values[lane]
    return out
