"""Execution tracing: record event streams, export Chrome trace JSON.

Attach a :class:`TraceRecorder` to any launch to capture every posted event
with its (block, round, thread) coordinates::

    rec = TraceRecorder()
    device.launch(kernel, 4, 128, args=(...), tracer=rec)
    rec.save("kernel.trace.json")      # open in chrome://tracing / Perfetto
    print(rec.summary())

Rounds serve as the timeline (1 round = 1 µs in the export so Perfetto's
zoom behaves); each thread is a track inside its block's process group.
Use :meth:`TraceRecorder.for_thread` to replay one thread's event sequence
in protocol debugging.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.gpu.events import (
    T_ATOMIC,
    T_COMPUTE,
    T_LOAD,
    T_SHUFFLE,
    T_STORE,
    T_SYNCBLOCK,
    T_SYNCWARP,
    T_VOTE,
)

TAG_NAMES = {
    T_COMPUTE: "compute",
    T_LOAD: "load",
    T_STORE: "store",
    T_ATOMIC: "atomic",
    T_SYNCWARP: "syncwarp",
    T_SYNCBLOCK: "syncblock",
    T_SHUFFLE: "shuffle",
    T_VOTE: "vote",
}


def _describe(ev) -> str:
    tag = ev.tag
    if tag == T_COMPUTE:
        return f"compute {ev.kind} x{ev.ops}"
    if tag == T_LOAD:
        return f"load {ev.buf.name}[{len(ev.idxs)}]"
    if tag == T_STORE:
        return f"store {ev.buf.name}[{len(ev.idxs)}]"
    if tag == T_ATOMIC:
        return f"atomic_{ev.op} {ev.buf.name}[{ev.idx}]"
    if tag == T_SYNCWARP:
        return f"syncwarp {ev.mask:#x}"
    if tag == T_SYNCBLOCK:
        return f"syncblock id={ev.bar_id}"
    return f"shfl_{ev.mode}"


class TraceRecorder:
    """Collects ``(block, round, tid, tag, label)`` rows from a launch."""

    def __init__(self, max_events: Optional[int] = None) -> None:
        self.rows: List[Tuple[int, int, int, int, str]] = []
        self.max_events = max_events
        self.dropped = 0

    def __call__(self, block_id: int, rnd: int, tid: int, ev) -> None:
        if self.max_events is not None and len(self.rows) >= self.max_events:
            self.dropped += 1
            return
        self.rows.append((block_id, rnd, tid, ev.tag, _describe(ev)))

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.rows)

    def for_thread(self, block_id: int, tid: int) -> List[Tuple[int, int, str]]:
        """One thread's timeline: ``(round, tag, label)`` rows in order."""
        return [
            (rnd, tag, label)
            for b, rnd, t, tag, label in self.rows
            if b == block_id and t == tid
        ]

    def summary(self) -> Dict[str, int]:
        """Event counts by type (plus drops, if the cap was hit)."""
        counts = Counter(TAG_NAMES[tag] for _, _, _, tag, _ in self.rows)
        out = dict(sorted(counts.items()))
        if self.dropped:
            out["dropped"] = self.dropped
        return out

    # -- export ------------------------------------------------------------
    def to_chrome_trace(self) -> List[dict]:
        """Trace-event JSON (``ph: X`` complete events; 1 round = 1 µs)."""
        events = [
            {
                "name": TAG_NAMES[tag],
                "cat": "device",
                "ph": "X",
                "ts": rnd,
                "dur": 1,
                "pid": block,
                "tid": tid,
                "args": {"detail": label},
            }
            for block, rnd, tid, tag, label in self.rows
        ]
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": block,
                "args": {"name": f"block {block}"},
            }
            for block in sorted({b for b, *_ in self.rows})
        ]
        return meta + events

    def save(self, path: str) -> None:
        """Write Chrome-trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump({"traceEvents": self.to_chrome_trace()}, fh)
