"""Analytic cycle cost model and device profiles.

The simulator executes kernels *functionally* (every load, store, barrier
and atomic really happens, in a deterministic order) while accumulating the
quantities below; this module turns those quantities into cycles.

Model contract (also summarised in DESIGN.md §2):

* Each scheduling *round* advances every runnable lane of a block by one
  event.  A warp's events in a round are grouped into *issue groups* (one
  per distinct instruction signature — divergent lanes issue separately);
  each group costs ``op_cost[kind]`` issue cycles.
* Global memory events are coalesced per issue group into 32-byte sectors
  (:mod:`repro.gpu.coalescing`); each sector costs ``sector_cycles`` on the
  SM's memory pipe.  Shared memory costs ``shared_pass_cycles`` per
  bank-conflict pass.  Atomics serialize per contended address.
* A block's time lower bound is ``rounds × round_latency`` — the dependent
  instruction-issue interval seen by a lone warp.  This is what makes
  single-active-warp phases (the generic-mode main thread running sequential
  code while workers idle) expensive, which is the ~15 % generic-mode
  penalty of the paper's Fig 10.
* An SM runs its resident blocks concurrently (a *wave*):
  ``wave_cycles = max(max_b rounds_b × round_latency,
  Σ_b issue_cycles_b / issue_width, Σ_b mem_cycles_b) + Σ_b sync_cycles_b``.
  SM time is the sum over its waves; kernel time is the max over SMs.
* Occupancy limits residency: warps per SM, blocks per SM, and shared
  memory per SM, so the teams-generic *extra warp* (paper Fig 2) and the
  enlarged variable sharing space (§5.3.1) both consume real resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class CostParams:
    """Tunable cost/capacity parameters of a device profile."""

    name: str = "generic"
    #: SIMT width of a warp (NVIDIA) / wavefront (AMD).
    warp_size: int = 32
    #: Number of streaming multiprocessors.
    num_sms: int = 108
    #: Warp-instructions the SM can issue per cycle across resident warps.
    issue_width: float = 4.0
    #: Dependent-issue interval: minimum cycles per scheduling round, i.e.
    #: the per-warp latency between consecutive instructions of one thread.
    round_latency: float = 2.0
    #: Issue cost per instruction class.
    op_cost: Dict[str, float] = field(
        default_factory=lambda: {
            "alu": 1.0,
            "fma": 1.0,
            "sfu": 4.0,
            "branch": 1.0,
            "ld": 1.0,
            "st": 1.0,
        }
    )
    #: Global memory: bytes per sector and memory-pipe cycles per sector.
    sector_bytes: int = 32
    sector_cycles: float = 3.0
    #: Exposed latency of one dependent global-memory step.  Charged once
    #: per scheduling round in which the block *missed* in L1: warps that
    #: issue loads together overlap (one exposure), phases where a lone
    #: warp chases dependent loads pay the full chain.  This is the term
    #: that makes the two-level sparse baseline slow — a single worker warp
    #: serializes its rows' load chains with nothing to hide them behind.
    mem_latency_cycles: float = 300.0
    #: Per-SM L1/texture cache modelled as an LRU over sectors.  Hits cost
    #: ``l1_sector_cycles`` on the (much wider) L1 pipe and no latency
    #: exposure; misses pay ``sector_cycles`` of DRAM bandwidth.  This is
    #: what absorbs the redundant A-row/B-column reloads of SU3_bench's
    #: simd loop tasks, like the hardware the paper measured on.
    l1_size_bytes: int = 128 * 1024
    l1_sector_cycles: float = 0.25
    #: Load-store-unit throughput: cycles per memory *transaction* (one
    #: distinct sector touched by one warp access position).  A fully
    #: coalesced warp load is 4 transactions; a scattered one is 32 — this
    #: is the classic coalescing penalty, paid even on L1 hits, and the
    #: mechanism behind the SU3/ideal-kernel simd wins (§6.3): adjacent
    #: lanes covering one site's elements issue far fewer transactions than
    #: one thread striding across its private matrix.
    lsu_transaction_cycles: float = 0.4
    #: Shared memory: banks, word size, cycles per conflict pass.
    shared_banks: int = 32
    shared_word_bytes: int = 4
    shared_pass_cycles: float = 1.0
    #: Local (register/stack) accesses: cycles per element.
    local_access_cycles: float = 0.25
    #: Atomic costs: fixed cost plus serialization per extra op on the same
    #: address within one round.
    atomic_cycles: float = 8.0
    atomic_conflict_cycles: float = 8.0
    #: Synchronization costs (per release, charged to the block's sync bucket).
    syncwarp_cycles: float = 2.0
    syncthreads_cycles: float = 30.0
    #: Occupancy limits.
    max_warps_per_sm: int = 64
    max_blocks_per_sm: int = 32
    shared_mem_per_sm: int = 164 * 1024
    shared_mem_per_block: int = 48 * 1024
    #: Register file per SM (32-bit registers).  Together with a launch's
    #: ``regs_per_thread`` estimate this limits resident blocks — the
    #: occupancy mechanism that penalizes serial inner loops holding whole
    #: matrices in registers (SU3_bench's two-level baseline).
    regfile_per_sm: int = 64 * 1024
    #: Whether the ISA offers warp/wavefront-level named barriers.  The AMD
    #: profile lacks them, which is why the paper's generic-SIMD mode is
    #: NVIDIA-only (§5.4.1).
    supports_warp_sync: bool = True

    def op_cycles(self, kind: str, ops: int = 1) -> float:
        """Issue cycles for ``ops`` operations of class ``kind``."""
        return self.op_cost.get(kind, 1.0) * ops

    def with_overrides(self, **kwargs) -> "CostParams":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


def nvidia_a100() -> CostParams:
    """A100-flavoured NVIDIA profile (the paper's evaluation platform)."""
    return CostParams(name="nvidia-a100")


def amd_mi100() -> CostParams:
    """MI100-flavoured AMD profile: 64-wide wavefronts, no wavefront barrier.

    Used by the §5.4.1 experiments: generic-mode SIMD is unsupported, so
    ``simd`` loops execute sequentially when a parallel region is generic.
    """
    return CostParams(
        name="amd-mi100",
        warp_size=64,
        num_sms=120,
        shared_mem_per_sm=64 * 1024,
        shared_mem_per_block=64 * 1024,
        supports_warp_sync=False,
    )


def benchmark_profile() -> CostParams:
    """Scaled-down A100 used by the paper-reproduction benchmarks.

    Simulating hundreds of thread blocks per data point is wasteful in a
    cooperative interpreter, so the benchmarks scale the *device* down with
    the problem (standard practice for academic simulators): 8 SMs instead
    of 108, with the per-SM bandwidth share raised accordingly
    (``sector_cycles`` 3.0 → 1.5 and ``lsu_transaction_cycles`` 0.4 → 0.25
    model each SM owning a larger slice of HBM bandwidth and L1
    throughput).  FP64 FMA costs 6 issue cycles — the A100 runs double
    precision at a quarter of the scheduler's issue width, folded into the
    op cost since the model has a single issue pool.  Launch geometries in
    :mod:`repro.perf` are chosen so SMs hold 2+ blocks, keeping the
    throughput terms engaged the way a full A100 run would be.
    """
    base = nvidia_a100()
    op_cost = dict(base.op_cost)
    op_cost["fma"] = 6.0
    return base.with_overrides(
        name="nvidia-a100-scaled8",
        num_sms=8,
        sector_cycles=1.5,
        lsu_transaction_cycles=0.25,
        op_cost=op_cost,
    )


#: Registry of named profiles for CLI/bench convenience.
PROFILES = {
    "nvidia-a100": nvidia_a100,
    "amd-mi100": amd_mi100,
    "nvidia-a100-scaled8": benchmark_profile,
}


def get_profile(name: str) -> CostParams:
    """Look up a device profile by name."""
    try:
        return PROFILES[name]()
    except KeyError:
        raise KeyError(
            f"unknown device profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
