"""Memory transaction models: global coalescing and shared-memory banks.

Global memory
=============

The device services a warp's memory instruction by fetching whole *sectors*
(32 bytes on the A100-like profile).  The number of distinct sectors touched
by the participating lanes determines the cost: a fully coalesced warp read
of 32 contiguous ``float32`` touches 4 sectors; a stride-128 pattern touches
32.  This is the mechanism behind the paper's motivation that performance
"suffers if data access patterns are neither uniform nor consecutive with
regards to worksharing loops" — and behind the SU3/ideal-kernel speedups
when ``simd`` turns per-thread strided loops into consecutive lane accesses.

Shared memory
=============

Shared memory is organised in ``banks`` word-interleaved banks.  A warp
access completes in as many passes as the maximum number of *distinct words*
any single bank must serve (broadcasts of the same word are free, as on real
hardware).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple


def global_sectors(addresses: Iterable[int], sector_bytes: int = 32) -> int:
    """Number of distinct ``sector_bytes``-sized sectors covering ``addresses``.

    ``addresses`` are byte addresses of the individual element accesses a
    warp issues together (one per participating lane and vector position).
    """
    return len({addr // sector_bytes for addr in addresses})


def span_sectors(addr: int, nbytes: int, sector_bytes: int = 32) -> int:
    """Sectors covered by a contiguous ``nbytes`` run starting at ``addr``."""
    if nbytes <= 0:
        return 0
    first = addr // sector_bytes
    last = (addr + nbytes - 1) // sector_bytes
    return last - first + 1


def shared_conflict_degree(
    addresses: Sequence[int], banks: int = 32, word_bytes: int = 4
) -> int:
    """Bank-conflict degree of a warp-synchronous shared memory access.

    Returns the number of serialized passes needed: the maximum, over banks,
    of the number of *distinct* words requested from that bank.  Identical
    words are broadcast in one pass.  An empty access costs 0 passes.
    """
    per_bank: dict[int, set[int]] = {}
    for addr in addresses:
        word = addr // word_bytes
        bank = word % banks
        per_bank.setdefault(bank, set()).add(word)
    if not per_bank:
        return 0
    return max(len(words) for words in per_bank.values())


_ABSENT = object()


class L1SectorCache:
    """Per-block L1 sector cache: LRU over sector ids with a batch API.

    The block scheduler filters every global-memory issue group's distinct
    sectors through this cache; hits ride the cheap L1 pipe, misses pay
    DRAM bandwidth.  The backing dict preserves insertion order, so
    re-inserting on hit implements LRU with O(1) per-sector work; eviction
    trims from the front (least recently used) after each batch, exactly
    one warp instruction's worth of accesses at a time.

    Both round engines (instrumented and fast) share one instance per
    block and present their sector batches in ascending sector order, so
    the cache state — and therefore every downstream hit/miss counter —
    evolves identically regardless of which engine ran the round.
    """

    __slots__ = ("cap", "_entries")

    def __init__(self, cap: int) -> None:
        if cap < 1:
            raise ValueError("L1 cache needs at least one sector slot")
        self.cap = int(cap)
        self._entries: dict = {}

    def access(self, sectors: Iterable[int]) -> Tuple[int, int]:
        """Touch a run of *distinct* sector ids; returns ``(hits, misses)``.

        Callers pass each batch in ascending order (a sorted set or the
        output of ``np.unique``) so independent engines replay the same
        insertion sequence.
        """
        entries = self._entries
        pop = entries.pop
        hits = 0
        misses = 0
        for sec in sectors:
            # LRU touch: pop (if present) and re-insert at the back.
            if pop(sec, _ABSENT) is _ABSENT:
                misses += 1
            else:
                hits += 1
            entries[sec] = None
        over = len(entries) - self.cap
        while over > 0:
            # Pop the least-recently-used entry (the dict's first key)
            # without materializing the whole key list.
            del entries[next(iter(entries))]
            over -= 1
        return hits, misses

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sector: int) -> bool:
        return sector in self._entries


def transaction_summary(
    addresses: Sequence[int], sector_bytes: int = 32
) -> Tuple[int, int]:
    """Return ``(sectors, ideal_sectors)`` for a warp-wide access.

    ``ideal_sectors`` is the minimum sector count the same number of element
    accesses could have achieved if perfectly contiguous — useful for
    coalescing-efficiency counters.
    """
    addrs = list(addresses)
    if not addrs:
        return (0, 0)
    sectors = global_sectors(addrs, sector_bytes)
    # All accesses in one instruction have the same element size in this
    # simulator; infer a conservative footprint from unique addresses.
    unique = len(set(addrs))
    ideal = max(1, -(-unique // max(1, sector_bytes // 4)))
    return (sectors, ideal)
