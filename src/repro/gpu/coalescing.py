"""Memory transaction models: global coalescing and shared-memory banks.

Global memory
=============

The device services a warp's memory instruction by fetching whole *sectors*
(32 bytes on the A100-like profile).  The number of distinct sectors touched
by the participating lanes determines the cost: a fully coalesced warp read
of 32 contiguous ``float32`` touches 4 sectors; a stride-128 pattern touches
32.  This is the mechanism behind the paper's motivation that performance
"suffers if data access patterns are neither uniform nor consecutive with
regards to worksharing loops" — and behind the SU3/ideal-kernel speedups
when ``simd`` turns per-thread strided loops into consecutive lane accesses.

Shared memory
=============

Shared memory is organised in ``banks`` word-interleaved banks.  A warp
access completes in as many passes as the maximum number of *distinct words*
any single bank must serve (broadcasts of the same word are free, as on real
hardware).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple


def global_sectors(addresses: Iterable[int], sector_bytes: int = 32) -> int:
    """Number of distinct ``sector_bytes``-sized sectors covering ``addresses``.

    ``addresses`` are byte addresses of the individual element accesses a
    warp issues together (one per participating lane and vector position).
    """
    return len({addr // sector_bytes for addr in addresses})


def span_sectors(addr: int, nbytes: int, sector_bytes: int = 32) -> int:
    """Sectors covered by a contiguous ``nbytes`` run starting at ``addr``."""
    if nbytes <= 0:
        return 0
    first = addr // sector_bytes
    last = (addr + nbytes - 1) // sector_bytes
    return last - first + 1


def shared_conflict_degree(
    addresses: Sequence[int], banks: int = 32, word_bytes: int = 4
) -> int:
    """Bank-conflict degree of a warp-synchronous shared memory access.

    Returns the number of serialized passes needed: the maximum, over banks,
    of the number of *distinct* words requested from that bank.  Identical
    words are broadcast in one pass.  An empty access costs 0 passes.
    """
    per_bank: dict[int, set[int]] = {}
    for addr in addresses:
        word = addr // word_bytes
        bank = word % banks
        per_bank.setdefault(bank, set()).add(word)
    if not per_bank:
        return 0
    return max(len(words) for words in per_bank.values())


def transaction_summary(
    addresses: Sequence[int], sector_bytes: int = 32
) -> Tuple[int, int]:
    """Return ``(sectors, ideal_sectors)`` for a warp-wide access.

    ``ideal_sectors`` is the minimum sector count the same number of element
    accesses could have achieved if perfectly contiguous — useful for
    coalescing-efficiency counters.
    """
    addrs = list(addresses)
    if not addrs:
        return (0, 0)
    sectors = global_sectors(addrs, sector_bytes)
    # All accesses in one instruction have the same element size in this
    # simulator; infer a conservative footprint from unique addresses.
    unique = len(set(addrs))
    ideal = max(1, -(-unique // max(1, sector_bytes // 4)))
    return (sectors, ideal)
