"""Device memory model: buffers, global memory, and per-block shared memory.

Memory is modelled at element granularity on top of NumPy storage.  Every
allocation is a :class:`Buffer` — a flat, typed array with a byte *base
address* inside its memory space, so the coalescing model can reason about
real byte addresses, and a *handle* (a 64-bit integer) so device code can
pass references through argument payloads exactly like the ``void *``
pointers the paper's runtime ships between threads.

Spaces
======

``global``
    Device-wide memory.  One :class:`GlobalMemory` per device; allocations
    live until freed.  Handles index a device-wide object table.
``shared``
    Per-block scratchpad of fixed capacity with a bump allocator
    (:class:`SharedMemory`).  The OpenMP runtime carves its *variable
    sharing space* out of this, as described in §5.3.1 of the paper.
``local``
    Lane-private memory.  Modelled as ordinary :class:`Buffer` objects
    tagged ``local``; accesses cost register-file rates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.errors import AllocationError, MemoryFault
from repro.gpu.events import T_LOAD, T_STORE, _sig

#: Valid memory space tags.
SPACES = ("global", "shared", "local")

#: Alignment (bytes) applied to every allocation; matches CUDA's 256-byte
#: alignment for global allocations, kept smaller for shared memory.
GLOBAL_ALIGN = 256
SHARED_ALIGN = 8


def _dtype_of(dtype) -> np.dtype:
    return np.dtype(dtype)


class Buffer:
    """A flat, typed device allocation.

    Parameters
    ----------
    name:
        Diagnostic label.
    space:
        One of :data:`SPACES`.
    size:
        Element count.
    dtype:
        NumPy dtype of the elements.
    base:
        Byte address of element 0 within the owning space.
    handle:
        Device-wide integer handle (0 means "not registered").
    data:
        Optional backing array (shared with the host); a fresh zeroed array
        is created when omitted.
    """

    __slots__ = (
        "name",
        "space",
        "size",
        "dtype",
        "itemsize",
        "base",
        "handle",
        "data",
        "sig_load",
        "sig_store",
    )

    def __init__(
        self,
        name: str,
        space: str,
        size: int,
        dtype,
        base: int = 0,
        handle: int = 0,
        data: Optional[np.ndarray] = None,
    ) -> None:
        if space not in SPACES:
            raise ValueError(f"unknown memory space {space!r}")
        if size < 0:
            raise ValueError("negative buffer size")
        self.name = name
        self.space = space
        self.size = int(size)
        self.dtype = _dtype_of(dtype)
        self.itemsize = self.dtype.itemsize
        self.base = int(base)
        self.handle = int(handle)
        # Issue-group signatures of loads/stores against this buffer are a
        # pure function of the space, so they are computed once here and
        # picked up by the Load/Store event constructors without re-interning
        # per event.
        self.sig_load = _sig(T_LOAD, space)
        self.sig_store = _sig(T_STORE, space)
        if data is None:
            data = np.zeros(self.size, dtype=self.dtype)
        else:
            data = np.ascontiguousarray(data).reshape(-1)
            if data.size != self.size:
                raise ValueError(
                    f"backing array has {data.size} elements, expected {self.size}"
                )
            if data.dtype != self.dtype:
                raise ValueError(
                    f"backing array dtype {data.dtype} != declared {self.dtype}"
                )
        self.data = data

    # -- element access (scheduler-side) ----------------------------------
    def check_index(self, idx: int) -> None:
        """Raise :class:`MemoryFault` unless ``0 <= idx < size``."""
        if not 0 <= idx < self.size:
            raise MemoryFault(
                f"index {idx} out of bounds for buffer {self.name!r} "
                f"({self.space}, size {self.size})"
            )

    def read(self, idx: int):
        self.check_index(int(idx))
        return self.data[int(idx)]

    def write(self, idx: int, value) -> None:
        self.check_index(int(idx))
        self.data[int(idx)] = value

    def byte_address(self, idx: int) -> int:
        """Byte address of element ``idx`` within this buffer's space."""
        return self.base + int(idx) * self.itemsize

    # -- bulk access (JIT tier / vectorized engines) -----------------------
    def _check_slice(self, idxs: slice) -> Tuple[int, int]:
        """Validate a unit-stride ascending slice; returns ``(start, stop)``.

        The faulting index matches what an elementwise ascending walk
        would hit first, so the raised :class:`MemoryFault` is identical
        to the scalar engines' per-element ``check_index`` fault.
        """
        if idxs.step not in (None, 1):
            raise ValueError("bulk slices must be unit-stride ascending")
        start = 0 if idxs.start is None else int(idxs.start)
        stop = self.size if idxs.stop is None else int(idxs.stop)
        if stop > start:
            if start < 0 or start >= self.size:
                self.check_index(start)
            if stop > self.size:
                # Ascending from an in-bounds start, the first bad element
                # is exactly ``size``.
                return start, self.size
        return start, stop

    @staticmethod
    def _as_index_array(idxs) -> np.ndarray:
        idx = np.asarray(idxs)
        if idx.dtype != np.int64:
            # Same truncation-toward-zero the scalar engines apply via
            # ``int(idx)``.
            idx = idx.astype(np.int64)
        return idx

    def gather(self, idxs) -> np.ndarray:
        """Bulk read: ``idxs`` is a unit-stride slice or an integer array.

        Returns a fresh array (never a view).  Out-of-bounds access raises
        the canonical :class:`MemoryFault` for the first bad index in
        ascending position order — bit-identical to an elementwise
        ``read`` walk.
        """
        if type(idxs) is slice:
            start, stop = self._check_slice(idxs)
            out = self.data[start:stop].copy()
            if stop - start < _slice_len(idxs, self.size):
                self.check_index(self.size)
            return out
        idx = self._as_index_array(idxs)
        if idx.size:
            valid = (idx >= 0) & (idx < self.size)
            if not valid.all():
                self.check_index(int(idx[int(np.argmin(valid))]))
        return self.data[idx]

    def scatter(self, idxs, values) -> None:
        """Bulk write with prefix-commit-then-fault semantics.

        Elements strictly before the first out-of-bounds position commit
        (in ascending position order, duplicates last-wins), then the
        canonical :class:`MemoryFault` is raised — matching an
        elementwise ``write`` walk exactly.
        """
        if type(idxs) is slice:
            start, stop = self._check_slice(idxs)
            want = _slice_len(idxs, self.size)
            if stop - start < want:
                self.data[start:stop] = _value_prefix(values, stop - start)
                self.check_index(self.size)
            self.data[start:stop] = values
            return
        idx = self._as_index_array(idxs)
        if idx.size:
            valid = (idx >= 0) & (idx < self.size)
            if not valid.all():
                bad = int(np.argmin(valid))
                self.data[idx[:bad]] = _value_prefix(values, bad)
                self.check_index(int(idx[bad]))
        self.data[idx] = values

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    def to_numpy(self) -> np.ndarray:
        """Host copy of the buffer contents."""
        return self.data.copy()

    def fill_from(self, array) -> None:
        """Copy host data into the buffer (sizes must match)."""
        arr = np.ascontiguousarray(array).reshape(-1)
        if arr.size != self.size:
            raise ValueError("size mismatch in fill_from")
        self.data[:] = arr

    def flip_bit(self, idx: int, bit: int) -> None:
        """Flip one bit of element ``idx`` in place (fault injection).

        The flip is applied to the raw storage bytes, so it models a
        physical upset rather than an arithmetic perturbation — for float
        dtypes the flipped word may decode to anything, including NaN.
        Used by :mod:`repro.faults.scrub`; out-of-range ``bit`` raises.
        """
        self.check_index(int(idx))
        nbits = self.itemsize * 8
        if not 0 <= bit < nbits:
            raise ValueError(f"bit {bit} out of range for {self.dtype} element")
        raw = self.data.view(np.uint8)
        byte = int(idx) * self.itemsize + bit // 8
        raw[byte] ^= np.uint8(1 << (bit % 8))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Buffer({self.name!r}, {self.space}, size={self.size}, "
            f"dtype={self.dtype}, base={self.base:#x}, handle={self.handle})"
        )


def _slice_len(idxs: slice, size: int) -> int:
    """Requested element count of a validated unit-stride slice."""
    start = 0 if idxs.start is None else int(idxs.start)
    stop = size if idxs.stop is None else int(idxs.stop)
    return max(0, stop - start)


def _value_prefix(values, n: int):
    """First ``n`` committed values (scalars broadcast as-is)."""
    if np.ndim(values) == 0:
        return values
    return values[:n]


def _align(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


class GlobalMemory:
    """Device-wide memory: allocator, handle table, and live-byte accounting.

    The handle table doubles as the simulator's "pointer" namespace: payload
    slots store 64-bit handles; :meth:`lookup` resolves a handle back to its
    buffer, which is what ``invokeMicrotask`` does when unpacking arguments.
    """

    def __init__(self, capacity: int = 1 << 34) -> None:
        self.capacity = int(capacity)
        self._next_base = GLOBAL_ALIGN  # keep 0 as a null address
        self._next_handle = 1  # 0 is the null handle
        self._buffers: Dict[int, Buffer] = {}
        self.live_bytes = 0
        self.peak_bytes = 0
        self.alloc_count = 0
        self.free_count = 0

    # -- allocation --------------------------------------------------------
    def alloc(self, name: str, size: int, dtype) -> Buffer:
        """Allocate ``size`` elements of ``dtype``; returns a registered buffer."""
        dt = _dtype_of(dtype)
        nbytes = int(size) * dt.itemsize
        if self.live_bytes + nbytes > self.capacity:
            raise AllocationError(
                f"global memory exhausted: requested {nbytes} bytes, "
                f"{self.capacity - self.live_bytes} available"
            )
        base = self._next_base
        self._next_base = _align(base + max(nbytes, 1), GLOBAL_ALIGN)
        handle = self._next_handle
        self._next_handle += 1
        buf = Buffer(name, "global", size, dt, base=base, handle=handle)
        self._buffers[handle] = buf
        self.live_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)
        self.alloc_count += 1
        return buf

    def from_array(self, name: str, array) -> Buffer:
        """Allocate and initialise a buffer from host data."""
        arr = np.ascontiguousarray(array).reshape(-1)
        buf = self.alloc(name, arr.size, arr.dtype)
        buf.data[:] = arr
        return buf

    def scalar(self, name: str, value, dtype=None) -> Buffer:
        """Allocate a 1-element buffer holding ``value`` (a boxed scalar)."""
        dt = _dtype_of(dtype) if dtype is not None else np.asarray(value).dtype
        buf = self.alloc(name, 1, dt)
        buf.data[0] = value
        return buf

    def free(self, buf: Buffer) -> None:
        """Release a buffer; its handle becomes invalid."""
        if buf.handle not in self._buffers:
            raise MemoryFault(f"double free or foreign buffer {buf.name!r}")
        del self._buffers[buf.handle]
        self.live_bytes -= buf.nbytes
        self.free_count += 1

    def is_live(self, buf: Buffer) -> bool:
        """Whether ``buf`` still owns its handle (cleanup-path guard)."""
        return self._buffers.get(buf.handle) is buf

    # -- handles -----------------------------------------------------------
    def register(self, buf: Buffer) -> int:
        """Assign a device-wide handle to a buffer from another space.

        Shared-memory and local buffers get handles through here so their
        references can travel inside argument payloads.
        """
        if buf.handle and buf.handle in self._buffers:
            return buf.handle
        handle = self._next_handle
        self._next_handle += 1
        buf.handle = handle
        self._buffers[handle] = buf
        return handle

    def lookup(self, handle: int) -> Buffer:
        try:
            return self._buffers[int(handle)]
        except KeyError:
            raise MemoryFault(f"dangling or null handle {handle}") from None

    def live_buffers(self) -> Iterable[Buffer]:
        return list(self._buffers.values())

    # -- snapshot support (repro.exec) --------------------------------------
    def mark(self) -> int:
        """Handle watermark: buffers allocated later have handles >= it.

        The parallel launch engine takes a mark before running any block;
        pre-launch buffers (below the mark) are tracked and merged, while
        kernel-time allocations are block-local by the execution model.
        """
        return self._next_handle

    def allocated_since(self, mark: int) -> Iterable[Buffer]:
        """Live buffers whose handles were issued at or after ``mark``."""
        return [buf for handle, buf in sorted(self._buffers.items())
                if handle >= mark]

    def drop(self, buf: Buffer) -> None:
        """Forget a *registered* (non-global) buffer's handle.

        Unlike :meth:`free`, no byte accounting changes — registered
        shared/local buffers were never counted in ``live_bytes``.
        """
        self._buffers.pop(buf.handle, None)


class SharedMemory:
    """Per-block scratchpad with a bump allocator.

    ``capacity`` defaults are set by the device profile (e.g. 48 KiB usable
    per block on the A100-like profile).  The runtime reserves a *variable
    sharing space* slice at block startup; kernel-visible allocations come
    after it.  ``reset()`` rewinds the allocator (used between kernel
    launches when a block object is reused).
    """

    def __init__(self, capacity: int = 48 * 1024) -> None:
        self.capacity = int(capacity)
        self._cursor = 0
        self._allocs: list[Buffer] = []

    @property
    def used(self) -> int:
        return self._cursor

    @property
    def remaining(self) -> int:
        return self.capacity - self._cursor

    def alloc(self, name: str, size: int, dtype) -> Buffer:
        """Carve ``size`` elements of ``dtype`` out of the scratchpad."""
        dt = _dtype_of(dtype)
        nbytes = int(size) * dt.itemsize
        base = _align(self._cursor, SHARED_ALIGN)
        if base + nbytes > self.capacity:
            raise AllocationError(
                f"shared memory exhausted: requested {nbytes} bytes at "
                f"offset {base}, capacity {self.capacity}"
            )
        self._cursor = base + nbytes
        buf = Buffer(name, "shared", size, dt, base=base)
        self._allocs.append(buf)
        return buf

    def reset(self) -> None:
        """Rewind the allocator; previously returned buffers become stale."""
        self._cursor = 0
        self._allocs.clear()


def local_buffer(name: str, size: int, dtype, data=None) -> Buffer:
    """Create a lane-private (``local``) buffer.

    Local buffers model per-thread stack allocations; the globalization pass
    (:mod:`repro.codegen.globalize`) replaces them with shared/global storage
    when a SIMD worker must observe them, per §4.3 of the paper.
    """
    return Buffer(name, "local", size, dtype, data=data)
