"""Device memory model: buffers, global memory, and per-block shared memory.

Memory is modelled at element granularity on top of NumPy storage.  Every
allocation is a :class:`Buffer` — a flat, typed array with a byte *base
address* inside its memory space, so the coalescing model can reason about
real byte addresses, and a *handle* (a 64-bit integer) so device code can
pass references through argument payloads exactly like the ``void *``
pointers the paper's runtime ships between threads.

Spaces
======

``global``
    Device-wide memory.  One :class:`GlobalMemory` per device; allocations
    live until freed.  Handles index a device-wide object table.
``shared``
    Per-block scratchpad of fixed capacity with a bump allocator
    (:class:`SharedMemory`).  The OpenMP runtime carves its *variable
    sharing space* out of this, as described in §5.3.1 of the paper.
``local``
    Lane-private memory.  Modelled as ordinary :class:`Buffer` objects
    tagged ``local``; accesses cost register-file rates.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.errors import AllocationError, MemoryFault
from repro.gpu.events import T_LOAD, T_STORE, _sig

#: Valid memory space tags.
SPACES = ("global", "shared", "local")

#: Alignment (bytes) applied to every allocation; matches CUDA's 256-byte
#: alignment for global allocations, kept smaller for shared memory.
GLOBAL_ALIGN = 256
SHARED_ALIGN = 8

#: Elements per dirty-tracking page.  Matches the scrub tier's CRC page so
#: one page index means the same span to the snapshot, the scrubber, and
#: the parallel merge.  256 elements keeps the bitmap tiny (1 byte per
#: 1-2 KiB of data) while a sparse kernel still dirties only a handful of
#: pages in a megabyte-scale buffer.
PAGE_ELEMS = 256
PAGE_SHIFT = 8  # log2(PAGE_ELEMS); pages are idx >> PAGE_SHIFT


def _dtype_of(dtype) -> np.dtype:
    return np.dtype(dtype)


class Buffer:
    """A flat, typed device allocation.

    Parameters
    ----------
    name:
        Diagnostic label.
    space:
        One of :data:`SPACES`.
    size:
        Element count.
    dtype:
        NumPy dtype of the elements.
    base:
        Byte address of element 0 within the owning space.
    handle:
        Device-wide integer handle (0 means "not registered").
    data:
        Optional backing array (shared with the host); a fresh zeroed array
        is created when omitted.
    """

    __slots__ = (
        "name",
        "space",
        "size",
        "dtype",
        "itemsize",
        "base",
        "handle",
        "data",
        "sig_load",
        "sig_store",
        "npages",
        "dirty",
        "snap_epoch",
    )

    def __init__(
        self,
        name: str,
        space: str,
        size: int,
        dtype,
        base: int = 0,
        handle: int = 0,
        data: Optional[np.ndarray] = None,
    ) -> None:
        if space not in SPACES:
            raise ValueError(f"unknown memory space {space!r}")
        if size < 0:
            raise ValueError("negative buffer size")
        self.name = name
        self.space = space
        self.size = int(size)
        self.dtype = _dtype_of(dtype)
        self.itemsize = self.dtype.itemsize
        self.base = int(base)
        self.handle = int(handle)
        # Issue-group signatures of loads/stores against this buffer are a
        # pure function of the space, so they are computed once here and
        # picked up by the Load/Store event constructors without re-interning
        # per event.
        self.sig_load = _sig(T_LOAD, space)
        self.sig_store = _sig(T_STORE, space)
        if data is None:
            data = np.zeros(self.size, dtype=self.dtype)
        else:
            data = np.ascontiguousarray(data).reshape(-1)
            if data.size != self.size:
                raise ValueError(
                    f"backing array has {data.size} elements, expected {self.size}"
                )
            if data.dtype != self.dtype:
                raise ValueError(
                    f"backing array dtype {data.dtype} != declared {self.dtype}"
                )
        self.data = data
        # Dirty-page bitmap: one byte per PAGE_ELEMS-element page, set by
        # every mutating path (write/scatter/fill_from/flip_bit and the
        # engines' inlined stores).  Snapshots clear it to open a tracking
        # window; ``snap_epoch`` counts those clears so a snapshot can tell
        # whether the bits still describe *its* window (see
        # repro.faults.scrub.MemorySnapshot).
        self.npages = max(1, (self.size + PAGE_ELEMS - 1) >> PAGE_SHIFT)
        self.dirty = bytearray(self.npages)
        self.snap_epoch = 0

    # -- element access (scheduler-side) ----------------------------------
    def check_index(self, idx: int) -> None:
        """Raise :class:`MemoryFault` unless ``0 <= idx < size``."""
        if not 0 <= idx < self.size:
            raise MemoryFault(
                f"index {idx} out of bounds for buffer {self.name!r} "
                f"({self.space}, size {self.size})"
            )

    def read(self, idx: int):
        self.check_index(int(idx))
        return self.data[int(idx)]

    def write(self, idx: int, value) -> None:
        i = int(idx)
        self.check_index(i)
        self.data[i] = value
        self.dirty[i >> PAGE_SHIFT] = 1

    def byte_address(self, idx: int) -> int:
        """Byte address of element ``idx`` within this buffer's space."""
        return self.base + int(idx) * self.itemsize

    # -- bulk access (JIT tier / vectorized engines) -----------------------
    def _check_slice(self, idxs: slice) -> Tuple[int, int]:
        """Validate a unit-stride ascending slice; returns ``(start, stop)``.

        The faulting index matches what an elementwise ascending walk
        would hit first, so the raised :class:`MemoryFault` is identical
        to the scalar engines' per-element ``check_index`` fault.
        """
        if idxs.step not in (None, 1):
            raise ValueError("bulk slices must be unit-stride ascending")
        start = 0 if idxs.start is None else int(idxs.start)
        stop = self.size if idxs.stop is None else int(idxs.stop)
        if stop > start:
            if start < 0 or start >= self.size:
                self.check_index(start)
            if stop > self.size:
                # Ascending from an in-bounds start, the first bad element
                # is exactly ``size``.
                return start, self.size
        return start, stop

    @staticmethod
    def _as_index_array(idxs) -> np.ndarray:
        idx = np.asarray(idxs)
        if idx.dtype != np.int64:
            # Same truncation-toward-zero the scalar engines apply via
            # ``int(idx)``.
            idx = idx.astype(np.int64)
        return idx

    def gather(self, idxs) -> np.ndarray:
        """Bulk read: ``idxs`` is a unit-stride slice or an integer array.

        Returns a fresh array (never a view).  Out-of-bounds access raises
        the canonical :class:`MemoryFault` for the first bad index in
        ascending position order — bit-identical to an elementwise
        ``read`` walk.
        """
        if type(idxs) is slice:
            start, stop = self._check_slice(idxs)
            out = self.data[start:stop].copy()
            if stop - start < _slice_len(idxs, self.size):
                self.check_index(self.size)
            return out
        idx = self._as_index_array(idxs)
        if idx.size:
            valid = (idx >= 0) & (idx < self.size)
            if not valid.all():
                self.check_index(int(idx[int(np.argmin(valid))]))
        return self.data[idx]

    def scatter(self, idxs, values) -> None:
        """Bulk write with prefix-commit-then-fault semantics.

        Elements strictly before the first out-of-bounds position commit
        (in ascending position order, duplicates last-wins), then the
        canonical :class:`MemoryFault` is raised — matching an
        elementwise ``write`` walk exactly.
        """
        if type(idxs) is slice:
            start, stop = self._check_slice(idxs)
            want = _slice_len(idxs, self.size)
            if stop - start < want:
                self.data[start:stop] = _value_prefix(values, stop - start)
                self.mark_dirty_span(start, stop)
                self.check_index(self.size)
            self.data[start:stop] = values
            self.mark_dirty_span(start, stop)
            return
        idx = self._as_index_array(idxs)
        if idx.size:
            valid = (idx >= 0) & (idx < self.size)
            if not valid.all():
                bad = int(np.argmin(valid))
                self.data[idx[:bad]] = _value_prefix(values, bad)
                self.mark_dirty_indices(idx[:bad])
                self.check_index(int(idx[bad]))
        self.data[idx] = values
        self.mark_dirty_indices(idx)

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    def to_numpy(self) -> np.ndarray:
        """Host copy of the buffer contents."""
        return self.data.copy()

    def fill_from(self, array) -> None:
        """Copy host data into the buffer (sizes must match)."""
        arr = np.ascontiguousarray(array).reshape(-1)
        if arr.size != self.size:
            raise ValueError("size mismatch in fill_from")
        self.data[:] = arr
        self.mark_all_dirty()

    def flip_bit(self, idx: int, bit: int) -> None:
        """Flip one bit of element ``idx`` in place (fault injection).

        The flip is applied to the raw storage bytes, so it models a
        physical upset rather than an arithmetic perturbation — for float
        dtypes the flipped word may decode to anything, including NaN.
        Used by :mod:`repro.faults.scrub`; out-of-range ``bit`` raises.
        """
        self.check_index(int(idx))
        nbits = self.itemsize * 8
        if not 0 <= bit < nbits:
            raise ValueError(f"bit {bit} out of range for {self.dtype} element")
        raw = self.data.view(np.uint8)
        byte = int(idx) * self.itemsize + bit // 8
        raw[byte] ^= np.uint8(1 << (bit % 8))
        # A flip is a mutation like any other: the O(dirty) rollback path
        # must re-copy this page even when the scrubber is disabled.
        self.dirty[int(idx) >> PAGE_SHIFT] = 1

    # -- dirty-page tracking ------------------------------------------------
    def mark_dirty_span(self, start: int, stop: int) -> None:
        """Mark every page overlapping elements ``[start, stop)`` dirty."""
        if stop > start:
            lo = start >> PAGE_SHIFT
            hi = ((stop - 1) >> PAGE_SHIFT) + 1
            self.dirty[lo:hi] = b"\x01" * (hi - lo)

    def mark_dirty_indices(self, idx: np.ndarray) -> None:
        """Mark the pages covering an integer index array dirty."""
        if len(idx):
            dirty = self.dirty
            for page in np.unique(np.asarray(idx) >> PAGE_SHIFT):
                dirty[page] = 1

    def mark_dirty_sel(self, sel) -> None:
        """Mark pages for any store selector: int, slice, or index array."""
        if type(sel) is slice:
            start = 0 if sel.start is None else int(sel.start)
            stop = self.size if sel.stop is None else min(int(sel.stop),
                                                          self.size)
            self.mark_dirty_span(start, stop)
        elif isinstance(sel, (int, np.integer)):
            self.dirty[int(sel) >> PAGE_SHIFT] = 1
        else:
            self.mark_dirty_indices(sel)

    def mark_all_dirty(self) -> None:
        self.dirty = bytearray(b"\x01" * self.npages)

    def clear_dirty(self) -> None:
        """Open a fresh tracking window (bumps :attr:`snap_epoch`)."""
        self.dirty = bytearray(self.npages)
        self.snap_epoch += 1

    def dirty_page_indices(self) -> np.ndarray:
        """Indices of pages written since the last :meth:`clear_dirty`."""
        return np.flatnonzero(np.frombuffer(self.dirty, dtype=np.uint8))

    def page_span(self, page: int) -> Tuple[int, int]:
        """Element span ``[lo, hi)`` of ``page`` (last page may be short)."""
        lo = int(page) << PAGE_SHIFT
        return lo, min(lo + PAGE_ELEMS, self.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Buffer({self.name!r}, {self.space}, size={self.size}, "
            f"dtype={self.dtype}, base={self.base:#x}, handle={self.handle})"
        )


def _slice_len(idxs: slice, size: int) -> int:
    """Requested element count of a validated unit-stride slice."""
    start = 0 if idxs.start is None else int(idxs.start)
    stop = size if idxs.stop is None else int(idxs.stop)
    return max(0, stop - start)


def _value_prefix(values, n: int):
    """First ``n`` committed values (scalars broadcast as-is)."""
    if np.ndim(values) == 0:
        return values
    return values[:n]


def _align(value: int, align: int) -> int:
    return (value + align - 1) & ~(align - 1)


class GlobalMemory:
    """Device-wide memory: allocator, handle table, and live-byte accounting.

    The handle table doubles as the simulator's "pointer" namespace: payload
    slots store 64-bit handles; :meth:`lookup` resolves a handle back to its
    buffer, which is what ``invokeMicrotask`` does when unpacking arguments.
    """

    def __init__(self, capacity: int = 1 << 34) -> None:
        self.capacity = int(capacity)
        self._next_base = GLOBAL_ALIGN  # keep 0 as a null address
        self._next_handle = 1  # 0 is the null handle
        self._buffers: Dict[int, Buffer] = {}
        # Freed address extents, kept sorted by base and coalesced on
        # insert: ``[base, span]`` pairs of GLOBAL_ALIGN-granular byte
        # ranges available for reuse.  Handles stay monotonic forever —
        # only *addresses* recycle — so ``mark``/``allocated_since``
        # semantics and handle-keyed snapshots are unaffected by churn.
        self._free_extents: list[list[int]] = []
        self.live_bytes = 0
        self.peak_bytes = 0
        self.alloc_count = 0
        self.free_count = 0

    @staticmethod
    def _extent_span(nbytes: int) -> int:
        """Aligned bytes an allocation consumes (what the bump pointer
        advanced by: at least one byte, rounded up to GLOBAL_ALIGN)."""
        return _align(max(int(nbytes), 1), GLOBAL_ALIGN)

    @property
    def address_high_water(self) -> int:
        """First never-allocated byte address (churn regression metric)."""
        return self._next_base

    # -- allocation --------------------------------------------------------
    def alloc(self, name: str, size: int, dtype) -> Buffer:
        """Allocate ``size`` elements of ``dtype``; returns a registered buffer."""
        dt = _dtype_of(dtype)
        nbytes = int(size) * dt.itemsize
        if self.live_bytes + nbytes > self.capacity:
            raise AllocationError(
                f"global memory exhausted: requested {nbytes} bytes, "
                f"{self.capacity - self.live_bytes} available"
            )
        span = self._extent_span(nbytes)
        base = 0
        # First fit from the recycled extents; fall back to the bump
        # pointer.  A fresh (free-less) allocation sequence therefore
        # produces the exact base sequence the pure bump allocator did.
        for i, (fbase, fspan) in enumerate(self._free_extents):
            if fspan >= span:
                base = fbase
                if fspan == span:
                    del self._free_extents[i]
                else:
                    self._free_extents[i] = [fbase + span, fspan - span]
                break
        if not base:
            base = self._next_base
            self._next_base = base + span
        handle = self._next_handle
        self._next_handle += 1
        buf = Buffer(name, "global", size, dt, base=base, handle=handle)
        self._buffers[handle] = buf
        self.live_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)
        self.alloc_count += 1
        return buf

    def from_array(self, name: str, array) -> Buffer:
        """Allocate and initialise a buffer from host data."""
        arr = np.ascontiguousarray(array).reshape(-1)
        buf = self.alloc(name, arr.size, arr.dtype)
        buf.data[:] = arr
        buf.mark_all_dirty()
        return buf

    def scalar(self, name: str, value, dtype=None) -> Buffer:
        """Allocate a 1-element buffer holding ``value`` (a boxed scalar)."""
        dt = _dtype_of(dtype) if dtype is not None else np.asarray(value).dtype
        buf = self.alloc(name, 1, dt)
        buf.data[0] = value
        buf.dirty[0] = 1
        return buf

    def free(self, buf: Buffer) -> None:
        """Release a buffer; its handle becomes invalid.

        The buffer's address extent is recycled: coalesced into the
        sorted free list, and — when the freed range reaches the bump
        pointer — the pointer itself rewinds, so alloc/free churn keeps
        both ``live_bytes`` and the address high-water stable instead of
        growing ``_next_base`` without bound.
        """
        if buf.handle not in self._buffers:
            raise MemoryFault(f"double free or foreign buffer {buf.name!r}")
        del self._buffers[buf.handle]
        self.live_bytes -= buf.nbytes
        self.free_count += 1
        if buf.space == "global" and buf.base:
            self._release_extent(buf.base, self._extent_span(buf.nbytes))

    def _release_extent(self, base: int, span: int) -> None:
        extents = self._free_extents
        i = bisect.bisect_left(extents, [base, 0])
        # Coalesce with the neighbour below, then above.
        if i > 0 and extents[i - 1][0] + extents[i - 1][1] == base:
            i -= 1
            extents[i][1] += span
        else:
            extents.insert(i, [base, span])
        if i + 1 < len(extents) and extents[i][0] + extents[i][1] == extents[i + 1][0]:
            extents[i][1] += extents[i + 1][1]
            del extents[i + 1]
        # Rewind the bump pointer over a freed tail extent.
        if extents and extents[-1][0] + extents[-1][1] == self._next_base:
            tail = extents.pop()
            self._next_base = tail[0]

    def is_live(self, buf: Buffer) -> bool:
        """Whether ``buf`` still owns its handle (cleanup-path guard)."""
        return self._buffers.get(buf.handle) is buf

    # -- handles -----------------------------------------------------------
    def register(self, buf: Buffer) -> int:
        """Assign a device-wide handle to a buffer from another space.

        Shared-memory and local buffers get handles through here so their
        references can travel inside argument payloads.
        """
        if buf.handle and buf.handle in self._buffers:
            return buf.handle
        handle = self._next_handle
        self._next_handle += 1
        buf.handle = handle
        self._buffers[handle] = buf
        return handle

    def lookup(self, handle: int) -> Buffer:
        try:
            return self._buffers[int(handle)]
        except KeyError:
            raise MemoryFault(f"dangling or null handle {handle}") from None

    def live_buffers(self) -> Iterable[Buffer]:
        return list(self._buffers.values())

    # -- snapshot support (repro.exec) --------------------------------------
    def mark(self) -> int:
        """Handle watermark: buffers allocated later have handles >= it.

        The parallel launch engine takes a mark before running any block;
        pre-launch buffers (below the mark) are tracked and merged, while
        kernel-time allocations are block-local by the execution model.
        """
        return self._next_handle

    def allocated_since(self, mark: int) -> Iterable[Buffer]:
        """Live buffers whose handles were issued at or after ``mark``.

        Handles are issued monotonically and dict insertion order
        preserves issue order, so plain traversal already yields
        ascending handles — no per-call re-sort of the whole table
        (this runs on every parallel block launch).
        """
        return [buf for handle, buf in self._buffers.items()
                if handle >= mark]

    def drop(self, buf: Buffer) -> None:
        """Forget a *registered* (non-global) buffer's handle.

        Unlike :meth:`free`, no byte accounting changes — registered
        shared/local buffers were never counted in ``live_bytes``.
        """
        self._buffers.pop(buf.handle, None)


class SharedMemory:
    """Per-block scratchpad with a bump allocator.

    ``capacity`` defaults are set by the device profile (e.g. 48 KiB usable
    per block on the A100-like profile).  The runtime reserves a *variable
    sharing space* slice at block startup; kernel-visible allocations come
    after it.  ``reset()`` rewinds the allocator (used between kernel
    launches when a block object is reused).
    """

    def __init__(self, capacity: int = 48 * 1024) -> None:
        self.capacity = int(capacity)
        self._cursor = 0
        self._allocs: list[Buffer] = []

    @property
    def used(self) -> int:
        return self._cursor

    @property
    def remaining(self) -> int:
        return self.capacity - self._cursor

    def alloc(self, name: str, size: int, dtype) -> Buffer:
        """Carve ``size`` elements of ``dtype`` out of the scratchpad."""
        dt = _dtype_of(dtype)
        nbytes = int(size) * dt.itemsize
        base = _align(self._cursor, SHARED_ALIGN)
        if base + nbytes > self.capacity:
            raise AllocationError(
                f"shared memory exhausted: requested {nbytes} bytes at "
                f"offset {base}, capacity {self.capacity}"
            )
        self._cursor = base + nbytes
        buf = Buffer(name, "shared", size, dt, base=base)
        self._allocs.append(buf)
        return buf

    def reset(self) -> None:
        """Rewind the allocator; previously returned buffers become stale."""
        self._cursor = 0
        self._allocs.clear()


def local_buffer(name: str, size: int, dtype, data=None) -> Buffer:
    """Create a lane-private (``local``) buffer.

    Local buffers model per-thread stack allocations; the globalization pass
    (:mod:`repro.codegen.globalize`) replaces them with shared/global storage
    when a SIMD worker must observe them, per §4.3 of the paper.
    """
    return Buffer(name, "local", size, dtype, data=data)
