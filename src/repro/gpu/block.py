"""Thread-block scheduler: cooperative lockstep execution of all lanes.

A :class:`ThreadBlock` owns one generator per thread and advances them in
*rounds*: every runnable lane steps by exactly one event per round.  The
round structure is what makes the simulation SIMT-faithful:

* lanes of a warp that post the same event signature in a round form one
  *issue group* (one warp instruction); divergent lanes issue separately;
* memory events that issue together are coalesced together;
* warp/block barriers block lanes until every *live* participant arrives —
  retired threads are excluded, matching CUDA's ``__syncthreads`` treatment
  of exited threads;
* if a round advances no lane and releases no barrier, the block is
  deadlocked and a :class:`~repro.errors.DeadlockError` with a per-lane
  diagnostic is raised (this is how the test suite's failure-injection
  cases observe protocol bugs).

Side effects within a round apply in deterministic (warp, lane) order, so
every simulation — including atomics — is reproducible.  An optional
``schedule_policy`` (see :mod:`repro.sanitizer.schedule`) re-permutes the
warp resolution order and per-warp commit order per round — still
deterministic given the policy's seed, which is how the sanitizer's
schedule explorer surfaces order-dependent results.

An optional ``monitor`` (see :mod:`repro.sanitizer.monitor`) observes
events, retirements, barrier releases, and deadlocks; the happens-before
race detector, barrier analyzer, and sharing auditor all attach through
it.  Both hooks are strictly zero-cost when absent.

Engines
=======

The block owns two interchangeable round engines:

* the **instrumented engine** (:meth:`ThreadBlock._run_instrumented`) —
  the reference implementation, carrying every hook point (tracer,
  monitor, schedule policy, fault plan);
* the **fast engine** (:meth:`ThreadBlock._run_fast`) — selected
  automatically when no tracer, monitor, schedule policy, or fault plan
  is attached (the production configuration).  It steps the same lanes
  in the same deterministic order and shares the barrier/vote/shuffle
  resolution and memory-accounting code, so memory contents, every
  :class:`~repro.gpu.counters.BlockCounters` field, and the
  deadlock/error behaviour are bit-identical to the instrumented engine
  — only the interpreter overhead differs.  The exec-layer write
  recorder *is* supported on the fast path (the per-tag handler tables
  are specialized once at construction, so the per-event hot loop stays
  free of hook-presence branches) — parallel-executor workers inherit
  the fast engine.  ``tests/gpu/test_fastpath_equiv.py`` holds the
  differential proof obligation.
"""

from __future__ import annotations

import math
import operator
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    DeadlockError,
    LaunchError,
    SimulationError,
    SynchronizationError,
)
from repro.gpu.atomics import apply_atomic, apply_atomic_resilient
from repro.gpu.coalescing import L1SectorCache, shared_conflict_degree
from repro.gpu.costmodel import CostParams
from repro.gpu.counters import BlockCounters
from repro.gpu.events import (
    T_ATOMIC,
    T_COMPUTE,
    T_LOAD,
    T_SHUFFLE,
    T_STORE,
    T_SYNCBLOCK,
    T_SYNCWARP,
    T_VOTE,
)
from repro.gpu.memory import PAGE_SHIFT, GlobalMemory, SharedMemory
from repro.gpu.thread import (
    DONE,
    RUN,
    WAIT_BLOCK,
    WAIT_SHFL,
    WAIT_WARP,
    Lane,
    ThreadCtx,
    lane_table,
)

#: Hard cap on scheduling rounds; hitting it means a runaway kernel.
DEFAULT_MAX_ROUNDS = 5_000_000

_BY_LANE_ID = operator.attrgetter("lane_id")


def _signature(ev) -> tuple:
    """Issue-group signature: events sharing it issue as one instruction."""
    t = ev.tag
    if t == T_COMPUTE:
        return (t, ev.kind)
    if t == T_LOAD or t == T_STORE:
        return (t, ev.buf.space)
    if t == T_ATOMIC:
        return (t, ev.op)
    if t == T_SYNCWARP:
        return (t, ev.mask)
    if t == T_SHUFFLE:
        return (t, ev.mode, ev.mask)
    if t == T_VOTE:
        return (t, ev.mode, ev.mask)
    return (t,)


class ThreadBlock:
    """One simulated thread block (an OpenMP team's hardware vehicle)."""

    def __init__(
        self,
        block_id: int,
        num_threads: int,
        params: CostParams,
        gmem: GlobalMemory,
        entry,
        args: Sequence = (),
        num_blocks: int = 1,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        tracer=None,
        detect_races: bool = False,
        monitor=None,
        schedule_policy=None,
        recorder=None,
        faults=None,
        fastpath: Optional[bool] = None,
        engine: Optional[str] = None,
        jit_stats=None,
    ) -> None:
        if num_threads < 1:
            raise LaunchError("block must have at least one thread")
        self.block_id = block_id
        self.num_threads = num_threads
        self.num_blocks = num_blocks
        self.params = params
        self.gmem = gmem
        self.shared = SharedMemory(params.shared_mem_per_block)
        self.counters = BlockCounters()
        self.max_rounds = max_rounds
        #: Optional event hook ``tracer(block_id, round, tid, event)`` —
        #: zero-cost when None; used for debugging and protocol tests.
        self.tracer = tracer
        #: When True, unsynchronized same-address conflicts raise
        #: :class:`~repro.errors.DataRaceError` (debugging mode).  This is
        #: now a shorthand for attaching the sanitizer's happens-before
        #: race detector in raise mode, which subsumes — and fixes a
        #: false negative of — the old round-local check (conflicts in
        #: *different* rounds with no intervening barrier were never
        #: compared).
        self.detect_races = detect_races
        if detect_races and monitor is None:
            from repro.sanitizer.monitor import SanitizerConfig, SanitizerMonitor

            monitor = SanitizerMonitor(
                SanitizerConfig(barriers=False, sharing=False, mode="raise")
            )
        #: Optional sanitizer monitor (event/release/deadlock hooks).
        self.monitor = monitor
        #: Optional schedule policy permuting warp/commit order per round.
        self.schedule_policy = schedule_policy
        #: Optional global-memory write recorder
        #: (:class:`repro.exec.record.GlobalWriteRecorder`) — the parallel
        #: launch engine's undo/merge hook; zero-cost when None.
        self.recorder = recorder
        #: Optional fault plan (:class:`repro.faults.FaultPlan`) consulted
        #: at the transient-atomic and forced-overflow hook sites;
        #: zero-cost when None.
        self.faults = faults
        #: Per-block L1 sector cache (LRU), shared by both round engines so
        #: their hit/miss streams evolve identically.
        self._l1 = L1SectorCache(
            max(1, params.l1_size_bytes // params.sector_bytes)
        )
        self._round_mem_stall = False
        #: Per-launch JIT telemetry (:class:`repro.jit.stats.JitCounters`),
        #: shared across the launch's blocks; None outside the jit engine.
        self.jit_stats = jit_stats
        # Engine selection.  ``engine`` names a round engine preference
        # ("auto" | "instrumented" | "fast" | "jit"); the legacy
        # ``fastpath`` flag maps onto fast/instrumented.  Neither the fast
        # engine nor the JIT carries hook points, so any attached
        # tracer/monitor/policy/fault-plan forces the instrumented engine
        # regardless of the caller's preference; the JIT additionally
        # requires a read-blind recorder (the read-tracking recorder is a
        # sanitizer hook), downgrading to the fast engine otherwise —
        # both downgrades are the ``hook`` rung of the deopt ladder
        # (docs/PERF.md).  ``fastpath=False`` / ``engine="instrumented"``
        # force the reference engine, which the differential suite uses.
        if engine is None:
            if fastpath is None:
                engine = "auto"
            else:
                engine = "fast" if fastpath else "instrumented"
        elif engine not in ("auto", "instrumented", "fast", "jit"):
            raise LaunchError(f"unknown engine {engine!r}")
        eligible = (
            self.tracer is None
            and self.monitor is None
            and self.schedule_policy is None
            and self.faults is None
        )
        if engine == "jit":
            if not eligible:
                if jit_stats is not None:
                    jit_stats.note_deopt("hook")
                engine = "instrumented"
            elif recorder is not None and recorder.track_reads:
                if jit_stats is not None:
                    jit_stats.note_deopt("hook")
                engine = "fast"
        elif engine == "instrumented":
            pass
        elif not eligible:  # "auto" / "fast" with hooks attached
            engine = "instrumented"
        elif engine == "auto":
            engine = "fast"
        self.engine = engine
        self.fastpath = engine != "instrumented"
        ws = params.warp_size
        self.num_warps = -(-num_threads // ws)
        # The JIT tier re-instantiates the kernel as one vectorized
        # generator per warp, so the entry/args pair must outlive
        # construction (the scalar lane generators below stay untouched
        # until an engine actually steps them).
        self._entry = entry
        self._args = tuple(args)
        self.lanes: List[Lane] = []
        self.ctxs: List[ThreadCtx] = []
        self._warps: List[List[Lane]] = []
        if engine != "jit":
            # The JIT traces a vectorized re-instantiation of the kernel;
            # scalar lane generators are built lazily, only if the block
            # actually deoptimizes into an interpreter.
            self._build_lanes()
        # -- fast-engine state ------------------------------------------
        # Pre-allocated per-warp event buffers, reused — cleared, never
        # reallocated — every round.  (Side effects apply inline while
        # stepping, so only the events survive to the accounting step.)
        self._post_evs: List[list] = [[] for _ in range(self.num_warps)]
        # Hoisted cost-table lookup target for the accounting handlers.
        self._op_cost = self.params.op_cost
        self._cost_ld = self._op_cost.get("ld", 1.0)
        self._cost_st = self._op_cost.get("st", 1.0)
        # Round-local atomic address histogram, reused across rounds.
        self._atomic_addrs: Dict[tuple, int] = {}
        # Incremental barrier bookkeeping: waiter groups are maintained at
        # post time (side-effect handlers) and torn down at release, so the
        # fast engine never rescans all lanes looking for barriers.
        self._block_waiters: Dict[tuple, List[Lane]] = {}
        self._warp_waiters: List[Dict[int, List[Lane]]] = [
            {} for _ in range(self.num_warps)
        ]
        self._shfl_waiters: List[Dict[tuple, List[Lane]]] = [
            {} for _ in range(self.num_warps)
        ]
        self._n_waiters = 0
        self._full_mask = (1 << ws) - 1
        # Per-tag handler tables (indexed by event tag).  The side-effect
        # table is specialized once, here, on recorder presence — the hot
        # loop itself carries no hook-presence branches.
        rec = self.recorder
        side_load = self._side_load if rec is None or not rec.track_reads else self._side_load_rec
        side_store = self._side_store if rec is None else self._side_store_rec
        side_atomic = self._side_atomic if rec is None else self._side_atomic_rec
        self._side = [
            None,  # T_COMPUTE: no architectural side effect
            side_load,
            side_store,
            side_atomic,
            self._side_syncwarp,
            self._side_syncblock,
            self._side_shuffle,
            self._side_vote,
        ]
        self._acct = [
            self._acct_compute,
            self._acct_mem,
            self._acct_mem,
            self._acct_atomic,
            self._acct_barrier,
            self._acct_barrier,
            self._acct_shfl,
            self._acct_shfl,
        ]

    # ------------------------------------------------------------------
    def _build_lanes(self) -> None:
        """Instantiate the scalar lane generators (one per thread)."""
        ws = self.params.warp_size
        entry, args = self._entry, self._args
        # SoA identity columns, computed once per geometry and shared by
        # every block of every launch that uses it.
        for tid, warp_id, lane_id in lane_table(self.num_threads, ws).rows:
            tc = ThreadCtx(
                tid=tid,
                warp_size=ws,
                block_id=self.block_id,
                num_blocks=self.num_blocks,
                block_dim=self.num_threads,
                block=self,
                lane_id=lane_id,
                warp_id=warp_id,
            )
            gen = entry(tc, *args)
            if not hasattr(gen, "send"):
                raise LaunchError(
                    "kernel entry must be a generator function "
                    f"(got {type(gen).__name__} from {entry!r})"
                )
            self.ctxs.append(tc)
            self.lanes.append(Lane(tid, warp_id, lane_id, gen))
        self._warps[:] = [
            self.lanes[w * ws : (w + 1) * ws] for w in range(self.num_warps)
        ]

    # ------------------------------------------------------------------
    def run(self) -> BlockCounters:
        """Execute the block to completion; returns its counters."""
        if self.engine == "jit":
            from repro.jit.engine import try_run_jit

            result = try_run_jit(self)
            if result is not None:
                return result
            # Deopt: compilation committed nothing, and the scalar lane
            # generators — built only now — replay the whole block
            # bit-identically from round zero.
            self._build_lanes()
            return self._run_fast()
        if self.fastpath:
            return self._run_fast()
        return self._run_instrumented()

    # ------------------------------------------------------------------
    # Instrumented engine: the reference implementation with every hook.
    # ------------------------------------------------------------------
    def _run_instrumented(self) -> BlockCounters:
        lanes = self.lanes
        c = self.counters
        mon = self.monitor
        if mon is not None:
            mon.on_block_start(self)
        while True:
            posted_by_warp: List[List[Tuple[Lane, object]]] = [
                [] for _ in range(self.num_warps)
            ]
            advanced = 0
            live = 0
            for lane in lanes:
                state = lane.state
                if state == DONE:
                    continue
                live += 1
                if state != RUN:
                    continue
                try:
                    ev = lane.gen.send(lane.pending)
                except StopIteration:
                    lane.state = DONE
                    # Clear the resume value eagerly: post-mortem
                    # diagnostics and the exec recorder must never observe
                    # a dead lane's stale value.
                    lane.pending = None
                    live -= 1
                    if mon is not None:
                        mon.on_retire(self, c.rounds, lane)
                    continue
                lane.pending = None
                posted_by_warp[lane.warp_id].append((lane, ev))
                advanced += 1
                if self.tracer is not None:
                    self.tracer(self.block_id, c.rounds, lane.tid, ev)
                if mon is not None:
                    mon.on_event(self, c.rounds, lane, ev)
            c.lane_steps += advanced
            if live == 0:
                break
            self._resolve_round(posted_by_warp)
            released = self._release_barriers()
            if advanced == 0 and released == 0:
                self._raise_deadlock()
            c.rounds += 1
            if c.rounds > self.max_rounds:
                raise SimulationError(
                    f"block {self.block_id} exceeded {self.max_rounds} rounds; "
                    "likely a runaway loop"
                )
        if mon is not None:
            mon.on_block_end(self)
        return c

    def _raise_deadlock(self):
        """Raise the no-progress diagnostic (identical on both engines)."""
        c = self.counters
        mon = self.monitor
        msg = self._deadlock_report()
        if mon is not None:
            analysis = mon.on_deadlock(self, c.rounds)
            if analysis:
                msg += "\n" + analysis
        raise DeadlockError(
            msg,
            block_id=self.block_id,
            round=c.rounds,
            lanes=[
                (l.tid, l.warp_id, l.lane_id, l.state, l.wait_key)
                for l in self.lanes
                if l.state != DONE
            ],
        )

    # ------------------------------------------------------------------
    # Fast engine: hook-free specialization of the same round semantics.
    # ------------------------------------------------------------------
    def _run_fast(self) -> BlockCounters:
        """Hook-free round loop: one fused pass per warp per round.

        The instrumented engine steps every lane, buffers ``(lane, event)``
        posts, then resolves side effects and accounting in two further
        passes.  This engine fuses all three into a single warp-major scan:
        as each lane steps, its event's side effect is applied immediately
        (warps partition tids contiguously, so warp-major iteration applies
        side effects in exactly the ascending-tid order the buffered scheme
        produces) and the warp's convergence is tracked incrementally —
        interned events and signatures make the common converged case two
        identity checks per lane.  Accounting for the warp's issue groups
        runs right after its lanes, which is the same warp-ascending
        accounting order (and therefore the same L1 cache evolution) as the
        instrumented resolve pass.  Retired lanes are filtered out of the
        per-warp scan lists, and barrier release runs off incrementally
        maintained waiter groups instead of rescanning every lane.  All
        observable behaviour — memory, counters, errors — matches the
        instrumented engine bit for bit.
        """
        c = self.counters
        params = self.params
        post_evs = self._post_evs
        atomic_addrs = self._atomic_addrs
        side = self._side
        acct = self._acct
        max_rounds = self.max_rounds
        rec = self.recorder
        block_waiters = self._block_waiters
        warp_waiters = self._warp_waiters
        shfl_waiters = self._shfl_waiters
        warps = self._warps
        full_mask = self._full_mask
        syncwarp_cycles = params.syncwarp_cycles
        syncthreads_cycles = params.syncthreads_cycles
        nw = 0  # waiters added this round; merged into _n_waiters below
        bbk = bbg = None  # round-local classic-barrier arrivals
        # Single-element loads/stores inline below when no recorder watches
        # the direction; everything else dispatches through the table.
        inline_ld = rec is None or not rec.track_reads
        inline_st = rec is None
        active: List[List[Lane]] = [
            [l for l in warp if l.state != DONE] for warp in self._warps
        ]
        live = sum(map(len, active))
        while live:
            self._round_mem_stall = False
            if atomic_addrs:
                atomic_addrs.clear()
            advanced = 0
            for w, lanes_w in enumerate(active):
                if not lanes_w:
                    continue
                evs = post_evs[w]
                ap_ev = evs.append
                ww_waiters = warp_waiters[w]
                sh_waiters = shfl_waiters[w]
                retired = False
                ev0 = None
                sk0 = sg0 = sspill = None
                swk0 = swg = None
                for lane in lanes_w:
                    if lane.state != RUN:
                        continue
                    try:
                        ev = lane.send(lane.pending)
                    except StopIteration:
                        lane.state = DONE
                        lane.pending = None
                        retired = True
                        live -= 1
                        continue
                    t = ev.tag
                    if t == 0:
                        lane.pending = None
                    elif t == 1:
                        idxs = ev.idxs
                        if inline_ld and len(idxs) == 1:
                            buf = ev.buf
                            i = idxs[0]
                            if i.__class__ is not int:
                                i = int(i)
                            if 0 <= i < buf.size:
                                lane.pending = (buf.data[i],)
                            else:
                                buf.check_index(i)
                        else:
                            lane.pending = None
                            side[1](lane, ev)
                    elif t == 2:
                        lane.pending = None
                        idxs = ev.idxs
                        values = ev.values
                        if inline_st and len(idxs) == 1 == len(values):
                            buf = ev.buf
                            i = idxs[0]
                            if i.__class__ is not int:
                                i = int(i)
                            if 0 <= i < buf.size:
                                buf.data[i] = values[0]
                                buf.dirty[i >> PAGE_SHIFT] = 1
                            else:
                                buf.check_index(i)
                        else:
                            side[2](lane, ev)
                    elif t == 4:
                        # SyncWarp arrival — collected round-locally; a
                        # full-mask barrier every warp lane reaches this
                        # round completes inline after the lane scan.
                        # Lanes with a second, different mask this round
                        # park in the waiter dict directly.
                        lane.pending = None
                        mask = ev.mask
                        if swk0 is None:
                            swk0 = mask
                            swg = [lane]
                        elif mask == swk0:
                            swg.append(lane)
                        else:
                            lane.state = WAIT_WARP
                            lane.wait_key = mask
                            # Invariant: only shuffle/vote waiters carry a
                            # posted event; a lane migrating to a barrier
                            # park must never drag a stale one along.
                            lane.posted = None
                            grp = ww_waiters.get(mask)
                            if grp is None:
                                ww_waiters[mask] = [lane]
                            else:
                                grp.append(lane)
                            nw += 1
                    elif t == 5:
                        # SyncBlock arrival — the classic block-wide
                        # barrier collects round-locally (completion is
                        # checked against end-of-round liveness below);
                        # a second, different key this round parks in
                        # the waiter dict directly.
                        lane.pending = None
                        key = ev.wkey
                        if bbk is None:
                            bbk = key
                            bbg = [lane]
                        elif key == bbk:
                            bbg.append(lane)
                        else:
                            lane.state = WAIT_BLOCK
                            lane.wait_key = key
                            # Same invariant as the syncwarp park above.
                            lane.posted = None
                            grp = block_waiters.get(key)
                            if grp is None:
                                block_waiters[key] = [lane]
                            else:
                                grp.append(lane)
                            nw += 1
                    elif t == 3:
                        lane.pending = None
                        side[3](lane, ev)
                    else:
                        # Shuffle / Vote arrival (tags 6 and 7 share the
                        # WAIT_SHFL machinery).  Collected round-locally: a
                        # full-warp group completing within this round is
                        # resolved inline after the lane scan, without ever
                        # parking its lanes in the waiter structures.
                        # ``wkey`` objects are interned, so the single-key
                        # common case is one identity check per lane.
                        lane.pending = None
                        lane.posted = ev
                        key = ev.wkey
                        if sk0 is None:
                            sk0 = key
                            sg0 = [lane]
                        elif key is sk0:
                            sg0.append(lane)
                        else:
                            if sspill is None:
                                sspill = {}
                            grp = sspill.get(key)
                            if grp is None:
                                sspill[key] = [lane]
                            else:
                                grp.append(lane)
                    if ev0 is None:
                        ev0 = ev
                        sig0 = ev.sig
                        uniform = True
                        converged = True
                    elif ev is not ev0:
                        uniform = False
                        if converged:
                            s = ev.sig
                            if s is not sig0 and s != sig0:
                                converged = False
                    ap_ev(ev)
                if retired:
                    active[w] = [l for l in lanes_w if l.state != DONE]
                if swk0 is not None:
                    # Full-mask syncwarp every warp lane reached this round:
                    # complete without parking — arrival already cleared
                    # ``pending`` and the lanes never left RUN.  (A retired
                    # lane keeps ``len(swg)`` short of the denominator, so
                    # such a group still deadlocks via the waiter path.)
                    if swk0 == full_mask and len(swg) == len(warps[w]):
                        c.syncwarps += 1
                        c.sync_cycles += syncwarp_cycles
                    else:
                        grp = ww_waiters.get(swk0)
                        if grp is None:
                            ww_waiters[swk0] = grp = []
                        for l in swg:
                            l.state = WAIT_WARP
                            l.wait_key = swk0
                            # Barrier waiters never carry a posted event
                            # (deopt-path hygiene: this lane may have come
                            # off the inline same-round path mid-round).
                            l.posted = None
                            grp.append(l)
                        nw += len(swg)
                if sk0 is not None:
                    # Shuffle/vote groups posted this round: resolve inline
                    # when complete (full mask, every warp lane — retired
                    # lanes included in the denominator, so a group with a
                    # retired participant still deadlocks via the waiter
                    # path); park incomplete groups in the waiter dicts,
                    # merging behind any earlier-round arrivals.
                    nall = len(warps[w])
                    if sk0[0] == full_mask and len(sg0) == nall:
                        self._resolve_shfl_group(sk0, sg0)
                    else:
                        grp = sh_waiters.get(sk0)
                        if grp is None:
                            sh_waiters[sk0] = grp = []
                        for l in sg0:
                            l.state = WAIT_SHFL
                            l.wait_key = sk0
                            grp.append(l)
                        nw += len(sg0)
                    if sspill is not None:
                        for k2, g2 in sspill.items():
                            if k2[0] == full_mask and len(g2) == nall:
                                self._resolve_shfl_group(k2, g2)
                            else:
                                grp = sh_waiters.get(k2)
                                if grp is None:
                                    sh_waiters[k2] = grp = []
                                for l in g2:
                                    l.state = WAIT_SHFL
                                    l.wait_key = k2
                                    grp.append(l)
                                nw += len(g2)
                if ev0 is None:
                    continue
                advanced += len(evs)
                # Issue accounting for this warp's round, grouped by
                # signature; ``uniform`` (every entry the same interned
                # object) lets handlers skip per-event reductions.
                if converged:
                    c.issues += 1
                    acct[sig0[0]](sig0, evs, uniform)
                else:
                    groups: Dict[tuple, list] = {}
                    for ev in evs:
                        g = groups.get(ev.sig)
                        if g is None:
                            groups[ev.sig] = [ev]
                        else:
                            g.append(ev)
                    c.issues += len(groups)
                    c.divergent_issues += len(groups) - 1
                    for sig, items in groups.items():
                        acct[sig[0]](sig, items, False)
                evs.clear()
            c.lane_steps += advanced
            if not live:
                break
            # Device-wide atomic contention within the round.
            if atomic_addrs:
                extra = 0
                for n in atomic_addrs.values():
                    if n > 1:
                        extra += n - 1
                if extra:
                    c.atomic_conflicts += extra
                    c.mem_cycles += extra * params.atomic_conflict_cycles
            if self._round_mem_stall:
                c.mem_serial_rounds += 1
            if bbk is not None:
                # Classic block barrier every live lane reached this round:
                # complete without parking (no live lane can be waiting
                # elsewhere when all of them arrived here).  Named/counted
                # barriers and partial arrivals park in the waiter dict,
                # merging behind earlier-round arrivals.
                if bbk[1] is None and len(bbg) == live:
                    c.syncblocks += 1
                    c.sync_cycles += syncthreads_cycles
                else:
                    grp = block_waiters.get(bbk)
                    if grp is None:
                        block_waiters[bbk] = grp = []
                    for l in bbg:
                        l.state = WAIT_BLOCK
                        l.wait_key = bbk
                        # Barrier waiters never carry a posted event.
                        l.posted = None
                        grp.append(l)
                    nw += len(bbg)
                bbk = bbg = None
            if nw:
                self._n_waiters += nw
                nw = 0
            released = (
                self._release_barriers_fast(live) if self._n_waiters else 0
            )
            if advanced == 0 and released == 0:
                self._raise_deadlock()
            c.rounds += 1
            if c.rounds > max_rounds:
                raise SimulationError(
                    f"block {self.block_id} exceeded {self.max_rounds} rounds; "
                    "likely a runaway loop"
                )
        return c

    # -- fast-engine side-effect handlers (pass 1) ----------------------
    @staticmethod
    def _side_load(lane, ev) -> None:
        buf = ev.buf
        idxs = ev.idxs
        if len(idxs) == 1:
            i = int(idxs[0])
            if 0 <= i < buf.size:
                lane.pending = (buf.data[i],)
                return
            buf.check_index(i)  # raises the canonical MemoryFault
        lane.pending = tuple(buf.read(i) for i in idxs)

    def _side_load_rec(self, lane, ev) -> None:
        lane.pending = tuple(ev.buf.read(i) for i in ev.idxs)
        rec = self.recorder
        if ev.buf.space == "global" and rec.tracks(ev.buf):
            rec.on_load(ev.buf, ev.idxs)

    @staticmethod
    def _side_store(lane, ev) -> None:
        idxs = ev.idxs
        values = ev.values
        buf = ev.buf
        n = len(idxs)
        if n != len(values):
            raise SimulationError(
                f"store index/value arity mismatch on {buf.name!r}"
            )
        if n == 1:
            i = int(idxs[0])
            if 0 <= i < buf.size:
                buf.data[i] = values[0]
                buf.dirty[i >> PAGE_SHIFT] = 1
                return
            buf.check_index(i)
        write = buf.write
        for i, v in zip(idxs, values):
            write(i, v)

    def _side_store_rec(self, lane, ev) -> None:
        idxs = ev.idxs
        values = ev.values
        if len(idxs) != len(values):
            raise SimulationError(
                f"store index/value arity mismatch on {ev.buf.name!r}"
            )
        buf = ev.buf
        rec = self.recorder
        if buf.space == "global" and rec.tracks(buf):
            for i, v in zip(idxs, values):
                rec.on_store(buf, i, v)
                buf.write(i, v)
        else:
            for i, v in zip(idxs, values):
                buf.write(i, v)

    def _side_atomic(self, lane, ev) -> None:
        buf = ev.buf
        if buf.space == "global":
            self._round_mem_stall = True
        lane.pending = apply_atomic(buf, ev.idx, ev.op, ev.operand)
        key = self._contention_key(ev)
        addrs = self._atomic_addrs
        addrs[key] = addrs.get(key, 0) + 1

    def _side_atomic_rec(self, lane, ev) -> None:
        buf = ev.buf
        if buf.space == "global":
            self._round_mem_stall = True
        lane.pending = apply_atomic(buf, ev.idx, ev.op, ev.operand)
        rec = self.recorder
        if buf.space == "global" and rec.tracks(buf):
            rec.on_atomic(buf, ev.idx, ev.op, ev.operand, lane.pending)
        key = self._contention_key(ev)
        addrs = self._atomic_addrs
        addrs[key] = addrs.get(key, 0) + 1

    def _side_syncwarp(self, lane, ev) -> None:
        lane.state = WAIT_WARP
        mask = ev.mask
        lane.wait_key = mask
        waiters = self._warp_waiters[lane.warp_id]
        grp = waiters.get(mask)
        if grp is None:
            waiters[mask] = [lane]
        else:
            grp.append(lane)
        self._n_waiters += 1

    def _side_syncblock(self, lane, ev) -> None:
        lane.state = WAIT_BLOCK
        key = ev.wkey
        lane.wait_key = key
        waiters = self._block_waiters
        grp = waiters.get(key)
        if grp is None:
            waiters[key] = [lane]
        else:
            grp.append(lane)
        self._n_waiters += 1

    def _side_shuffle(self, lane, ev) -> None:
        lane.state = WAIT_SHFL
        key = ev.wkey
        lane.wait_key = key
        lane.posted = ev
        waiters = self._shfl_waiters[lane.warp_id]
        grp = waiters.get(key)
        if grp is None:
            waiters[key] = [lane]
        else:
            grp.append(lane)
        self._n_waiters += 1

    _side_vote = _side_shuffle

    # -- fast-engine accounting handlers (pass 2) ------------------------
    # Each takes (sig, evs, uniform): ``evs`` is the group's event list,
    # ``uniform`` is True when every entry is the *same* interned object —
    # a free by-product of the convergence scan that lets the handlers
    # skip per-event reduction work.
    def _acct_compute(self, sig, evs, uniform) -> None:
        if uniform:
            ops = evs[0].ops
        else:
            ops = max(ev.ops for ev in evs)
        self.counters.issue_cycles += self._op_cost.get(sig[1], 1.0) * ops

    def _acct_mem(self, sig, evs, uniform) -> None:
        self._account_memory_fast(sig[0], sig[1], evs)

    @staticmethod
    def _consec_run(evs):
        """``(first, last)`` when the group's single-index events form a
        unit-stride ascending run, else None.  Indices normalize through
        the same ``int()`` truncation the side-effect pass applied, so the
        returned bounds match ``byte_address`` arithmetic exactly."""
        prev = first = evs[0].idxs[0]
        if first.__class__ is not int:
            prev = first = int(first)
        it = iter(evs)
        next(it)
        for ev in it:
            i = ev.idxs[0]
            if i.__class__ is not int:
                i = int(i)
            if i != prev + 1:
                return None
            prev = i
        return first, prev

    def _acct_atomic(self, sig, evs, uniform) -> None:
        c = self.counters
        params = self.params
        n = len(evs)
        c.atomics += n
        c.issue_cycles += self._cost_st
        c.mem_cycles += n * params.atomic_cycles

    def _acct_barrier(self, sig, evs, uniform) -> None:
        # Barrier arrival issue cost is folded into sync_cycles at release.
        pass

    def _acct_shfl(self, sig, evs, uniform) -> None:
        self.counters.issue_cycles += 1.0

    # -- fast-engine barrier release -------------------------------------
    def _release_barriers_fast(self, live_count: int) -> int:
        """Release ready groups off the maintained waiter structures.

        Semantics mirror :meth:`_release_barriers`: block-level releases
        first (short-circuiting warp-level work for the round), then
        warp barriers and shuffle/vote groups per warp in ascending warp
        order.  Convergence checks reuse :meth:`_mask_converged` and
        :meth:`_resolve_shfl_group`, so release results are identical.
        """
        params = self.params
        c = self.counters
        released = 0

        bw = self._block_waiters
        if bw:
            done_keys = []
            for key, waiters in bw.items():
                count = key[1]
                if count is None:
                    ready = len(waiters) == live_count
                else:
                    ready = len(waiters) >= count
                if ready:
                    for lane in waiters:
                        lane.state = RUN
                        lane.pending = None
                        lane.wait_key = None
                    c.syncblocks += 1
                    c.sync_cycles += params.syncthreads_cycles
                    released += len(waiters)
                    done_keys.append(key)
            if done_keys:
                for key in done_keys:
                    del bw[key]
                self._n_waiters -= released
                return released

        full = self._full_mask
        for wid in range(self.num_warps):
            warp_lanes = self._warps[wid]
            nlanes = len(warp_lanes)
            by_mask = self._warp_waiters[wid]
            if by_mask:
                done_masks = []
                for mask, waiters in by_mask.items():
                    # Full-warp groups (the common case) are ready exactly
                    # when every lane of the warp sits in the group — a
                    # retired or diverged lane keeps the count short, and
                    # the scan would refuse the release too.
                    if (
                        len(waiters) == nlanes
                        if mask == full
                        else self._mask_converged(
                            warp_lanes, mask, waiters, WAIT_WARP, mask
                        )
                    ):
                        for lane in waiters:
                            lane.state = RUN
                            lane.pending = None
                            lane.wait_key = None
                        c.syncwarps += 1
                        c.sync_cycles += params.syncwarp_cycles
                        released += len(waiters)
                        self._n_waiters -= len(waiters)
                        done_masks.append(mask)
                for mask in done_masks:
                    del by_mask[mask]

            shfl = self._shfl_waiters[wid]
            if shfl:
                done_shfl = []
                for key, waiters in shfl.items():
                    mask = key[0]
                    if (
                        len(waiters) == nlanes
                        if mask == full
                        else self._mask_converged(
                            warp_lanes, mask, waiters, WAIT_SHFL, key
                        )
                    ):
                        self._resolve_shfl_group(key, waiters)
                        released += len(waiters)
                        self._n_waiters -= len(waiters)
                        done_shfl.append(key)
                for key in done_shfl:
                    del shfl[key]
        return released

    @staticmethod
    def _contention_key(ev) -> tuple:
        """Round-local atomic contention key for ``ev.buf[ev.idx]``.

        Keyed by the buffer's stable device address ``(space, base)`` so
        two distinct :class:`~repro.gpu.memory.Buffer` objects aliasing
        the same storage contend correctly (``id()`` would treat them as
        different addresses).  Lane-private ``local`` buffers have no
        stable address space — all carry ``base == 0`` — so object
        identity *is* the location there (the round's events keep the
        buffers alive, making ``id`` collision-free within the round).
        """
        buf = ev.buf
        if buf.space == "local":
            return (id(buf), int(ev.idx))
        return (buf.space, buf.base, int(ev.idx))

    # ------------------------------------------------------------------
    def _resolve_round(self, posted_by_warp) -> None:
        params = self.params
        c = self.counters
        atomic_addrs: Dict[Tuple[int, int], int] = {}
        self._round_mem_stall = False

        # Resolution order: ascending warp id, lane order within a warp —
        # unless a schedule policy permutes either (every permutation is a
        # legal interleaving of the round's concurrent accesses; the
        # sanitizer's schedule explorer uses this to expose order
        # dependence).  Cost accounting below is order-independent.
        policy = self.schedule_policy
        warp_ids = range(self.num_warps)
        if policy is not None:
            warp_ids = policy.warp_order(self.block_id, c.rounds, self.num_warps)

        for wid in warp_ids:
            warp_posts = posted_by_warp[wid]
            if not warp_posts:
                continue
            commits = warp_posts
            if policy is not None:
                perm = policy.commit_order(
                    self.block_id, c.rounds, wid, len(warp_posts)
                )
                commits = [warp_posts[i] for i in perm]
            # Pass 1: side effects in (permuted) commit order.
            for lane, ev in commits:
                tag = ev.tag
                if tag == T_LOAD:
                    lane.pending = tuple(ev.buf.read(i) for i in ev.idxs)
                    rec = self.recorder
                    if (
                        rec is not None
                        and rec.track_reads
                        and ev.buf.space == "global"
                        and rec.tracks(ev.buf)
                    ):
                        rec.on_load(ev.buf, ev.idxs)
                elif tag == T_STORE:
                    if len(ev.idxs) != len(ev.values):
                        raise SimulationError(
                            f"store index/value arity mismatch on {ev.buf.name!r}"
                        )
                    rec = self.recorder
                    if (
                        rec is not None
                        and ev.buf.space == "global"
                        and rec.tracks(ev.buf)
                    ):
                        for i, v in zip(ev.idxs, ev.values):
                            rec.on_store(ev.buf, i, v)
                            ev.buf.write(i, v)
                    else:
                        for i, v in zip(ev.idxs, ev.values):
                            ev.buf.write(i, v)
                elif tag == T_ATOMIC:
                    if ev.buf.space == "global":
                        self._round_mem_stall = True
                    if self.faults is None:
                        lane.pending = apply_atomic(
                            ev.buf, ev.idx, ev.op, ev.operand
                        )
                    else:
                        lane.pending = apply_atomic_resilient(
                            ev.buf, ev.idx, ev.op, ev.operand, self.faults,
                            self.block_id, c.rounds, lane.tid,
                        )
                    rec = self.recorder
                    if (
                        rec is not None
                        and ev.buf.space == "global"
                        and rec.tracks(ev.buf)
                    ):
                        rec.on_atomic(ev.buf, ev.idx, ev.op, ev.operand, lane.pending)
                    key = self._contention_key(ev)
                    atomic_addrs[key] = atomic_addrs.get(key, 0) + 1
                elif tag == T_SYNCWARP:
                    lane.state = WAIT_WARP
                    lane.wait_key = ev.mask
                elif tag == T_SYNCBLOCK:
                    lane.state = WAIT_BLOCK
                    lane.wait_key = (
                        ev.bar_id,
                        None if ev.count is None else int(ev.count),
                    )
                elif tag == T_SHUFFLE:
                    lane.state = WAIT_SHFL
                    lane.wait_key = (ev.mask, ev.mode)
                    lane.posted = ev
                elif tag == T_VOTE:
                    lane.state = WAIT_SHFL
                    lane.wait_key = (ev.mask, ("vote", ev.mode))
                    lane.posted = ev
                # T_COMPUTE: no architectural side effect.

            # Pass 2: issue/memory cost accounting with grouping.
            groups: Dict[tuple, List[Tuple[Lane, object]]] = {}
            for item in warp_posts:
                groups.setdefault(_signature(item[1]), []).append(item)
            c.issues += len(groups)
            c.divergent_issues += len(groups) - 1
            for sig, items in groups.items():
                tag = sig[0]
                if tag == T_COMPUTE:
                    max_ops = max(ev.ops for _, ev in items)
                    c.issue_cycles += params.op_cycles(sig[1], max_ops)
                elif tag == T_LOAD or tag == T_STORE:
                    self._account_memory(tag, sig[1], items)
                elif tag == T_ATOMIC:
                    n = len(items)
                    c.atomics += n
                    c.issue_cycles += params.op_cost.get("st", 1.0)
                    c.mem_cycles += n * params.atomic_cycles
                elif tag == T_SHUFFLE or tag == T_VOTE:
                    c.issue_cycles += 1.0
                # Barrier arrival issue cost is folded into sync_cycles
                # charged at release.

        # Device-wide atomic contention within the round.
        extra = sum(n - 1 for n in atomic_addrs.values() if n > 1)
        if extra:
            c.atomic_conflicts += extra
            c.mem_cycles += extra * params.atomic_conflict_cycles
        # Dependent-latency exposure: L1-missing loads/atomics issued this
        # round stall their warps; concurrent warps' accesses overlap into
        # one exposure.
        if self._round_mem_stall:
            c.mem_serial_rounds += 1

    def _account_memory(self, tag: int, space: str, items) -> None:
        params = self.params
        c = self.counters
        positions = max(len(ev.idxs) for _, ev in items)
        nelem = sum(len(ev.idxs) for _, ev in items)
        if tag == T_LOAD:
            c.loads += nelem
            c.issue_cycles += params.op_cost.get("ld", 1.0) * positions
        else:
            c.stores += nelem
            c.issue_cycles += params.op_cost.get("st", 1.0) * positions
        if space == "global":
            # Distinct sectors across the whole unrolled run, then filtered
            # through the per-block L1 sector cache: hits ride the cheap L1
            # pipe and expose no DRAM latency, misses pay full bandwidth and
            # flag the round as a dependent-latency stall.
            sb = params.sector_bytes
            sectors = set()
            transactions = 0
            for k in range(positions):
                pos_sectors = set()
                for _, ev in items:
                    idxs = ev.idxs
                    if k < len(idxs):
                        buf = ev.buf
                        a = buf.byte_address(idxs[k])
                        pos_sectors.add(a // sb)
                        pos_sectors.add((a + buf.itemsize - 1) // sb)
                transactions += len(pos_sectors)
                sectors |= pos_sectors
            # Sector sets are filtered through the L1 in ascending sector
            # order on both engines, so the caches evolve identically.
            hits, misses = self._l1.access(sorted(sectors))
            c.l1_hits += hits
            c.l1_misses += misses
            if tag == T_LOAD:
                c.global_load_sectors += misses
                if misses:
                    self._round_mem_stall = True
            else:
                c.global_store_sectors += misses
            c.lsu_transactions += transactions
            c.mem_cycles += (
                misses * params.sector_cycles
                + hits * params.l1_sector_cycles
                + transactions * params.lsu_transaction_cycles
            )
        elif space == "shared":
            passes = 0
            for k in range(positions):
                addrs = [
                    ev.buf.byte_address(ev.idxs[k])
                    for _, ev in items
                    if k < len(ev.idxs)
                ]
                passes += shared_conflict_degree(
                    addrs, params.shared_banks, params.shared_word_bytes
                )
            c.shared_passes += passes
            c.mem_cycles += passes * params.shared_pass_cycles
        else:  # local
            c.local_accesses += nelem
            c.mem_cycles += nelem * params.local_access_cycles

    def _account_memory_fast(self, tag: int, space: str, evs) -> None:
        """Fast twin of :meth:`_account_memory`, taking a raw event list.

        Specialized for the hot shape — every event of the group touches
        the same buffer with equal-length index runs (the lockstep pattern
        a converged warp produces).  There the per-position set churn
        collapses into one sector computation: a small set comprehension
        for warp-sized groups, NumPy unique counts once the unrolled run
        is large enough to amortize array overhead.  Aligned elements
        (``sector_bytes % itemsize == 0`` and an aligned base) can never
        straddle a sector, halving the address work.  Any other shape
        falls back to the scalar per-position logic, identical to the
        instrumented twin.  Both twins push sector runs through the shared
        :class:`L1SectorCache` in ascending sector order, so counters and
        cache state are bit-identical.
        """
        params = self.params
        c = self.counters
        n = len(evs)
        ev0 = evs[0]
        npos = len(ev0.idxs)
        buf0 = ev0.buf
        lockstep = npos > 0
        if lockstep and n > 1:
            for ev in evs:
                if ev.buf is not buf0 or len(ev.idxs) != npos:
                    lockstep = False
                    break
        if lockstep:
            positions = npos
            nelem = n * npos
        else:
            positions = 0
            nelem = 0
            for ev in evs:
                ln = len(ev.idxs)
                nelem += ln
                if ln > positions:
                    positions = ln
        if tag == T_LOAD:
            c.loads += nelem
            c.issue_cycles += self._cost_ld * positions
        else:
            c.stores += nelem
            c.issue_cycles += self._cost_st * positions
        if space == "global":
            sb = params.sector_bytes
            if lockstep:
                isz = buf0.itemsize
                base = buf0.base
                # Pass-1 side effects already validated (and int()-
                # truncated) every index, so the arithmetic below matches
                # ``byte_address`` exactly.
                aligned = sb % isz == 0 and base % isz == 0
                if npos == 1:
                    run = self._consec_run(evs)
                    if run is not None:
                        # Unit-stride ascending run (the coalesced-stream
                        # pattern): the footprint is one contiguous sector
                        # interval — two divisions replace the set walk.
                        s0 = (base + run[0] * isz) // sb
                        s1 = (base + run[1] * isz + (isz - 1)) // sb
                        secs = range(s0, s1 + 1)
                        transactions = s1 - s0 + 1
                    elif aligned:
                        if n < 48:
                            secs = sorted(
                                {(base + int(ev.idxs[0]) * isz) // sb for ev in evs}
                            )
                        else:
                            lo = (
                                base
                                + np.fromiter(
                                    (ev.idxs[0] for ev in evs), np.int64, n
                                )
                                * isz
                            ) // sb
                            secs = np.unique(lo).tolist()
                        transactions = len(secs)
                    else:
                        pos = set()
                        spill = isz - 1
                        for ev in evs:
                            a = base + int(ev.idxs[0]) * isz
                            pos.add(a // sb)
                            pos.add((a + spill) // sb)
                        secs = sorted(pos)
                        transactions = len(secs)
                else:
                    mat = np.asarray([ev.idxs for ev in evs])
                    if mat.dtype != np.int64:
                        mat = mat.astype(np.int64)
                    lo = (base + mat * isz) // sb
                    if aligned:
                        transactions = 0
                        for k in range(npos):
                            transactions += np.unique(lo[:, k]).size
                        secs = np.unique(lo).tolist()
                    else:
                        hi = (base + mat * isz + (isz - 1)) // sb
                        transactions = 0
                        for k in range(npos):
                            transactions += np.unique(
                                np.concatenate((lo[:, k], hi[:, k]))
                            ).size
                        secs = np.unique(
                            np.concatenate((lo.ravel(), hi.ravel()))
                        ).tolist()
            else:
                # Ragged or multi-buffer group: scalar logic, identical to
                # the instrumented twin.
                sectors = set()
                transactions = 0
                for k in range(positions):
                    pos_sectors = set()
                    for ev in evs:
                        idxs = ev.idxs
                        if k < len(idxs):
                            buf = ev.buf
                            a = buf.byte_address(idxs[k])
                            pos_sectors.add(a // sb)
                            pos_sectors.add((a + buf.itemsize - 1) // sb)
                    transactions += len(pos_sectors)
                    sectors |= pos_sectors
                secs = sorted(sectors)
            hits, misses = self._l1.access(secs)
            c.l1_hits += hits
            c.l1_misses += misses
            if tag == T_LOAD:
                c.global_load_sectors += misses
                if misses:
                    self._round_mem_stall = True
            else:
                c.global_store_sectors += misses
            c.lsu_transactions += transactions
            c.mem_cycles += (
                misses * params.sector_cycles
                + hits * params.l1_sector_cycles
                + transactions * params.lsu_transaction_cycles
            )
        elif space == "shared":
            passes = 0
            if lockstep:
                isz = buf0.itemsize
                base = buf0.base
                banks = params.shared_banks
                wb = params.shared_word_bytes
                run = (
                    self._consec_run(evs)
                    if npos == 1 and isz % wb == 0
                    else None
                )
                if run is not None:
                    # Unit-stride run with word-multiple elements: the word
                    # sequence is an arithmetic progression of stride
                    # ``isz // wb``, so the conflict degree is the maximum
                    # round-robin occupancy over the ``banks // gcd`` banks
                    # it cycles through.
                    stride = isz // wb
                    period = banks // math.gcd(stride, banks)
                    passes = -(-n // period)
                elif npos == 1 and n < 48:
                    per_bank: Dict[int, set] = {}
                    for ev in evs:
                        word = (base + int(ev.idxs[0]) * isz) // wb
                        bank = word % banks
                        s = per_bank.get(bank)
                        if s is None:
                            per_bank[bank] = {word}
                        else:
                            s.add(word)
                    passes = max(len(words) for words in per_bank.values())
                else:
                    mat = np.asarray([ev.idxs for ev in evs])
                    if mat.dtype != np.int64:
                        mat = mat.astype(np.int64)
                    words = (base + mat * isz) // wb
                    for k in range(npos):
                        w = np.unique(words[:, k])
                        passes += int(np.bincount(w % banks).max())
            else:
                for k in range(positions):
                    addrs = [
                        ev.buf.byte_address(ev.idxs[k])
                        for ev in evs
                        if k < len(ev.idxs)
                    ]
                    passes += shared_conflict_degree(
                        addrs, params.shared_banks, params.shared_word_bytes
                    )
            c.shared_passes += passes
            c.mem_cycles += passes * params.shared_pass_cycles
        else:  # local
            c.local_accesses += nelem
            c.mem_cycles += nelem * params.local_access_cycles

    # ------------------------------------------------------------------
    # NOTE: the old round-local ``_check_races`` lived here.  It compared
    # only accesses posted in the *same* scheduling round, so conflicting
    # accesses in different rounds with no intervening barrier were never
    # compared — a provable false negative.  It is subsumed by the
    # happens-before detector in :mod:`repro.sanitizer.races`, attached via
    # ``detect_races=True`` / ``sanitize=`` on the launch.

    # ------------------------------------------------------------------
    def _release_barriers(self) -> int:
        params = self.params
        c = self.counters
        mon = self.monitor
        rnd = c.rounds
        released = 0

        # Block-level barriers, grouped by (bar_id, count).  A classic
        # barrier (count None) needs every live lane at the same key; a
        # named counted barrier releases as soon as `count` lanes arrive.
        live = [l for l in self.lanes if l.state != DONE]
        by_bar: Dict[tuple, List[Lane]] = {}
        for lane in live:
            if lane.state == WAIT_BLOCK:
                by_bar.setdefault(lane.wait_key, []).append(lane)
        for key, waiters in by_bar.items():
            _, count = key
            if count is None:
                ready = len(waiters) == len(live)
            else:
                ready = len(waiters) >= count
            if ready:
                for lane in waiters:
                    lane.state = RUN
                    lane.pending = None
                    lane.wait_key = None
                c.syncblocks += 1
                c.sync_cycles += params.syncthreads_cycles
                released += len(waiters)
                if mon is not None:
                    mon.on_release(
                        self, rnd, "block", key, [l.tid for l in waiters]
                    )
        if released:
            return released

        for warp_lanes in self._warps:
            # Warp-level named barriers, grouped by mask.
            by_mask: Dict[int, List[Lane]] = {}
            shfl_groups: Dict[tuple, List[Lane]] = {}
            for lane in warp_lanes:
                if lane.state == WAIT_WARP:
                    by_mask.setdefault(lane.wait_key, []).append(lane)
                elif lane.state == WAIT_SHFL:
                    shfl_groups.setdefault(lane.wait_key, []).append(lane)

            for mask, waiters in by_mask.items():
                if self._mask_converged(warp_lanes, mask, waiters, WAIT_WARP, mask):
                    for lane in waiters:
                        lane.state = RUN
                        lane.pending = None
                        lane.wait_key = None
                    c.syncwarps += 1
                    c.sync_cycles += params.syncwarp_cycles
                    released += len(waiters)
                    if mon is not None:
                        mon.on_release(
                            self, rnd, "warp", mask, [l.tid for l in waiters]
                        )

            for key, waiters in shfl_groups.items():
                mask = key[0]
                if self._mask_converged(warp_lanes, mask, waiters, WAIT_SHFL, key):
                    self._resolve_shfl_group(key, waiters)
                    released += len(waiters)
                    if mon is not None:
                        mon.on_release(
                            self, rnd, "shfl", key, [l.tid for l in waiters]
                        )
        return released

    @staticmethod
    def _resolve_shfl_group(key: tuple, waiters) -> None:
        """Resolve a converged shuffle or vote group and wake its lanes.

        Shared by both engines so data-movement results are identical by
        construction.  ``key`` is ``(mask, mode)`` for shuffles and
        ``(mask, ("vote", mode))`` for votes.  The mask-relative lane
        arithmetic matches :func:`repro.gpu.shuffle.resolve_shuffles`
        positionally on the ascending participant order.
        """
        mode = key[1]
        # Arrivals append in step order, which is ascending lane order when
        # the group converged in one round — the overwhelmingly common case.
        # Only fall back to a keyed sort when a multi-round (divergent)
        # arrival actually scrambled the order.
        ws = waiters
        prev = -1
        for l in ws:
            lid = l.lane_id
            if lid < prev:
                ws = sorted(waiters, key=_BY_LANE_ID)
                break
            prev = lid
        if isinstance(mode, tuple):  # ("vote", any|all|ballot)
            vote_mode = mode[1]
            if vote_mode == "any":
                result = False
                for l in ws:
                    if l.posted.predicate:
                        result = True
                        break
            elif vote_mode == "all":
                result = True
                for l in ws:
                    if not l.posted.predicate:
                        result = False
                        break
            else:  # ballot
                result = 0
                for l in ws:
                    if l.posted.predicate:
                        result |= 1 << l.lane_id
            for lane in ws:
                lane.state = RUN
                lane.pending = result
                lane.wait_key = None
                lane.posted = None
            return
        n = len(ws)
        vals = [l.posted.value for l in ws]
        # SIMD reductions issue the same lane_arg from every lane; when the
        # group is uniform that way, the positional formulas collapse to
        # slice concatenations (identical results to the per-lane formulas).
        d0 = ws[0].posted.lane_arg
        uniform = True
        for l in ws:
            if l.posted.lane_arg != d0:
                uniform = False
                break
        if uniform and mode == "down" and 0 <= d0:
            out = vals if d0 == 0 or d0 >= n else vals[d0:] + vals[n - d0:]
        elif uniform and mode == "up" and 0 <= d0:
            out = vals if d0 == 0 or d0 >= n else vals[:d0] + vals[: n - d0]
        elif uniform and mode == "idx":
            out = [vals[d0]] * n if 0 <= d0 < n else vals
        elif mode == "idx":
            out = [
                vals[src] if 0 <= (src := l.posted.lane_arg) < n else vals[i]
                for i, l in enumerate(ws)
            ]
        elif mode == "up":
            out = [
                vals[src] if 0 <= (src := i - l.posted.lane_arg) < n else vals[i]
                for i, l in enumerate(ws)
            ]
        elif mode == "down":
            out = [
                vals[src] if 0 <= (src := i + l.posted.lane_arg) < n else vals[i]
                for i, l in enumerate(ws)
            ]
        elif mode == "xor":
            out = [
                vals[src] if 0 <= (src := i ^ l.posted.lane_arg) < n else vals[i]
                for i, l in enumerate(ws)
            ]
        else:
            raise SynchronizationError(f"unknown shuffle mode {mode!r}")
        for lane, v in zip(ws, out):
            lane.state = RUN
            lane.pending = v
            lane.wait_key = None
            lane.posted = None

    @staticmethod
    def _mask_converged(warp_lanes, mask: int, waiters, state: int, key) -> bool:
        """True when every lane named by ``mask`` waits with ``key``.

        A retired lane named by the mask can never arrive: the group stays
        blocked and the no-progress check reports a deadlock, mirroring the
        undefined behaviour a real ``__syncwarp`` with an exited lane would
        invite.
        """
        waiting_ids = {l.lane_id for l in waiters}
        for lane in warp_lanes:
            if not (mask >> lane.lane_id) & 1:
                continue
            if lane.state != state or lane.wait_key != key:
                return False
            if lane.lane_id not in waiting_ids:
                return False
        return bool(waiting_ids)

    # ------------------------------------------------------------------
    def _deadlock_report(self) -> str:
        lines = [
            f"deadlock in block {self.block_id}: no lane can make progress",
        ]
        for lane in self.lanes:
            if lane.state != DONE:
                detail = lane.describe()
                if lane.state in (WAIT_WARP, WAIT_SHFL):
                    detail += f" key={lane.wait_key!r}"
                lines.append("  " + detail)
        lines.append(
            "hint: a barrier mask probably names a lane that retired or "
            "diverged to a different barrier"
        )
        return "\n".join(lines)
