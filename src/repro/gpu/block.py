"""Thread-block scheduler: cooperative lockstep execution of all lanes.

A :class:`ThreadBlock` owns one generator per thread and advances them in
*rounds*: every runnable lane steps by exactly one event per round.  The
round structure is what makes the simulation SIMT-faithful:

* lanes of a warp that post the same event signature in a round form one
  *issue group* (one warp instruction); divergent lanes issue separately;
* memory events that issue together are coalesced together;
* warp/block barriers block lanes until every *live* participant arrives —
  retired threads are excluded, matching CUDA's ``__syncthreads`` treatment
  of exited threads;
* if a round advances no lane and releases no barrier, the block is
  deadlocked and a :class:`~repro.errors.DeadlockError` with a per-lane
  diagnostic is raised (this is how the test suite's failure-injection
  cases observe protocol bugs).

Side effects within a round apply in deterministic (warp, lane) order, so
every simulation — including atomics — is reproducible.  An optional
``schedule_policy`` (see :mod:`repro.sanitizer.schedule`) re-permutes the
warp resolution order and per-warp commit order per round — still
deterministic given the policy's seed, which is how the sanitizer's
schedule explorer surfaces order-dependent results.

An optional ``monitor`` (see :mod:`repro.sanitizer.monitor`) observes
events, retirements, barrier releases, and deadlocks; the happens-before
race detector, barrier analyzer, and sharing auditor all attach through
it.  Both hooks are strictly zero-cost when absent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DeadlockError, LaunchError, SimulationError
from repro.gpu.atomics import apply_atomic, apply_atomic_resilient
from repro.gpu.coalescing import shared_conflict_degree
from repro.gpu.costmodel import CostParams
from repro.gpu.counters import BlockCounters
from repro.gpu.events import (
    T_ATOMIC,
    T_COMPUTE,
    T_LOAD,
    T_SHUFFLE,
    T_STORE,
    T_SYNCBLOCK,
    T_SYNCWARP,
    T_VOTE,
)
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.gpu.shuffle import resolve_shuffles
from repro.gpu.thread import (
    DONE,
    RUN,
    WAIT_BLOCK,
    WAIT_SHFL,
    WAIT_WARP,
    Lane,
    ThreadCtx,
)

#: Hard cap on scheduling rounds; hitting it means a runaway kernel.
DEFAULT_MAX_ROUNDS = 5_000_000


def _signature(ev) -> tuple:
    """Issue-group signature: events sharing it issue as one instruction."""
    t = ev.tag
    if t == T_COMPUTE:
        return (t, ev.kind)
    if t == T_LOAD or t == T_STORE:
        return (t, ev.buf.space)
    if t == T_ATOMIC:
        return (t, ev.op)
    if t == T_SYNCWARP:
        return (t, ev.mask)
    if t == T_SHUFFLE:
        return (t, ev.mode, ev.mask)
    if t == T_VOTE:
        return (t, ev.mode, ev.mask)
    return (t,)


class ThreadBlock:
    """One simulated thread block (an OpenMP team's hardware vehicle)."""

    def __init__(
        self,
        block_id: int,
        num_threads: int,
        params: CostParams,
        gmem: GlobalMemory,
        entry,
        args: Sequence = (),
        num_blocks: int = 1,
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        tracer=None,
        detect_races: bool = False,
        monitor=None,
        schedule_policy=None,
        recorder=None,
        faults=None,
    ) -> None:
        if num_threads < 1:
            raise LaunchError("block must have at least one thread")
        self.block_id = block_id
        self.num_threads = num_threads
        self.params = params
        self.gmem = gmem
        self.shared = SharedMemory(params.shared_mem_per_block)
        self.counters = BlockCounters()
        self.max_rounds = max_rounds
        #: Optional event hook ``tracer(block_id, round, tid, event)`` —
        #: zero-cost when None; used for debugging and protocol tests.
        self.tracer = tracer
        #: When True, unsynchronized same-address conflicts raise
        #: :class:`~repro.errors.DataRaceError` (debugging mode).  This is
        #: now a shorthand for attaching the sanitizer's happens-before
        #: race detector in raise mode, which subsumes — and fixes a
        #: false negative of — the old round-local check (conflicts in
        #: *different* rounds with no intervening barrier were never
        #: compared).
        self.detect_races = detect_races
        if detect_races and monitor is None:
            from repro.sanitizer.monitor import SanitizerConfig, SanitizerMonitor

            monitor = SanitizerMonitor(
                SanitizerConfig(barriers=False, sharing=False, mode="raise")
            )
        #: Optional sanitizer monitor (event/release/deadlock hooks).
        self.monitor = monitor
        #: Optional schedule policy permuting warp/commit order per round.
        self.schedule_policy = schedule_policy
        #: Optional global-memory write recorder
        #: (:class:`repro.exec.record.GlobalWriteRecorder`) — the parallel
        #: launch engine's undo/merge hook; zero-cost when None.
        self.recorder = recorder
        #: Optional fault plan (:class:`repro.faults.FaultPlan`) consulted
        #: at the transient-atomic and forced-overflow hook sites;
        #: zero-cost when None.
        self.faults = faults
        # Per-block L1 sector cache (LRU).  Dict preserves insertion order;
        # re-inserting on hit implements LRU cheaply.
        self._l1: dict = {}
        self._l1_cap = max(1, params.l1_size_bytes // params.sector_bytes)
        self._round_mem_stall = False
        ws = params.warp_size
        self.num_warps = -(-num_threads // ws)
        self.lanes: List[Lane] = []
        self.ctxs: List[ThreadCtx] = []
        for tid in range(num_threads):
            tc = ThreadCtx(
                tid=tid,
                warp_size=ws,
                block_id=block_id,
                num_blocks=num_blocks,
                block_dim=num_threads,
                block=self,
            )
            gen = entry(tc, *args)
            if not hasattr(gen, "send"):
                raise LaunchError(
                    "kernel entry must be a generator function "
                    f"(got {type(gen).__name__} from {entry!r})"
                )
            self.ctxs.append(tc)
            self.lanes.append(Lane(tid, tc.warp_id, tc.lane_id, gen))
        self._warps: List[List[Lane]] = [
            self.lanes[w * ws : (w + 1) * ws] for w in range(self.num_warps)
        ]

    # ------------------------------------------------------------------
    def run(self) -> BlockCounters:
        """Execute the block to completion; returns its counters."""
        lanes = self.lanes
        c = self.counters
        mon = self.monitor
        if mon is not None:
            mon.on_block_start(self)
        while True:
            posted_by_warp: List[List[Tuple[Lane, object]]] = [
                [] for _ in range(self.num_warps)
            ]
            advanced = 0
            live = 0
            for lane in lanes:
                state = lane.state
                if state == DONE:
                    continue
                live += 1
                if state != RUN:
                    continue
                try:
                    ev = lane.gen.send(lane.pending)
                except StopIteration:
                    lane.state = DONE
                    live -= 1
                    if mon is not None:
                        mon.on_retire(self, c.rounds, lane)
                    continue
                lane.pending = None
                posted_by_warp[lane.warp_id].append((lane, ev))
                advanced += 1
                if self.tracer is not None:
                    self.tracer(self.block_id, c.rounds, lane.tid, ev)
                if mon is not None:
                    mon.on_event(self, c.rounds, lane, ev)
            if live == 0:
                break
            self._resolve_round(posted_by_warp)
            released = self._release_barriers()
            if advanced == 0 and released == 0:
                msg = self._deadlock_report()
                if mon is not None:
                    analysis = mon.on_deadlock(self, c.rounds)
                    if analysis:
                        msg += "\n" + analysis
                raise DeadlockError(
                    msg,
                    block_id=self.block_id,
                    round=c.rounds,
                    lanes=[
                        (l.tid, l.warp_id, l.lane_id, l.state, l.wait_key)
                        for l in lanes
                        if l.state != DONE
                    ],
                )
            c.rounds += 1
            if c.rounds > self.max_rounds:
                raise SimulationError(
                    f"block {self.block_id} exceeded {self.max_rounds} rounds; "
                    "likely a runaway loop"
                )
        if mon is not None:
            mon.on_block_end(self)
        return c

    # ------------------------------------------------------------------
    def _resolve_round(self, posted_by_warp) -> None:
        params = self.params
        c = self.counters
        atomic_addrs: Dict[Tuple[int, int], int] = {}
        self._round_mem_stall = False

        # Resolution order: ascending warp id, lane order within a warp —
        # unless a schedule policy permutes either (every permutation is a
        # legal interleaving of the round's concurrent accesses; the
        # sanitizer's schedule explorer uses this to expose order
        # dependence).  Cost accounting below is order-independent.
        policy = self.schedule_policy
        warp_ids = range(self.num_warps)
        if policy is not None:
            warp_ids = policy.warp_order(self.block_id, c.rounds, self.num_warps)

        for wid in warp_ids:
            warp_posts = posted_by_warp[wid]
            if not warp_posts:
                continue
            commits = warp_posts
            if policy is not None:
                perm = policy.commit_order(
                    self.block_id, c.rounds, wid, len(warp_posts)
                )
                commits = [warp_posts[i] for i in perm]
            # Pass 1: side effects in (permuted) commit order.
            for lane, ev in commits:
                tag = ev.tag
                if tag == T_LOAD:
                    lane.pending = tuple(ev.buf.read(i) for i in ev.idxs)
                    rec = self.recorder
                    if (
                        rec is not None
                        and rec.track_reads
                        and ev.buf.space == "global"
                        and rec.tracks(ev.buf)
                    ):
                        rec.on_load(ev.buf, ev.idxs)
                elif tag == T_STORE:
                    if len(ev.idxs) != len(ev.values):
                        raise SimulationError(
                            f"store index/value arity mismatch on {ev.buf.name!r}"
                        )
                    rec = self.recorder
                    if (
                        rec is not None
                        and ev.buf.space == "global"
                        and rec.tracks(ev.buf)
                    ):
                        for i, v in zip(ev.idxs, ev.values):
                            rec.on_store(ev.buf, i, v)
                            ev.buf.write(i, v)
                    else:
                        for i, v in zip(ev.idxs, ev.values):
                            ev.buf.write(i, v)
                elif tag == T_ATOMIC:
                    if ev.buf.space == "global":
                        self._round_mem_stall = True
                    if self.faults is None:
                        lane.pending = apply_atomic(
                            ev.buf, ev.idx, ev.op, ev.operand
                        )
                    else:
                        lane.pending = apply_atomic_resilient(
                            ev.buf, ev.idx, ev.op, ev.operand, self.faults,
                            self.block_id, c.rounds, lane.tid,
                        )
                    rec = self.recorder
                    if (
                        rec is not None
                        and ev.buf.space == "global"
                        and rec.tracks(ev.buf)
                    ):
                        rec.on_atomic(ev.buf, ev.idx, ev.op, ev.operand, lane.pending)
                    key = (id(ev.buf), int(ev.idx))
                    atomic_addrs[key] = atomic_addrs.get(key, 0) + 1
                elif tag == T_SYNCWARP:
                    lane.state = WAIT_WARP
                    lane.wait_key = ev.mask
                elif tag == T_SYNCBLOCK:
                    lane.state = WAIT_BLOCK
                    lane.wait_key = (
                        ev.bar_id,
                        None if ev.count is None else int(ev.count),
                    )
                elif tag == T_SHUFFLE:
                    lane.state = WAIT_SHFL
                    lane.wait_key = (ev.mask, ev.mode)
                    lane.posted = ev
                elif tag == T_VOTE:
                    lane.state = WAIT_SHFL
                    lane.wait_key = (ev.mask, ("vote", ev.mode))
                    lane.posted = ev
                # T_COMPUTE: no architectural side effect.

            # Pass 2: issue/memory cost accounting with grouping.
            groups: Dict[tuple, List[Tuple[Lane, object]]] = {}
            for item in warp_posts:
                groups.setdefault(_signature(item[1]), []).append(item)
            c.issues += len(groups)
            c.divergent_issues += len(groups) - 1
            for sig, items in groups.items():
                tag = sig[0]
                if tag == T_COMPUTE:
                    max_ops = max(ev.ops for _, ev in items)
                    c.issue_cycles += params.op_cycles(sig[1], max_ops)
                elif tag == T_LOAD or tag == T_STORE:
                    self._account_memory(tag, sig[1], items)
                elif tag == T_ATOMIC:
                    n = len(items)
                    c.atomics += n
                    c.issue_cycles += params.op_cost.get("st", 1.0)
                    c.mem_cycles += n * params.atomic_cycles
                elif tag == T_SHUFFLE or tag == T_VOTE:
                    c.issue_cycles += 1.0
                # Barrier arrival issue cost is folded into sync_cycles
                # charged at release.

        # Device-wide atomic contention within the round.
        extra = sum(n - 1 for n in atomic_addrs.values() if n > 1)
        if extra:
            c.atomic_conflicts += extra
            c.mem_cycles += extra * params.atomic_conflict_cycles
        # Dependent-latency exposure: L1-missing loads/atomics issued this
        # round stall their warps; concurrent warps' accesses overlap into
        # one exposure.
        if self._round_mem_stall:
            c.mem_serial_rounds += 1

    def _account_memory(self, tag: int, space: str, items) -> None:
        params = self.params
        c = self.counters
        positions = max(len(ev.idxs) for _, ev in items)
        nelem = sum(len(ev.idxs) for _, ev in items)
        if tag == T_LOAD:
            c.loads += nelem
            c.issue_cycles += params.op_cost.get("ld", 1.0) * positions
        else:
            c.stores += nelem
            c.issue_cycles += params.op_cost.get("st", 1.0) * positions
        if space == "global":
            # Distinct sectors across the whole unrolled run, then filtered
            # through the per-block L1 sector cache: hits ride the cheap L1
            # pipe and expose no DRAM latency, misses pay full bandwidth and
            # flag the round as a dependent-latency stall.
            sb = params.sector_bytes
            sectors = set()
            transactions = 0
            for k in range(positions):
                pos_sectors = set()
                for _, ev in items:
                    idxs = ev.idxs
                    if k < len(idxs):
                        buf = ev.buf
                        a = buf.byte_address(idxs[k])
                        pos_sectors.add(a // sb)
                        pos_sectors.add((a + buf.itemsize - 1) // sb)
                transactions += len(pos_sectors)
                sectors |= pos_sectors
            l1 = self._l1
            hits = misses = 0
            for sec in sectors:
                if sec in l1:
                    hits += 1
                    # LRU touch: move to the back.
                    del l1[sec]
                    l1[sec] = None
                else:
                    misses += 1
                    l1[sec] = None
            if len(l1) > self._l1_cap:
                for old in list(l1)[: len(l1) - self._l1_cap]:
                    del l1[old]
            c.l1_hits += hits
            c.l1_misses += misses
            if tag == T_LOAD:
                c.global_load_sectors += misses
                if misses:
                    self._round_mem_stall = True
            else:
                c.global_store_sectors += misses
            c.lsu_transactions += transactions
            c.mem_cycles += (
                misses * params.sector_cycles
                + hits * params.l1_sector_cycles
                + transactions * params.lsu_transaction_cycles
            )
        elif space == "shared":
            passes = 0
            for k in range(positions):
                addrs = [
                    ev.buf.byte_address(ev.idxs[k])
                    for _, ev in items
                    if k < len(ev.idxs)
                ]
                passes += shared_conflict_degree(
                    addrs, params.shared_banks, params.shared_word_bytes
                )
            c.shared_passes += passes
            c.mem_cycles += passes * params.shared_pass_cycles
        else:  # local
            c.local_accesses += nelem
            c.mem_cycles += nelem * params.local_access_cycles

    # ------------------------------------------------------------------
    # NOTE: the old round-local ``_check_races`` lived here.  It compared
    # only accesses posted in the *same* scheduling round, so conflicting
    # accesses in different rounds with no intervening barrier were never
    # compared — a provable false negative.  It is subsumed by the
    # happens-before detector in :mod:`repro.sanitizer.races`, attached via
    # ``detect_races=True`` / ``sanitize=`` on the launch.

    # ------------------------------------------------------------------
    def _release_barriers(self) -> int:
        params = self.params
        c = self.counters
        mon = self.monitor
        rnd = c.rounds
        released = 0

        # Block-level barriers, grouped by (bar_id, count).  A classic
        # barrier (count None) needs every live lane at the same key; a
        # named counted barrier releases as soon as `count` lanes arrive.
        live = [l for l in self.lanes if l.state != DONE]
        by_bar: Dict[tuple, List[Lane]] = {}
        for lane in live:
            if lane.state == WAIT_BLOCK:
                by_bar.setdefault(lane.wait_key, []).append(lane)
        for key, waiters in by_bar.items():
            _, count = key
            if count is None:
                ready = len(waiters) == len(live)
            else:
                ready = len(waiters) >= count
            if ready:
                for lane in waiters:
                    lane.state = RUN
                    lane.pending = None
                    lane.wait_key = None
                c.syncblocks += 1
                c.sync_cycles += params.syncthreads_cycles
                released += len(waiters)
                if mon is not None:
                    mon.on_release(
                        self, rnd, "block", key, [l.tid for l in waiters]
                    )
        if released:
            return released

        for warp_lanes in self._warps:
            # Warp-level named barriers, grouped by mask.
            by_mask: Dict[int, List[Lane]] = {}
            shfl_groups: Dict[tuple, List[Lane]] = {}
            for lane in warp_lanes:
                if lane.state == WAIT_WARP:
                    by_mask.setdefault(lane.wait_key, []).append(lane)
                elif lane.state == WAIT_SHFL:
                    shfl_groups.setdefault(lane.wait_key, []).append(lane)

            for mask, waiters in by_mask.items():
                if self._mask_converged(warp_lanes, mask, waiters, WAIT_WARP, mask):
                    for lane in waiters:
                        lane.state = RUN
                        lane.pending = None
                        lane.wait_key = None
                    c.syncwarps += 1
                    c.sync_cycles += params.syncwarp_cycles
                    released += len(waiters)
                    if mon is not None:
                        mon.on_release(
                            self, rnd, "warp", mask, [l.tid for l in waiters]
                        )

            for key, waiters in shfl_groups.items():
                mask, mode = key
                if self._mask_converged(warp_lanes, mask, waiters, WAIT_SHFL, key):
                    lane_ids = sorted(l.lane_id for l in waiters)
                    if isinstance(mode, tuple):  # ("vote", any|all|ballot)
                        vote_mode = mode[1]
                        preds = {l.lane_id: bool(l.posted.predicate) for l in waiters}
                        if vote_mode == "any":
                            result = any(preds.values())
                        elif vote_mode == "all":
                            result = all(preds.values())
                        else:  # ballot
                            result = 0
                            for lid, p in preds.items():
                                if p:
                                    result |= 1 << lid
                        results = {lid: result for lid in lane_ids}
                    else:
                        values = {l.lane_id: l.posted.value for l in waiters}
                        lane_args = {l.lane_id: l.posted.lane_arg for l in waiters}
                        results = resolve_shuffles(mode, lane_ids, values, lane_args)
                    for lane in waiters:
                        lane.state = RUN
                        lane.pending = results[lane.lane_id]
                        lane.wait_key = None
                        lane.posted = None
                    released += len(waiters)
                    if mon is not None:
                        mon.on_release(
                            self, rnd, "shfl", key, [l.tid for l in waiters]
                        )
        return released

    @staticmethod
    def _mask_converged(warp_lanes, mask: int, waiters, state: int, key) -> bool:
        """True when every lane named by ``mask`` waits with ``key``.

        A retired lane named by the mask can never arrive: the group stays
        blocked and the no-progress check reports a deadlock, mirroring the
        undefined behaviour a real ``__syncwarp`` with an exited lane would
        invite.
        """
        waiting_ids = {l.lane_id for l in waiters}
        for lane in warp_lanes:
            if not (mask >> lane.lane_id) & 1:
                continue
            if lane.state != state or lane.wait_key != key:
                return False
            if lane.lane_id not in waiting_ids:
                return False
        return bool(waiting_ids)

    # ------------------------------------------------------------------
    def _deadlock_report(self) -> str:
        lines = [
            f"deadlock in block {self.block_id}: no lane can make progress",
        ]
        for lane in self.lanes:
            if lane.state != DONE:
                detail = lane.describe()
                if lane.state in (WAIT_WARP, WAIT_SHFL):
                    detail += f" key={lane.wait_key!r}"
                lines.append("  " + detail)
        lines.append(
            "hint: a barrier mask probably names a lane that retired or "
            "diverged to a different barrier"
        )
        return "\n".join(lines)
