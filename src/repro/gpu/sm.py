"""Streaming-multiprocessor composition: occupancy and wave timing.

Blocks execute functionally one at a time (a legal interleaving — blocks
cannot synchronize with each other), then this module composes their
per-block counters into a kernel cycle estimate:

* :func:`blocks_per_sm` applies the three occupancy limiters (blocks, warps,
  shared memory).  The teams-generic *extra warp* (paper Fig 2) and the
  doubled variable-sharing space (§5.3.1) reduce occupancy through exactly
  these limits.
* :func:`wave_cycles` overlaps the blocks resident together in one wave:
  issue throughput and memory throughput are shared pipes, the critical
  path (``rounds × round_latency``) is per-block, and barrier costs do not
  overlap.
* :func:`compose_kernel_cycles` assigns blocks to SMs round-robin, sums
  each SM's waves, and takes the slowest SM.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import LaunchError
from repro.gpu.costmodel import CostParams
from repro.gpu.counters import BlockCounters


def blocks_per_sm(
    params: CostParams,
    threads_per_block: int,
    shared_bytes_per_block: int,
    regs_per_thread: int = 32,
) -> int:
    """Resident blocks per SM under the four occupancy limiters.

    Limits: max blocks, max warps, shared memory, and register file.  The
    register limiter is what makes register-hungry serial inner loops (the
    SU3 baseline caching whole matrices per thread) pay reduced occupancy.
    """
    if threads_per_block < 1:
        raise LaunchError("threads_per_block must be >= 1")
    warps = -(-threads_per_block // params.warp_size)
    by_blocks = params.max_blocks_per_sm
    by_warps = max(1, params.max_warps_per_sm // warps) if warps else by_blocks
    if shared_bytes_per_block > 0:
        by_shared = params.shared_mem_per_sm // shared_bytes_per_block
        if by_shared == 0:
            raise LaunchError(
                f"block needs {shared_bytes_per_block} B shared memory; SM has "
                f"{params.shared_mem_per_sm} B"
            )
    else:
        by_shared = by_blocks
    regs_per_block = max(1, regs_per_thread) * threads_per_block
    by_regs = max(1, params.regfile_per_sm // regs_per_block)
    return max(1, min(by_blocks, by_warps, by_shared, by_regs))


def wave_cycles(params: CostParams, wave: Sequence[BlockCounters]) -> float:
    """Cycles for one wave of blocks resident together on an SM."""
    if not wave:
        return 0.0
    critical = max(
        b.rounds * params.round_latency
        + b.mem_serial_rounds * params.mem_latency_cycles
        for b in wave
    )
    issue = sum(b.issue_cycles for b in wave) / params.issue_width
    mem = sum(b.mem_cycles for b in wave)
    sync = sum(b.sync_cycles for b in wave)
    return max(critical, issue, mem) + sync


def sm_cycles(
    params: CostParams, blocks: Sequence[BlockCounters], resident: int
) -> float:
    """Total cycles for one SM running ``blocks`` in waves of ``resident``."""
    total = 0.0
    for start in range(0, len(blocks), resident):
        total += wave_cycles(params, blocks[start : start + resident])
    return total


def compose_kernel_cycles(
    params: CostParams,
    blocks: Sequence[BlockCounters],
    threads_per_block: int,
    shared_bytes_per_block: int,
    regs_per_thread: int = 32,
) -> tuple[float, int, int]:
    """Return ``(kernel_cycles, resident_blocks_per_sm, waves)``.

    Blocks are assigned to SMs round-robin (the hardware scheduler is
    greedy, but with uniform blocks the two are equivalent); kernel time is
    the slowest SM.
    """
    resident = blocks_per_sm(
        params, threads_per_block, shared_bytes_per_block, regs_per_thread
    )
    per_sm: List[List[BlockCounters]] = [[] for _ in range(params.num_sms)]
    for i, b in enumerate(blocks):
        per_sm[i % params.num_sms].append(b)
    cycles = max(sm_cycles(params, sm, resident) for sm in per_sm)
    busiest = max(len(sm) for sm in per_sm)
    waves = -(-busiest // resident) if busiest else 0
    return cycles, resident, waves
