"""Performance counters collected during simulation.

:class:`BlockCounters` is filled in by the block scheduler while a thread
block runs; :class:`KernelCounters` aggregates blocks and carries the final
cycle estimate computed by :mod:`repro.gpu.device`.  Counters are plain data
so tests and the benchmark harness can assert on them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class BlockCounters:
    """Raw event statistics for one thread block execution."""

    #: Scheduling rounds executed (critical path in warp-instructions).
    rounds: int = 0
    #: Rounds in which the block issued at least one global-memory event —
    #: dependent memory steps on the critical path, each paying
    #: ``mem_latency_cycles`` of exposure.
    mem_serial_rounds: int = 0
    #: Warp-level issue groups (one per distinct signature per warp round).
    issues: int = 0
    #: Extra issues caused by divergence (groups beyond the first per warp round).
    divergent_issues: int = 0
    #: Issue cycles (op-cost weighted).
    issue_cycles: float = 0.0
    #: Global memory sectors moved, split by direction.
    global_load_sectors: int = 0
    global_store_sectors: int = 0
    #: L1 sector cache hits/misses (sectors, not element accesses).
    l1_hits: int = 0
    l1_misses: int = 0
    #: LSU transactions: distinct sectors per warp access position (the
    #: per-instruction coalescing measure; paid even on L1 hits).
    lsu_transactions: int = 0
    #: Shared-memory conflict passes.
    shared_passes: int = 0
    #: Local (register/stack) element accesses.
    local_accesses: int = 0
    #: Memory-pipe cycles (sectors, shared passes, local accesses, atomics).
    mem_cycles: float = 0.0
    #: Atomic events and the extra serialization among same-address atomics.
    atomics: int = 0
    atomic_conflicts: int = 0
    #: Barrier releases.
    syncwarps: int = 0
    syncblocks: int = 0
    #: Synchronization cycles.
    sync_cycles: float = 0.0
    #: Total element loads/stores (for coalescing-efficiency ratios).
    loads: int = 0
    stores: int = 0
    #: Generator advances (events consumed); the interpreter-throughput
    #: denominator for the substrate benchmarks (lane-steps per second).
    lane_steps: int = 0

    @property
    def global_sectors(self) -> int:
        return self.global_load_sectors + self.global_store_sectors

    def as_dict(self) -> Dict[str, float]:
        """Every counter field by name (for differential comparison)."""
        return dict(vars(self))

    def coalescing_efficiency(self, element_bytes: int = 8, sector_bytes: int = 32) -> float:
        """Useful bytes moved divided by sector bytes moved (≤ 1.0)."""
        moved = self.global_sectors * sector_bytes
        if moved == 0:
            return 1.0
        useful = (self.loads + self.stores) * element_bytes
        return min(1.0, useful / moved)


@dataclass
class KernelCounters:
    """Aggregated statistics and the cycle estimate for one kernel launch."""

    blocks: List[BlockCounters] = field(default_factory=list)
    #: Final cycle estimate (set by the device after wave composition).
    cycles: float = 0.0
    #: Launch geometry, recorded for reports.
    num_blocks: int = 0
    threads_per_block: int = 0
    #: Occupancy data.
    blocks_per_sm: int = 0
    waves: int = 0
    #: Extra diagnostics various layers may attach (e.g. runtime counters).
    extra: Dict[str, float] = field(default_factory=dict)
    #: Sanitizer report for the launch (a
    #: :class:`repro.sanitizer.report.SanitizerReport`), attached by the
    #: device when the launch ran with ``sanitize=`` or under an active
    #: sanitizer session; None otherwise.
    sanitizer: object = None

    def total(self, attr: str) -> float:
        """Sum a :class:`BlockCounters` field over all blocks."""
        return sum(getattr(b, attr) for b in self.blocks)

    @property
    def rounds(self) -> int:
        return int(self.total("rounds"))

    @property
    def issues(self) -> int:
        return int(self.total("issues"))

    @property
    def issue_cycles(self) -> float:
        return self.total("issue_cycles")

    @property
    def mem_cycles(self) -> float:
        return self.total("mem_cycles")

    @property
    def sync_cycles(self) -> float:
        return self.total("sync_cycles")

    @property
    def global_sectors(self) -> int:
        return int(self.total("global_load_sectors") + self.total("global_store_sectors"))

    @property
    def atomics(self) -> int:
        return int(self.total("atomics"))

    @property
    def syncwarps(self) -> int:
        return int(self.total("syncwarps"))

    @property
    def syncblocks(self) -> int:
        return int(self.total("syncblocks"))

    def identical(self, other: "KernelCounters") -> bool:
        """Bit-exact equality of geometry, cycles, per-block counters, and
        extras — the differential serial≡parallel harness's oracle."""
        return (
            self.num_blocks == other.num_blocks
            and self.threads_per_block == other.threads_per_block
            and self.cycles == other.cycles
            and self.blocks_per_sm == other.blocks_per_sm
            and self.waves == other.waves
            and self.blocks == other.blocks
            and self.extra == other.extra
        )

    def summary(self) -> Dict[str, float]:
        """Flat dict of headline numbers for reports and EXPERIMENTS.md."""
        return {
            "cycles": self.cycles,
            "blocks": self.num_blocks,
            "threads_per_block": self.threads_per_block,
            "waves": self.waves,
            "rounds": self.rounds,
            "lane_steps": int(self.total("lane_steps")),
            "issues": self.issues,
            "issue_cycles": self.issue_cycles,
            "mem_cycles": self.mem_cycles,
            "sync_cycles": self.sync_cycles,
            "global_sectors": self.global_sectors,
            "atomics": self.atomics,
            "syncwarps": self.syncwarps,
            "syncblocks": self.syncblocks,
            **self.extra,
        }
