"""Per-thread execution context handed to device code.

Device code is written as generator functions taking a :class:`ThreadCtx`
(``tc``) first.  All architectural actions go through ``tc`` helpers, each of
which is itself a generator to be driven with ``yield from``::

    def saxpy_body(tc, i, a, x, y):
        xi = yield from tc.load(x, i)
        yi = yield from tc.load(y, i)
        yield from tc.compute("fma")
        yield from tc.store(y, i, a * xi + yi)

The helpers emit exactly one event each (see :mod:`repro.gpu.events`); the
block scheduler performs the side effect and sends back the result.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import SynchronizationError
from repro.gpu.events import (
    AtomicOp,
    Compute,
    Load,
    Shuffle,
    Store,
    SyncBlock,
    SyncWarp,
    Vote,
    intern_compute,
    intern_syncblock,
    intern_syncwarp,
    intern_vote,
)
from repro.gpu.memory import Buffer, local_buffer

# Lane scheduler states (shared with repro.gpu.block).
RUN = 0
WAIT_WARP = 1
WAIT_BLOCK = 2
WAIT_SHFL = 3
DONE = 4

STATE_NAMES = {
    RUN: "runnable",
    WAIT_WARP: "waiting@syncwarp",
    WAIT_BLOCK: "waiting@syncthreads",
    WAIT_SHFL: "waiting@shuffle",
    DONE: "retired",
}


def full_mask(warp_size: int) -> int:
    """Bitmask naming every lane of a warp."""
    return (1 << warp_size) - 1


class LaneTable:
    """Structure-of-arrays lane identity for one block geometry.

    The per-lane identity triple ``(tid, warp_id, lane_id)`` is a pure
    function of ``(num_threads, warp_size)``, yet block construction
    used to recompute it with per-lane Python modular arithmetic for
    every block of every launch — a visible cost for the serve tier's
    many small launches.  The table computes the columns once with
    NumPy, materializes them as plain-int rows for the scalar engines,
    and is memoized per geometry via :func:`lane_table`.

    The int32 columns are kept as arrays too, so vectorized consumers
    (the JIT tracer's affine lane vectors, diagnostics) can slice a
    warp's identity without boxing.
    """

    __slots__ = ("num_threads", "warp_size", "tid", "warp_id", "lane_id",
                 "rows")

    def __init__(self, num_threads: int, warp_size: int) -> None:
        import numpy as np

        self.num_threads = int(num_threads)
        self.warp_size = int(warp_size)
        tids = np.arange(self.num_threads, dtype=np.int32)
        self.tid = tids
        self.warp_id = tids // self.warp_size
        self.lane_id = tids - self.warp_id * self.warp_size
        #: ``(tid, warp_id, lane_id)`` Python-int rows in tid order.
        self.rows = list(zip(tids.tolist(), self.warp_id.tolist(),
                             self.lane_id.tolist()))


_LANE_TABLES: dict = {}
_LANE_TABLE_CAP = 64


def lane_table(num_threads: int, warp_size: int) -> LaneTable:
    """Memoized :class:`LaneTable` for a geometry (bounded cache)."""
    key = (num_threads, warp_size)
    table = _LANE_TABLES.get(key)
    if table is None:
        if len(_LANE_TABLES) >= _LANE_TABLE_CAP:
            _LANE_TABLES.pop(next(iter(_LANE_TABLES)))
        table = _LANE_TABLES[key] = LaneTable(num_threads, warp_size)
    return table


class ThreadCtx:
    """Identity and device-action helpers for one simulated GPU thread.

    Attributes
    ----------
    tid:
        Thread id within the block (0-based).
    lane_id:
        Lane id within the warp (``tid % warp_size``).
    warp_id:
        Warp id within the block (``tid // warp_size``).
    block_id:
        Block index within the grid (the OpenMP team number).
    num_blocks:
        Grid size in blocks.
    block_dim:
        Threads per block for this launch.
    warp_size:
        SIMT width of the device profile.
    block:
        The owning :class:`repro.gpu.block.ThreadBlock` (gives access to
        shared memory and, through it, the device).
    """

    __slots__ = (
        "tid",
        "lane_id",
        "warp_id",
        "block_id",
        "num_blocks",
        "block_dim",
        "warp_size",
        "block",
        "rt",
    )

    def __init__(
        self,
        tid: int,
        warp_size: int,
        block_id: int,
        num_blocks: int,
        block_dim: int,
        block,
        lane_id: Optional[int] = None,
        warp_id: Optional[int] = None,
    ) -> None:
        self.tid = tid
        if lane_id is None:
            # Standalone construction; block builders pass the memoized
            # LaneTable columns instead of re-deriving per lane.
            lane_id = tid % warp_size
            warp_id = tid // warp_size
        self.lane_id = lane_id
        self.warp_id = warp_id
        self.block_id = block_id
        self.num_blocks = num_blocks
        self.block_dim = block_dim
        self.warp_size = warp_size
        self.block = block
        #: Slot the OpenMP runtime uses to attach its per-team context.
        self.rt = None

    # -- identity helpers --------------------------------------------------
    @property
    def global_tid(self) -> int:
        """Thread id across the whole grid."""
        return self.block_id * self.block_dim + self.tid

    def warp_mask(self) -> int:
        """Mask naming every lane of this thread's warp."""
        return full_mask(self.warp_size)

    # -- memory ------------------------------------------------------------
    def load(self, buf: Buffer, idx: int):
        """Read one element; returns its value."""
        res = yield Load(buf, (idx,))
        return res[0]

    def load_vec(self, buf: Buffer, idxs: Sequence[int]):
        """Read several elements with one unrolled access run."""
        res = yield Load(buf, tuple(idxs))
        return list(res)

    def store(self, buf: Buffer, idx: int, value):
        """Write one element."""
        yield Store(buf, (idx,), (value,))

    def store_vec(self, buf: Buffer, idxs: Sequence[int], values: Sequence):
        """Write several elements with one unrolled access run."""
        yield Store(buf, tuple(idxs), tuple(values))

    # -- arithmetic accounting ----------------------------------------------
    def compute(self, kind: str = "alu", ops: int = 1):
        """Charge ``ops`` arithmetic operations of class ``kind``.

        Compute events carry no lane-private payload, so the hot
        ``(kind, ops)`` combinations are interned singletons — every lane
        of every round yields the same frozen object.
        """
        yield intern_compute(kind, ops)

    # -- atomics -------------------------------------------------------------
    def atomic_add(self, buf: Buffer, idx: int, value):
        """Atomic add; returns the old value."""
        old = yield AtomicOp(buf, idx, "add", value)
        return old

    def atomic_max(self, buf: Buffer, idx: int, value):
        old = yield AtomicOp(buf, idx, "max", value)
        return old

    def atomic_min(self, buf: Buffer, idx: int, value):
        old = yield AtomicOp(buf, idx, "min", value)
        return old

    def atomic_exch(self, buf: Buffer, idx: int, value):
        old = yield AtomicOp(buf, idx, "exch", value)
        return old

    def atomic_cas(self, buf: Buffer, idx: int, compare, value):
        old = yield AtomicOp(buf, idx, "cas", (compare, value))
        return old

    # -- synchronization -----------------------------------------------------
    def syncwarp(self, mask: Optional[int] = None):
        """Warp-level named barrier (CUDA ``__syncwarp(mask)``).

        The calling lane must be named by ``mask`` (defaults to the full
        warp).  All live lanes in the mask must reach a matching syncwarp.
        """
        if mask is None:
            mask = full_mask(self.warp_size)
        if not (mask >> self.lane_id) & 1:
            raise SynchronizationError(
                f"lane {self.lane_id} called syncwarp with a mask {mask:#x} "
                "that does not include itself"
            )
        yield intern_syncwarp(mask)

    def syncthreads(self, bar_id: int = 0, count: Optional[int] = None):
        """Block-level barrier (CUDA ``__syncthreads`` / ``barrier.sync``).

        The default is the classic block-wide barrier.  A nonzero
        ``bar_id`` with an explicit ``count`` is a named barrier releasing
        once ``count`` lanes arrive — used by warp-specialized runtimes so
        worker threads can synchronize while the main thread waits
        elsewhere.
        """
        yield intern_syncblock(bar_id, count)

    # -- shuffles --------------------------------------------------------------
    def shfl(self, value, src: int, mask: Optional[int] = None):
        """Read ``value`` from the mask-relative source lane ``src``."""
        if mask is None:
            mask = full_mask(self.warp_size)
        res = yield Shuffle("idx", value, src, mask)
        return res

    def shfl_up(self, value, delta: int, mask: Optional[int] = None):
        if mask is None:
            mask = full_mask(self.warp_size)
        res = yield Shuffle("up", value, delta, mask)
        return res

    def shfl_down(self, value, delta: int, mask: Optional[int] = None):
        if mask is None:
            mask = full_mask(self.warp_size)
        res = yield Shuffle("down", value, delta, mask)
        return res

    def shfl_xor(self, value, delta: int, mask: Optional[int] = None):
        if mask is None:
            mask = full_mask(self.warp_size)
        res = yield Shuffle("xor", value, delta, mask)
        return res

    # -- warp votes --------------------------------------------------------------
    def vote_any(self, predicate, mask: Optional[int] = None):
        """True iff any live lane in ``mask`` passes a true predicate."""
        if mask is None:
            mask = full_mask(self.warp_size)
        res = yield intern_vote("any", bool(predicate), mask)
        return res

    def vote_all(self, predicate, mask: Optional[int] = None):
        """True iff every live lane in ``mask`` passes a true predicate."""
        if mask is None:
            mask = full_mask(self.warp_size)
        res = yield intern_vote("all", bool(predicate), mask)
        return res

    def ballot(self, predicate, mask: Optional[int] = None):
        """Bitmask (absolute warp lane positions) of true predicates."""
        if mask is None:
            mask = full_mask(self.warp_size)
        res = yield intern_vote("ballot", bool(predicate), mask)
        return res

    # -- diagnostics ---------------------------------------------------------
    def device_assert(self, condition, message: str = "device assertion failed"):
        """Device-side assertion: raises with block/thread context.

        A generator for symmetry with the other helpers (it charges one
        branch op), so call it with ``yield from``.
        """
        from repro.errors import DeviceAssertionError

        yield intern_compute("branch", 1)
        if not condition:
            raise DeviceAssertionError(
                f"{message} (block {self.block_id}, thread {self.tid})"
            )

    # -- allocation ------------------------------------------------------------
    def alloca(self, name: str, size: int, dtype) -> Buffer:
        """Lane-private stack allocation (no event; modelled as registers)."""
        return local_buffer(f"{name}@t{self.tid}", size, dtype)

    def shared_alloc(self, name: str, size: int, dtype) -> Buffer:
        """Block-shared allocation from the scratchpad bump allocator.

        Only meaningful when executed by one representative thread (or with
        identical arguments by all threads *before* divergence); the OpenMP
        runtime performs its shared allocations from the team main thread.
        """
        return self.block.shared.alloc(name, size, dtype)


class Lane:
    """Scheduler bookkeeping for one thread: its generator and wait state."""

    __slots__ = ("tid", "warp_id", "lane_id", "gen", "send", "state", "pending", "wait_key", "posted")

    def __init__(self, tid: int, warp_id: int, lane_id: int, gen) -> None:
        self.tid = tid
        self.warp_id = warp_id
        self.lane_id = lane_id
        self.gen = gen
        #: Bound ``gen.send`` — saves an attribute hop in the hot round
        #: loop.  None for non-generator stand-ins (the scheduler validates
        #: real kernels before any Lane reaches an engine).
        self.send = getattr(gen, "send", None)
        self.state = RUN
        #: Value to ``send`` into the generator on the next advance.
        self.pending = None
        #: Barrier/shuffle key while waiting.
        self.wait_key = None
        #: The event posted this round (shuffles keep it until release).
        self.posted = None

    def describe(self) -> str:
        return f"t{self.tid} (warp {self.warp_id}, lane {self.lane_id}): {STATE_NAMES[self.state]}"
