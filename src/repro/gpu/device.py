"""The simulated device: memory ownership and kernel launch.

:class:`Device` is the substrate's top-level object.  It owns global memory,
carries a :class:`~repro.gpu.costmodel.CostParams` profile, and launches
kernels: it instantiates one :class:`~repro.gpu.block.ThreadBlock` per grid
block, runs them functionally in deterministic order, and composes the
per-block counters into a cycle estimate via :mod:`repro.gpu.sm`.

Typical use::

    dev = Device()                      # A100-like profile
    x = dev.from_array("x", np.arange(1024, dtype=np.float64))

    def kernel(tc, x):
        i = tc.global_tid
        if i < x.size:
            v = yield from tc.load(x, i)
            yield from tc.store(x, i, 2 * v)

    counters = dev.launch(kernel, num_blocks=8, threads_per_block=128, args=(x,))
    print(counters.cycles)
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence

import numpy as np

from repro.errors import LaunchError, LaunchTimeout, MemoryFault, SimulationError
from repro.gpu.block import DEFAULT_MAX_ROUNDS
from repro.gpu.costmodel import CostParams, nvidia_a100
from repro.gpu.counters import KernelCounters
from repro.gpu.memory import Buffer, GlobalMemory
from repro.gpu.sm import compose_kernel_cycles

#: CUDA-style upper bound on block size.
MAX_THREADS_PER_BLOCK = 1024

#: Process-wide sanitizer session (set by ``repro.sanitizer.activate``).
#: When active, launches that pass no explicit ``sanitize=`` run under it
#: in report mode — this is what lets ``python -m repro.sanitizer app.py``
#: sanitize an unmodified application, compute-sanitizer style.
_GLOBAL_SANITIZER = None


def set_global_sanitizer(session) -> None:
    """Install (or clear, with None) the process-wide sanitizer session."""
    global _GLOBAL_SANITIZER
    _GLOBAL_SANITIZER = session


class Device:
    """A simulated GPU with its global memory and cost profile."""

    def __init__(self, params: Optional[CostParams] = None, executor=None,
                 faults=None) -> None:
        self.params = params if params is not None else nvidia_a100()
        self.gmem = GlobalMemory()
        #: Default executor for this device's launches (None = resolve via
        #: ``repro.exec.default_executor()``, i.e. the ``REPRO_EXECUTOR``
        #: environment variable, at each launch).
        self.executor = executor
        #: Default fault plan for this device's launches (None = resolve
        #: via ``repro.faults.default_faults()``, i.e. ``REPRO_FAULTS``).
        self.faults = faults
        #: Counters of the most recent launch (convenience for examples).
        #: Updated only after a launch fully completes and merges — a
        #: failed launch leaves it untouched.
        self.last_launch: Optional[KernelCounters] = None
        #: Serializes launches: one simulated GPU runs one grid at a time,
        #: so concurrent callers (the serve tier's streams) queue here
        #: instead of interleaving global-memory mutations.  Reentrant so
        #: serve-side helpers holding it may call :meth:`launch`.
        self.lock = threading.RLock()

    # -- memory facade -------------------------------------------------
    # Allocation takes the device lock: handle assignment is a compound
    # read-modify-write on the allocator, and serve-tier threads
    # allocate concurrently with launches in flight.
    def alloc(self, name: str, size: int, dtype) -> Buffer:
        """Allocate ``size`` elements of ``dtype`` in global memory."""
        with self.lock:
            return self.gmem.alloc(name, size, dtype)

    def from_array(self, name: str, array) -> Buffer:
        """Allocate and initialise a global buffer from host data."""
        with self.lock:
            return self.gmem.from_array(name, array)

    def scalar(self, name: str, value, dtype=None) -> Buffer:
        """Allocate a 1-element global buffer (a boxed scalar)."""
        with self.lock:
            return self.gmem.scalar(name, value, dtype)

    def free(self, buf: Buffer) -> None:
        with self.lock:
            self.gmem.free(buf)

    def to_numpy(self, buf: Buffer) -> np.ndarray:
        return buf.to_numpy()

    # -- launch ----------------------------------------------------------
    def launch(
        self,
        entry,
        num_blocks: int,
        threads_per_block: int,
        args: Sequence = (),
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        regs_per_thread: int = 32,
        tracer=None,
        detect_races: bool = False,
        sanitize=None,
        schedule_policy=None,
        executor=None,
        side_state: Sequence = (),
        faults=None,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        resume: bool = False,
        checkpoint=None,
        fastpath: Optional[bool] = None,
        engine: Optional[str] = None,
    ) -> KernelCounters:
        """Run ``entry(tc, *args)`` over a grid and return kernel counters.

        ``entry`` must be a generator function whose first parameter is the
        :class:`~repro.gpu.thread.ThreadCtx`.  Blocks cannot synchronize
        with one another, so any block execution order is legal; the
        default :class:`~repro.exec.SerialExecutor` runs them sequentially
        in ascending block id, and :class:`~repro.exec.ParallelExecutor`
        shards them over a worker pool and merges the per-block effects
        back deterministically — bit-identical results either way for
        well-formed kernels (see ``docs/EXECUTOR.md``).

        ``executor`` overrides the execution strategy for this launch;
        otherwise the device's executor, then the process default
        (``REPRO_EXECUTOR``), applies.  ``side_state`` names host-side
        accumulator objects (e.g. the OpenMP runtime's counters) whose
        numeric fields the kernel mutates, so the parallel engine can
        merge their per-block deltas; launches with a ``tracer`` always
        run serially in-process.

        ``tracer(block_id, round, tid, event)``, when given, observes every
        posted event — a debugging hook for protocol inspection.

        ``sanitize`` attaches the correctness sanitizer
        (:mod:`repro.sanitizer`): ``True``/``"raise"`` raises on the first
        data race (deadlocks raise regardless, now with the analyzer's
        explanation appended); ``"report"`` collects every finding into a
        :class:`~repro.sanitizer.report.SanitizerReport` attached to the
        returned counters as ``kc.sanitizer``.  A
        :class:`~repro.sanitizer.monitor.SanitizerConfig` selects
        individual detectors.  ``detect_races=True`` is the legacy
        shorthand for ``sanitize="raise"`` with only the race detector.

        ``schedule_policy`` (e.g. a seeded
        :class:`~repro.sanitizer.schedule.ShuffleSchedule`) permutes warp
        resolution and commit order per round — a legal interleaving used
        by the schedule explorer.  Both options are zero-cost when unset.

        Resilience surface (see ``docs/RESILIENCE.md``):

        * ``faults`` attaches a :class:`repro.faults.FaultPlan` for this
          launch (``False`` forces faults off; None resolves the device
          plan, then :func:`repro.faults.default_faults`, i.e. the
          ``REPRO_FAULTS`` environment variable).
        * ``timeout`` arms a wall-clock watchdog (seconds); expiry raises
          :class:`~repro.errors.LaunchTimeout` with per-block progress.
        * ``retries``/``backoff`` arm launch-level retry-with-rollback:
          a launch that fails with a :class:`~repro.errors.SimulationError`
          (including timeouts and unrepaired memory faults) is rolled back
          to a pre-launch snapshot — buffer contents restored, kernel-time
          allocations freed, side-state counters rewound — and re-executed
          after capped exponential backoff, up to ``retries`` times.
        * ``resume=True`` upgrades those retries to block-granular
          checkpoint/resume on checkpoint-capable executors (the
          parallel engine): blocks an attempt completed before dying are
          harvested into a :class:`repro.faults.LaunchCheckpoint` and
          merged — not re-executed — on the next attempt, with
          ``kc.extra["blocks_resumed"]``/``["blocks_replayed"]``
          reporting the split.  ``checkpoint=`` supplies an external
          (possibly persisted) checkpoint instead, for cross-process
          resume.  On the serial executor, or when no blocks were
          checkpointed, resume degrades cleanly to the full-rollback
          retry it upgrades.

        ``engine`` selects the block round engine (``docs/PERF.md``):
        ``"auto"`` picks the fast interpreter whenever the launch is
        hook-free; ``"instrumented"`` forces the reference engine;
        ``"fast"`` the fast interpreter; ``"jit"`` trace-compiles stable
        warps into batched NumPy scripts and deoptimizes to the fast
        interpreter per block otherwise.  Results are bit-identical
        across all engines.  Passing ``engine="fast"``/``"jit"``
        together with a hook (``tracer``/``sanitize``/``detect_races``/
        ``schedule_policy``/an active fault plan) raises
        :class:`~repro.errors.LaunchError`, since hooks require the
        instrumented engine.  When ``engine`` is omitted the legacy
        ``fastpath`` flag applies (``True`` → ``"fast"``, ``False`` →
        ``"instrumented"``; incompatible with ``engine=``), then the
        ``REPRO_ENGINE`` environment variable (which downgrades silently
        under hooks so whole suites can be swept), then ``"auto"``.
        JIT launches report the chosen engine and per-launch compile/
        deopt telemetry in ``kc.extra`` (``engine``,
        ``jit_warps_compiled``, ``jit_deopt_<reason>``).
        """
        with self.lock:
            if num_blocks < 1:
                raise LaunchError("grid must have at least one block")
            if not 1 <= threads_per_block <= MAX_THREADS_PER_BLOCK:
                raise LaunchError(
                    f"threads_per_block must be in [1, {MAX_THREADS_PER_BLOCK}], "
                    f"got {threads_per_block}"
                )
            config = None
            label = None
            session = None
            report_mode = False
            if sanitize in (None, False, "off"):
                if sanitize is None and _GLOBAL_SANITIZER is not None and not detect_races:
                    session = _GLOBAL_SANITIZER
                    config = session.config
                    label = getattr(entry, "__qualname__", None) or repr(entry)
                    report_mode = True
            else:
                from repro.sanitizer.monitor import SanitizerConfig

                config = SanitizerConfig.coerce(sanitize)
                label = getattr(entry, "__qualname__", None) or repr(entry)
                report_mode = config.mode == "report"

            # Imported lazily: repro.exec pulls in the sanitizer package, which
            # imports this module.
            from repro.exec import default_executor
            from repro.exec.engine import LaunchPlan, SerialExecutor
            from repro.exec.state import (
                delta_numeric,
                restore_numeric,
                snapshot_numeric,
            )

            exec_ = executor if executor is not None else self.executor
            if exec_ is None:
                exec_ = default_executor()
            if tracer is not None and not isinstance(exec_, SerialExecutor):
                # Tracing observes live generators through a host closure,
                # which only the in-process serial interleaving supports.
                exec_ = SerialExecutor()

            if faults is False:
                faults_ = None
            elif faults is not None:
                faults_ = faults
            elif self.faults is not None:
                faults_ = self.faults
            else:
                from repro.faults import default_faults

                faults_ = default_faults()

            # Round-engine preference: explicit ``engine=`` kwarg, then the
            # legacy ``fastpath`` flag, then REPRO_ENGINE, then ``auto``.
            from repro.jit import JitCounters, coerce_engine, default_engine

            if engine is not None and fastpath is not None:
                raise LaunchError(
                    "pass either engine= or the legacy fastpath= flag, not both"
                )
            hook = None
            if tracer is not None:
                hook = "tracer"
            elif config is not None:
                hook = "sanitizer"
            elif detect_races:
                hook = "detect_races"
            elif schedule_policy is not None:
                hook = "schedule_policy"
            elif faults_ is not None:
                hook = "fault plan"
            if engine is not None:
                try:
                    requested = coerce_engine(engine)
                except ValueError as err:
                    raise LaunchError(str(err)) from None
                if requested in ("fast", "jit") and hook is not None:
                    raise LaunchError(
                        f"engine={requested!r} is incompatible with an attached "
                        f"{hook} hook (hooks need the instrumented engine); "
                        "drop the hook or use engine='auto'"
                    )
            elif fastpath is not None:
                requested = "fast" if fastpath else "instrumented"
            else:
                # Environment-sourced preferences downgrade silently so whole
                # test suites can be swept under e.g. REPRO_ENGINE=jit.
                try:
                    requested = default_engine()
                except ValueError as err:
                    raise LaunchError(str(err)) from None
            if hook is not None:
                resolved = "instrumented"
            elif requested == "auto":
                resolved = "fast"
            else:
                resolved = requested
            jit_stats = JitCounters() if resolved == "jit" else None

            user_side = tuple(side_state)
            plan_side = user_side
            if faults_ is not None:
                # Ride the fault counters on the side-state merge so bumps made
                # inside forked workers travel back to the coordinator.
                plan_side = user_side + (faults_.counters,)
            if jit_stats is not None:
                # Same trick for JIT telemetry: per-block compile/deopt counts
                # bumped inside forked workers merge back deterministically.
                plan_side = plan_side + (jit_stats,)
            plan = LaunchPlan(
                entry=entry,
                args=tuple(args),
                num_blocks=num_blocks,
                threads_per_block=threads_per_block,
                max_rounds=max_rounds,
                detect_races=detect_races,
                config=config,
                label=label,
                report_mode=report_mode,
                schedule_policy=schedule_policy,
                tracer=tracer,
                side_state=plan_side,
                faults=faults_,
                fastpath=fastpath,
                engine=resolved,
                jit_stats=jit_stats,
            )

            if checkpoint is None and resume:
                from repro.faults.checkpoint import LaunchCheckpoint

                checkpoint = LaunchCheckpoint()
            if checkpoint is not None and getattr(
                    exec_, "supports_checkpoint", False):
                plan.checkpoint = checkpoint

            max_attempts = int(retries) + 1
            need_snapshot = max_attempts > 1 or (
                faults_ is not None
                and any(s.site == "memory.bitflip" for s in faults_.specs)
            )
            fc_base = None
            if faults_ is not None:
                faults_.launch_index += 1
                fc_base = snapshot_numeric((faults_.counters,))
            side_base = snapshot_numeric(user_side) if max_attempts > 1 else None

            # Executors raise before any coordinator-side bookkeeping happens,
            # so a failed launch leaves last_launch and the sanitizer session
            # exactly as they were.  With retries armed, a SimulationError
            # (timeout, unrepaired memory fault, worker failure, injected
            # breakage) rolls global memory and side state back to the
            # pre-launch snapshot and re-executes after capped backoff.
            attempt = 0
            leak_mark = self.gmem.mark()
            snapshot = None
            while True:
                if need_snapshot:
                    from repro.faults.scrub import MemorySnapshot

                    # Chained: attempt 0 pays the full copy; every retry
                    # advances the previous snapshot for O(dirty pages)
                    # (the failed attempt was rolled back through marked
                    # write paths, so the bitmap covers all divergence).
                    snapshot = MemorySnapshot(self.gmem, base=snapshot)
                if faults_ is not None:
                    faults_.launch_attempt = attempt
                plan.deadline = (
                    time.monotonic() + timeout if timeout is not None else None
                )
                try:
                    if faults_ is not None:
                        self._inject_memory_faults(faults_, snapshot, attempt)
                    outcome = exec_.execute(self, plan)
                    break
                except SimulationError as err:
                    if isinstance(err, LaunchTimeout) and err.timeout is None:
                        err.timeout = timeout
                    if attempt + 1 >= max_attempts:
                        # Terminal failure: reclaim sharing-space overflow
                        # allocations the dying kernel could not release
                        # in-band (the lockstep loop stopped resuming lanes).
                        from repro.runtime.sharing import release_leaked_overflow

                        release_leaked_overflow(self.gmem, leak_mark)
                        raise
                    if snapshot is not None:
                        snapshot.restore()
                    if side_base is not None:
                        restore_numeric(user_side, side_base)
                    if faults_ is not None:
                        faults_.counters.launch_retries += 1
                        faults_.counters.rollbacks += 1
                    time.sleep(min(1.0, backoff * (2 ** attempt)))
                    attempt += 1

            kc = KernelCounters(
                num_blocks=num_blocks, threads_per_block=threads_per_block
            )
            kc.blocks = outcome.blocks
            cycles, resident, waves = compose_kernel_cycles(
                self.params, kc.blocks, threads_per_block,
                outcome.shared_used, regs_per_thread,
            )
            kc.cycles = cycles
            kc.blocks_per_sm = resident
            kc.waves = waves
            kc.extra["shared_bytes_per_block"] = float(outcome.shared_used)
            kc.extra["regs_per_thread"] = float(regs_per_thread)
            if outcome.report is not None:
                kc.sanitizer = outcome.report
                kc.extra["sanitizer_findings"] = float(len(outcome.report.findings))
                if session is not None:
                    session.add(outcome.report)
            if outcome.cross_block_conflicts:
                kc.extra["cross_block_conflicts"] = float(outcome.cross_block_conflicts)
            if jit_stats is not None:
                # JIT launches only: hook-free launches without an engine
                # preference carry no extra keys, so their counters stay
                # bit-identical to every pre-JIT baseline.
                kc.extra["engine"] = "jit"
                for key, value in jit_stats.extra_items():
                    kc.extra[key] = value
            if outcome.recovery:
                for key, val in sorted(outcome.recovery.items()):
                    if val:
                        kc.extra[f"pool_{key}"] = float(val)
            if plan.checkpoint is not None:
                kc.extra["blocks_resumed"] = float(outcome.blocks_resumed)
                kc.extra["blocks_replayed"] = float(outcome.blocks_replayed)
            if faults_ is not None:
                # Per-launch deltas only: a plan under which nothing fired adds
                # no keys, keeping counters bit-identical to a plane-less run.
                delta = delta_numeric((faults_.counters,), fc_base)[0]
                injected = sum(
                    delta.get(k, 0)
                    for k in ("worker_crashes", "worker_hangs", "bitflips",
                              "forced_overflows", "atomic_transients")
                )
                for key, value in (
                    ("faults", injected),
                    ("faults_detected", delta.get("detected", 0)),
                    ("faults_recovered", delta.get("recovered", 0)),
                    ("faults_unrecovered", delta.get("unrecovered", 0)),
                    ("faults_retries",
                     delta.get("chunk_retries", 0) + delta.get("launch_retries", 0)),
                    ("faults_degradations", delta.get("degradations", 0)),
                    ("faults_timeouts", delta.get("timeouts", 0)),
                ):
                    if value:
                        kc.extra[key] = float(value)
            self.last_launch = kc
            return kc

    def _inject_memory_faults(self, plan, snapshot, attempt: int) -> None:
        """Fire the ``memory.bitflip`` site, then run the ECC-style scrub.

        Flips land between the pre-launch snapshot and execution, exactly
        where a real upset between kernel launches would.  With the plan's
        ``scrub`` enabled (default) dirty pages are detected by checksum
        and repaired from the snapshot — or, for a ``repair=False`` spec,
        surfaced as :class:`~repro.errors.MemoryFault` with provenance
        (which the retry ladder can roll back and retry past, since the
        spec's ``attempts`` bound stops it re-firing).
        """
        from repro.faults.scrub import inject_bitflips

        coords = {"launch": plan.launch_index, "attempt": attempt}
        spec = plan.fires("memory.bitflip", **coords)
        if spec is None:
            return
        flips = inject_bitflips(self.gmem, plan, spec, coords)
        if not flips:
            return
        if not plan.scrub:
            plan.record("memory.bitflip", coords, recovered=False,
                        detail=f"{flips} flip(s), scrub disabled")
            return
        try:
            pages = snapshot.scrub(plan, repair=spec.repair)
        except MemoryFault as err:
            plan.record("memory.bitflip", coords, recovered=False,
                        detail=str(err))
            raise
        plan.record("memory.bitflip", coords, recovered=True,
                    detail=f"{flips} flip(s) across {pages} dirty page(s)")
