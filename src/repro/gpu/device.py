"""The simulated device: memory ownership and kernel launch.

:class:`Device` is the substrate's top-level object.  It owns global memory,
carries a :class:`~repro.gpu.costmodel.CostParams` profile, and launches
kernels: it instantiates one :class:`~repro.gpu.block.ThreadBlock` per grid
block, runs them functionally in deterministic order, and composes the
per-block counters into a cycle estimate via :mod:`repro.gpu.sm`.

Typical use::

    dev = Device()                      # A100-like profile
    x = dev.from_array("x", np.arange(1024, dtype=np.float64))

    def kernel(tc, x):
        i = tc.global_tid
        if i < x.size:
            v = yield from tc.load(x, i)
            yield from tc.store(x, i, 2 * v)

    counters = dev.launch(kernel, num_blocks=8, threads_per_block=128, args=(x,))
    print(counters.cycles)
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import DeadlockError, LaunchError
from repro.gpu.block import DEFAULT_MAX_ROUNDS, ThreadBlock
from repro.gpu.costmodel import CostParams, nvidia_a100
from repro.gpu.counters import KernelCounters
from repro.gpu.memory import Buffer, GlobalMemory
from repro.gpu.sm import compose_kernel_cycles

#: CUDA-style upper bound on block size.
MAX_THREADS_PER_BLOCK = 1024

#: Process-wide sanitizer session (set by ``repro.sanitizer.activate``).
#: When active, launches that pass no explicit ``sanitize=`` run under it
#: in report mode — this is what lets ``python -m repro.sanitizer app.py``
#: sanitize an unmodified application, compute-sanitizer style.
_GLOBAL_SANITIZER = None


def set_global_sanitizer(session) -> None:
    """Install (or clear, with None) the process-wide sanitizer session."""
    global _GLOBAL_SANITIZER
    _GLOBAL_SANITIZER = session


class Device:
    """A simulated GPU with its global memory and cost profile."""

    def __init__(self, params: Optional[CostParams] = None) -> None:
        self.params = params if params is not None else nvidia_a100()
        self.gmem = GlobalMemory()
        #: Counters of the most recent launch (convenience for examples).
        self.last_launch: Optional[KernelCounters] = None

    # -- memory facade -------------------------------------------------
    def alloc(self, name: str, size: int, dtype) -> Buffer:
        """Allocate ``size`` elements of ``dtype`` in global memory."""
        return self.gmem.alloc(name, size, dtype)

    def from_array(self, name: str, array) -> Buffer:
        """Allocate and initialise a global buffer from host data."""
        return self.gmem.from_array(name, array)

    def scalar(self, name: str, value, dtype=None) -> Buffer:
        """Allocate a 1-element global buffer (a boxed scalar)."""
        return self.gmem.scalar(name, value, dtype)

    def free(self, buf: Buffer) -> None:
        self.gmem.free(buf)

    def to_numpy(self, buf: Buffer) -> np.ndarray:
        return buf.to_numpy()

    # -- launch ----------------------------------------------------------
    def launch(
        self,
        entry,
        num_blocks: int,
        threads_per_block: int,
        args: Sequence = (),
        max_rounds: int = DEFAULT_MAX_ROUNDS,
        regs_per_thread: int = 32,
        tracer=None,
        detect_races: bool = False,
        sanitize=None,
        schedule_policy=None,
    ) -> KernelCounters:
        """Run ``entry(tc, *args)`` over a grid and return kernel counters.

        ``entry`` must be a generator function whose first parameter is the
        :class:`~repro.gpu.thread.ThreadCtx`.  Blocks execute sequentially
        (a legal interleaving: blocks cannot synchronize with one another)
        in ascending block id, so results are deterministic.

        ``tracer(block_id, round, tid, event)``, when given, observes every
        posted event — a debugging hook for protocol inspection.

        ``sanitize`` attaches the correctness sanitizer
        (:mod:`repro.sanitizer`): ``True``/``"raise"`` raises on the first
        data race (deadlocks raise regardless, now with the analyzer's
        explanation appended); ``"report"`` collects every finding into a
        :class:`~repro.sanitizer.report.SanitizerReport` attached to the
        returned counters as ``kc.sanitizer``.  A
        :class:`~repro.sanitizer.monitor.SanitizerConfig` selects
        individual detectors.  ``detect_races=True`` is the legacy
        shorthand for ``sanitize="raise"`` with only the race detector.

        ``schedule_policy`` (e.g. a seeded
        :class:`~repro.sanitizer.schedule.ShuffleSchedule`) permutes warp
        resolution and commit order per round — a legal interleaving used
        by the schedule explorer.  Both options are zero-cost when unset.
        """
        if num_blocks < 1:
            raise LaunchError("grid must have at least one block")
        if not 1 <= threads_per_block <= MAX_THREADS_PER_BLOCK:
            raise LaunchError(
                f"threads_per_block must be in [1, {MAX_THREADS_PER_BLOCK}], "
                f"got {threads_per_block}"
            )
        monitor = None
        session = None
        report_mode = False
        if sanitize in (None, False, "off"):
            if sanitize is None and _GLOBAL_SANITIZER is not None and not detect_races:
                session = _GLOBAL_SANITIZER
                monitor = session.make_monitor(entry)
                report_mode = True
        else:
            from repro.sanitizer.monitor import SanitizerConfig, SanitizerMonitor

            config = SanitizerConfig.coerce(sanitize)
            label = getattr(entry, "__qualname__", None) or repr(entry)
            monitor = SanitizerMonitor(config, label=label)
            report_mode = config.mode == "report"
        kc = KernelCounters(
            num_blocks=num_blocks, threads_per_block=threads_per_block
        )
        shared_used = 0
        for block_id in range(num_blocks):
            block = ThreadBlock(
                block_id=block_id,
                num_threads=threads_per_block,
                params=self.params,
                gmem=self.gmem,
                entry=entry,
                args=args,
                num_blocks=num_blocks,
                max_rounds=max_rounds,
                tracer=tracer,
                detect_races=detect_races and monitor is None,
                monitor=monitor,
                schedule_policy=schedule_policy,
            )
            try:
                kc.blocks.append(block.run())
            except DeadlockError:
                if not report_mode:
                    raise
                # Report mode: the deadlock finding is already recorded by
                # the analyzer; remaining blocks are skipped because the
                # launch cannot produce trustworthy results past this point.
                kc.blocks.append(block.counters)
                break
            shared_used = max(shared_used, block.shared.used)
        cycles, resident, waves = compose_kernel_cycles(
            self.params, kc.blocks, threads_per_block, shared_used, regs_per_thread
        )
        kc.cycles = cycles
        kc.blocks_per_sm = resident
        kc.waves = waves
        kc.extra["shared_bytes_per_block"] = float(shared_used)
        kc.extra["regs_per_thread"] = float(regs_per_thread)
        if monitor is not None:
            kc.sanitizer = monitor.finalize()
            kc.extra["sanitizer_findings"] = float(len(kc.sanitizer.findings))
            if session is not None:
                session.add(kc.sanitizer)
        self.last_launch = kc
        return kc
