"""Atomic read-modify-write semantics.

The block scheduler applies atomics posted in one scheduling round in
deterministic (warp, lane) order; this module implements the per-operation
semantics.  ``cas`` takes a ``(compare, value)`` operand pair and stores
``value`` only when the current content equals ``compare``; all operations
return the *old* value, matching CUDA's ``atomic*`` family.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.gpu.events import ATOMIC_OPS
from repro.gpu.memory import Buffer

#: Retry cap for transiently failing atomics (fault injection only).
ATOMIC_RETRY_CAP = 8


def apply_atomic(buf: Buffer, idx: int, op: str, operand):
    """Apply one atomic op to ``buf[idx]``; returns the old value."""
    old = buf.read(idx)
    if op == "add":
        buf.write(idx, old + operand)
    elif op == "max":
        buf.write(idx, max(old, operand))
    elif op == "min":
        buf.write(idx, min(old, operand))
    elif op == "exch":
        buf.write(idx, operand)
    elif op == "cas":
        compare, value = operand
        if old == compare:
            buf.write(idx, value)
    else:
        raise SimulationError(
            f"unknown atomic op {op!r}; expected one of {ATOMIC_OPS}"
        )
    return old


def apply_atomic_resilient(buf: Buffer, idx: int, op: str, operand,
                           faults, block: int, round: int, lane: int):
    """Apply one atomic op, retrying injected transient failures.

    Real hardware atomics can fail transiently (the CAS loop the paper's
    runtime spins on); the fault plane models this at the
    ``atomic.transient`` site.  Each injected failure is retried with an
    incremented ``attempt`` coordinate — the side effect is only applied
    on the attempt that succeeds, so retries never double-apply — up to
    :data:`ATOMIC_RETRY_CAP`, past which a :class:`SimulationError`
    surfaces (an ``attempts`` bound that high is a deliberately
    unrecoverable spec).  Callers pass a non-None ``faults``; the hot
    no-faults path stays on :func:`apply_atomic`.
    """
    attempt = 0
    while True:
        spec = faults.fires("atomic.transient", block=block, round=round,
                            lane=lane, attempt=attempt)
        if spec is None:
            old = apply_atomic(buf, idx, op, operand)
            if attempt:
                faults.record(
                    "atomic.transient",
                    {"block": block, "round": round, "lane": lane},
                    recovered=True,
                    detail=f"{op} on {buf.name!r}[{idx}] after {attempt} retries",
                )
            return old
        attempt += 1
        if attempt > ATOMIC_RETRY_CAP:
            faults.record(
                "atomic.transient",
                {"block": block, "round": round, "lane": lane},
                recovered=False,
                detail=f"{op} on {buf.name!r}[{idx}] exhausted retries",
            )
            raise SimulationError(
                f"atomic {op} on {buf.name!r}[{idx}] failed transiently "
                f"{attempt} times (injected, block {block}, round {round}, "
                f"lane {lane})"
            )
