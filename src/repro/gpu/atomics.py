"""Atomic read-modify-write semantics.

The block scheduler applies atomics posted in one scheduling round in
deterministic (warp, lane) order; this module implements the per-operation
semantics.  ``cas`` takes a ``(compare, value)`` operand pair and stores
``value`` only when the current content equals ``compare``; all operations
return the *old* value, matching CUDA's ``atomic*`` family.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.gpu.events import ATOMIC_OPS
from repro.gpu.memory import Buffer


def apply_atomic(buf: Buffer, idx: int, op: str, operand):
    """Apply one atomic op to ``buf[idx]``; returns the old value."""
    old = buf.read(idx)
    if op == "add":
        buf.write(idx, old + operand)
    elif op == "max":
        buf.write(idx, max(old, operand))
    elif op == "min":
        buf.write(idx, min(old, operand))
    elif op == "exch":
        buf.write(idx, operand)
    elif op == "cas":
        compare, value = operand
        if old == compare:
            buf.write(idx, value)
    else:
        raise SimulationError(
            f"unknown atomic op {op!r}; expected one of {ATOMIC_OPS}"
        )
    return old
