"""SIMT GPU simulator substrate.

This package stands in for the NVIDIA A100 hardware the paper evaluated on:
a device of streaming multiprocessors running thread blocks of warps whose
lanes execute in lockstep rounds, with global/shared/local memory, a
coalescing and bank-conflict model, warp and block barriers, shuffles and
atomics, and an analytic cycle cost model (see DESIGN.md §2 for the model
contract).
"""

from repro.gpu.costmodel import CostParams, amd_mi100, get_profile, nvidia_a100
from repro.gpu.counters import BlockCounters, KernelCounters
from repro.gpu.device import Device
from repro.gpu.memory import Buffer, GlobalMemory, SharedMemory, local_buffer
from repro.gpu.thread import ThreadCtx, full_mask

__all__ = [
    "Buffer",
    "BlockCounters",
    "CostParams",
    "Device",
    "GlobalMemory",
    "KernelCounters",
    "SharedMemory",
    "ThreadCtx",
    "amd_mi100",
    "full_mask",
    "get_profile",
    "local_buffer",
    "nvidia_a100",
]
