"""Instruction events exchanged between device threads and the scheduler.

Device code in this simulator is written as Python *generator functions*.
Each side-effecting step — a memory access, an atomic, a synchronization, a
chunk of arithmetic — is expressed by yielding one of the event objects
defined here.  The block scheduler (:mod:`repro.gpu.block`) consumes the
event, performs the architectural side effect, charges the cost model, and
``send``s the result back into the generator.

The vocabulary is deliberately small; it is the "ISA" of the simulator:

========== =====================================================
Event      Meaning
========== =====================================================
Compute    ``ops`` arithmetic operations of class ``kind``
Load       read ``idxs`` elements of a buffer (lane-private)
Store      write ``idxs``/``values`` elements of a buffer
AtomicOp   read-modify-write one element, returns the old value
SyncWarp   warp-level named barrier over a lane ``mask``
SyncBlock  block-wide barrier (``__syncthreads``)
Shuffle    register exchange between lanes of a ``mask``
========== =====================================================

Multi-element ``Load``/``Store`` events model a short unrolled run of
accesses by one lane; the scheduler coalesces position ``k`` of every lane's
vector together, which is exactly what the hardware would see if the loop
were unrolled in lockstep.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpu.memory import Buffer

# Integer tags let the scheduler dispatch without isinstance chains.
T_COMPUTE = 0
T_LOAD = 1
T_STORE = 2
T_ATOMIC = 3
T_SYNCWARP = 4
T_SYNCBLOCK = 5
T_SHUFFLE = 6
T_VOTE = 7

#: Vote modes (CUDA ``__any_sync`` / ``__all_sync`` / ``__ballot_sync``).
VOTE_MODES = ("any", "all", "ballot")

#: Atomic operation names accepted by :class:`AtomicOp`.
ATOMIC_OPS = ("add", "max", "min", "exch", "cas")

#: Shuffle modes accepted by :class:`Shuffle` (CUDA ``__shfl_*_sync`` family).
SHUFFLE_MODES = ("idx", "up", "down", "xor")


class Event:
    """Common base for all device events."""

    __slots__ = ()
    tag = -1


class Compute(Event):
    """``ops`` arithmetic operations of class ``kind``.

    ``kind`` selects the per-op issue cost from the cost model (e.g. ``"alu"``
    for integer/logic, ``"fma"`` for fused multiply-add, ``"sfu"`` for
    transcendental ops).
    """

    __slots__ = ("kind", "ops")
    tag = T_COMPUTE

    def __init__(self, kind: str = "alu", ops: int = 1) -> None:
        self.kind = kind
        self.ops = ops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Compute(kind={self.kind!r}, ops={self.ops})"


class Load(Event):
    """Read ``idxs`` (flat element indices) from ``buf``.

    The scheduler replies with a tuple of element values, one per index.
    """

    __slots__ = ("buf", "idxs")
    tag = T_LOAD

    def __init__(self, buf: "Buffer", idxs: Sequence[int]) -> None:
        self.buf = buf
        self.idxs = idxs

    def __repr__(self) -> str:  # pragma: no cover
        return f"Load({self.buf.name}, idxs={list(self.idxs)!r})"


class Store(Event):
    """Write ``values`` to flat element indices ``idxs`` of ``buf``."""

    __slots__ = ("buf", "idxs", "values")
    tag = T_STORE

    def __init__(self, buf: "Buffer", idxs: Sequence[int], values: Sequence) -> None:
        self.buf = buf
        self.idxs = idxs
        self.values = values

    def __repr__(self) -> str:  # pragma: no cover
        return f"Store({self.buf.name}, idxs={list(self.idxs)!r})"


class AtomicOp(Event):
    """Atomic read-modify-write of ``buf[idx]``.

    ``op`` is one of :data:`ATOMIC_OPS`.  For ``cas`` the operand is a
    ``(compare, value)`` pair.  The scheduler replies with the *old* value.
    Atomics from the same scheduling round are applied in deterministic
    (warp, lane) order, making every simulation reproducible.
    """

    __slots__ = ("buf", "idx", "op", "operand")
    tag = T_ATOMIC

    def __init__(self, buf: "Buffer", idx: int, op: str, operand) -> None:
        self.buf = buf
        self.idx = idx
        self.op = op
        self.operand = operand

    def __repr__(self) -> str:  # pragma: no cover
        return f"AtomicOp({self.buf.name}[{self.idx}], {self.op})"


class SyncWarp(Event):
    """Warp-level barrier over the lanes named in ``mask``.

    ``mask`` is a 32-bit (or 64-bit on wide-wavefront profiles) bitmask of
    lane ids *within the warp*.  Every live lane named by the mask must
    eventually issue a :class:`SyncWarp` with the same mask; the scheduler
    releases the group once all arrive.  This models CUDA's
    ``__syncwarp(mask)`` used by the paper's SIMD-group barriers.
    """

    __slots__ = ("mask",)
    tag = T_SYNCWARP

    def __init__(self, mask: int) -> None:
        self.mask = mask

    def __repr__(self) -> str:  # pragma: no cover
        return f"SyncWarp(mask={self.mask:#x})"


class SyncBlock(Event):
    """Block-level barrier (``__syncthreads`` / PTX ``barrier.sync id, n``).

    With the defaults (``bar_id=0, count=None``) this is the classic
    block-wide barrier: released once every *live* (non-retired) lane waits
    on it — threads that already returned do not participate, matching CUDA
    semantics for exited threads.

    A *named* barrier (nonzero ``bar_id``) with an explicit ``count``
    releases as soon as ``count`` lanes wait on that id, letting disjoint
    thread subsets synchronize independently — the mechanism warp-
    specialized runtimes (Jacob et al. [17] in the paper) use so worker
    threads can barrier among themselves while the team main thread waits
    on a different id.
    """

    __slots__ = ("bar_id", "count")
    tag = T_SYNCBLOCK

    def __init__(self, bar_id: int = 0, count=None) -> None:
        self.bar_id = bar_id
        self.count = count

    def __repr__(self) -> str:  # pragma: no cover
        return f"SyncBlock(bar_id={self.bar_id}, count={self.count})"


class Shuffle(Event):
    """Register exchange between the lanes of ``mask``.

    ``mode`` is one of :data:`SHUFFLE_MODES`; ``lane_arg`` is the source lane
    (``idx``) or delta (``up``/``down``/``xor``), interpreted *relative to the
    ordered set of lanes in the mask* so SIMD groups smaller than a warp get
    self-contained shuffle segments.  Every live lane in the mask must issue
    a matching shuffle; each receives its source lane's ``value`` (or its own
    value if the source falls outside the segment).
    """

    __slots__ = ("mode", "value", "lane_arg", "mask")
    tag = T_SHUFFLE

    def __init__(self, mode: str, value, lane_arg: int, mask: int) -> None:
        self.mode = mode
        self.value = value
        self.lane_arg = lane_arg
        self.mask = mask

    def __repr__(self) -> str:  # pragma: no cover
        return f"Shuffle({self.mode}, lane_arg={self.lane_arg}, mask={self.mask:#x})"


class Vote(Event):
    """Warp vote across the lanes of ``mask`` (CUDA ``__*_sync`` votes).

    Every live lane in the mask posts its ``predicate``; each receives the
    collective result — ``any``/``all`` a bool, ``ballot`` the bitmask of
    lanes (absolute warp lane positions) whose predicate was true.
    """

    __slots__ = ("mode", "predicate", "mask")
    tag = T_VOTE

    def __init__(self, mode: str, predicate: bool, mask: int) -> None:
        self.mode = mode
        self.predicate = predicate
        self.mask = mask

    def __repr__(self) -> str:  # pragma: no cover
        return f"Vote({self.mode}, {self.predicate}, mask={self.mask:#x})"
