"""Instruction events exchanged between device threads and the scheduler.

Device code in this simulator is written as Python *generator functions*.
Each side-effecting step — a memory access, an atomic, a synchronization, a
chunk of arithmetic — is expressed by yielding one of the event objects
defined here.  The block scheduler (:mod:`repro.gpu.block`) consumes the
event, performs the architectural side effect, charges the cost model, and
``send``s the result back into the generator.

The vocabulary is deliberately small; it is the "ISA" of the simulator:

========== =====================================================
Event      Meaning
========== =====================================================
Compute    ``ops`` arithmetic operations of class ``kind``
Load       read ``idxs`` elements of a buffer (lane-private)
Store      write ``idxs``/``values`` elements of a buffer
AtomicOp   read-modify-write one element, returns the old value
SyncWarp   warp-level named barrier over a lane ``mask``
SyncBlock  block-wide barrier (``__syncthreads``)
Shuffle    register exchange between lanes of a ``mask``
========== =====================================================

Multi-element ``Load``/``Store`` events model a short unrolled run of
accesses by one lane; the scheduler coalesces position ``k`` of every lane's
vector together, which is exactly what the hardware would see if the loop
were unrolled in lockstep.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.gpu.memory import Buffer

# Integer tags let the scheduler dispatch without isinstance chains.
T_COMPUTE = 0
T_LOAD = 1
T_STORE = 2
T_ATOMIC = 3
T_SYNCWARP = 4
T_SYNCBLOCK = 5
T_SHUFFLE = 6
T_VOTE = 7

#: Vote modes (CUDA ``__any_sync`` / ``__all_sync`` / ``__ballot_sync``).
VOTE_MODES = ("any", "all", "ballot")

#: Atomic operation names accepted by :class:`AtomicOp`.
ATOMIC_OPS = ("add", "max", "min", "exch", "cas")

#: Shuffle modes accepted by :class:`Shuffle` (CUDA ``__shfl_*_sync`` family).
SHUFFLE_MODES = ("idx", "up", "down", "xor")

#: Event tags the JIT tier (:mod:`repro.jit`) can compile into batched
#: warp-script steps.  Everything else — atomics, barriers, shuffles,
#: votes — deoptimizes the block to the interpreters, which own the full
#: parking/commit protocol.  The JIT's vectorized trace replays these
#: events with LaneVec payloads, so ``Compute``/``Load``/``Store``
#: constructors must accept non-scalar operands (they only fold the
#: *kind*-level signature, never the payload, into ``sig``).
VECTORIZABLE_TAGS = (T_COMPUTE, T_LOAD, T_STORE)

# ---------------------------------------------------------------------------
# Signature interning.
#
# Every event carries a precomputed ``sig`` — its *issue-group signature*:
# events of one warp that share a signature in a scheduling round issue as a
# single warp instruction (and are coalesced/accounted together).  Signature
# tuples are interned so that equal signatures are usually the *same* tuple
# object, which lets the scheduler's convergence check run on identity
# before falling back to structural equality.
_SIG_CACHE: dict = {}
_SIG_CACHE_CAP = 1 << 16


def _sig(*parts) -> tuple:
    """Return an interned signature tuple for ``parts``."""
    s = _SIG_CACHE.get(parts)
    if s is None:
        if len(_SIG_CACHE) >= _SIG_CACHE_CAP:
            return parts
        s = _SIG_CACHE[parts] = parts
    return s


#: All classic and named block barriers share one issue-group signature:
#: a warp whose lanes sit at *any* ``__syncthreads`` issues one barrier
#: instruction; the release logic distinguishes ``(bar_id, count)`` keys.
_SYNCBLOCK_SIG = _sig(T_SYNCBLOCK)

#: (sig, wkey) pairs for Shuffle events, keyed by (mode, mask) — see
#: ``Shuffle.__init__``.
_SHFL_KEYS: dict = {}


class Event:
    """Common base for all device events.

    Every concrete event exposes ``sig``, its interned issue-group
    signature (see :func:`_sig`); the block scheduler groups a warp's
    round by it instead of recomputing signatures per round.
    """

    __slots__ = ()
    tag = -1


class Compute(Event):
    """``ops`` arithmetic operations of class ``kind``.

    ``kind`` selects the per-op issue cost from the cost model (e.g. ``"alu"``
    for integer/logic, ``"fma"`` for fused multiply-add, ``"sfu"`` for
    transcendental ops).
    """

    __slots__ = ("kind", "ops", "sig")
    tag = T_COMPUTE

    def __init__(self, kind: str = "alu", ops: int = 1) -> None:
        self.kind = kind
        self.ops = ops
        self.sig = _sig(T_COMPUTE, kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Compute(kind={self.kind!r}, ops={self.ops})"


class Load(Event):
    """Read ``idxs`` (flat element indices) from ``buf``.

    The scheduler replies with a tuple of element values, one per index.
    """

    __slots__ = ("buf", "idxs", "sig")
    tag = T_LOAD

    def __init__(self, buf: "Buffer", idxs: Sequence[int]) -> None:
        self.buf = buf
        self.idxs = idxs
        self.sig = buf.sig_load

    def __repr__(self) -> str:  # pragma: no cover
        return f"Load({self.buf.name}, idxs={list(self.idxs)!r})"


class Store(Event):
    """Write ``values`` to flat element indices ``idxs`` of ``buf``."""

    __slots__ = ("buf", "idxs", "values", "sig")
    tag = T_STORE

    def __init__(self, buf: "Buffer", idxs: Sequence[int], values: Sequence) -> None:
        self.buf = buf
        self.idxs = idxs
        self.values = values
        self.sig = buf.sig_store

    def __repr__(self) -> str:  # pragma: no cover
        return f"Store({self.buf.name}, idxs={list(self.idxs)!r})"


class AtomicOp(Event):
    """Atomic read-modify-write of ``buf[idx]``.

    ``op`` is one of :data:`ATOMIC_OPS`.  For ``cas`` the operand is a
    ``(compare, value)`` pair.  The scheduler replies with the *old* value.
    Atomics from the same scheduling round are applied in deterministic
    (warp, lane) order, making every simulation reproducible.
    """

    __slots__ = ("buf", "idx", "op", "operand", "sig")
    tag = T_ATOMIC

    def __init__(self, buf: "Buffer", idx: int, op: str, operand) -> None:
        self.buf = buf
        self.idx = idx
        self.op = op
        self.operand = operand
        self.sig = _sig(T_ATOMIC, op)

    def __repr__(self) -> str:  # pragma: no cover
        return f"AtomicOp({self.buf.name}[{self.idx}], {self.op})"


class SyncWarp(Event):
    """Warp-level barrier over the lanes named in ``mask``.

    ``mask`` is a 32-bit (or 64-bit on wide-wavefront profiles) bitmask of
    lane ids *within the warp*.  Every live lane named by the mask must
    eventually issue a :class:`SyncWarp` with the same mask; the scheduler
    releases the group once all arrive.  This models CUDA's
    ``__syncwarp(mask)`` used by the paper's SIMD-group barriers.
    """

    __slots__ = ("mask", "sig")
    tag = T_SYNCWARP

    def __init__(self, mask: int) -> None:
        self.mask = mask
        self.sig = _sig(T_SYNCWARP, mask)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SyncWarp(mask={self.mask:#x})"


class SyncBlock(Event):
    """Block-level barrier (``__syncthreads`` / PTX ``barrier.sync id, n``).

    With the defaults (``bar_id=0, count=None``) this is the classic
    block-wide barrier: released once every *live* (non-retired) lane waits
    on it — threads that already returned do not participate, matching CUDA
    semantics for exited threads.

    A *named* barrier (nonzero ``bar_id``) with an explicit ``count``
    releases as soon as ``count`` lanes wait on that id, letting disjoint
    thread subsets synchronize independently — the mechanism warp-
    specialized runtimes (Jacob et al. [17] in the paper) use so worker
    threads can barrier among themselves while the team main thread waits
    on a different id.
    """

    __slots__ = ("bar_id", "count", "sig", "wkey")
    tag = T_SYNCBLOCK

    def __init__(self, bar_id: int = 0, count=None) -> None:
        self.bar_id = bar_id
        self.count = count
        self.sig = _SYNCBLOCK_SIG
        #: Waiter-group key, precomputed so the scheduler's arrival handler
        #: does no per-lane normalization.
        self.wkey = (bar_id, None if count is None else int(count))

    def __repr__(self) -> str:  # pragma: no cover
        return f"SyncBlock(bar_id={self.bar_id}, count={self.count})"


class Shuffle(Event):
    """Register exchange between the lanes of ``mask``.

    ``mode`` is one of :data:`SHUFFLE_MODES`; ``lane_arg`` is the source lane
    (``idx``) or delta (``up``/``down``/``xor``), interpreted *relative to the
    ordered set of lanes in the mask* so SIMD groups smaller than a warp get
    self-contained shuffle segments.  Every live lane in the mask must issue
    a matching shuffle; each receives its source lane's ``value`` (or its own
    value if the source falls outside the segment).
    """

    __slots__ = ("mode", "value", "lane_arg", "mask", "sig", "wkey")
    tag = T_SHUFFLE

    def __init__(self, mode: str, value, lane_arg: int, mask: int) -> None:
        self.mode = mode
        self.value = value
        self.lane_arg = lane_arg
        self.mask = mask
        # Shuffles carry a lane-private value, so the event itself cannot be
        # interned — but its (sig, wkey) pair is a pure function of
        # (mode, mask) and is cached as one unit to keep per-yield cost at a
        # single dict probe.
        k = (mode, mask)
        keys = _SHFL_KEYS.get(k)
        if keys is None:
            keys = _SHFL_KEYS[k] = (_sig(T_SHUFFLE, mode, mask), _sig(mask, mode))
        self.sig, self.wkey = keys

    def __repr__(self) -> str:  # pragma: no cover
        return f"Shuffle({self.mode}, lane_arg={self.lane_arg}, mask={self.mask:#x})"


class Vote(Event):
    """Warp vote across the lanes of ``mask`` (CUDA ``__*_sync`` votes).

    Every live lane in the mask posts its ``predicate``; each receives the
    collective result — ``any``/``all`` a bool, ``ballot`` the bitmask of
    lanes (absolute warp lane positions) whose predicate was true.
    """

    __slots__ = ("mode", "predicate", "mask", "sig", "wkey")
    tag = T_VOTE

    def __init__(self, mode: str, predicate: bool, mask: int) -> None:
        self.mode = mode
        self.predicate = predicate
        self.mask = mask
        self.sig = _sig(T_VOTE, mode, mask)
        self.wkey = _sig(mask, ("vote", mode))

    def __repr__(self) -> str:  # pragma: no cover
        return f"Vote({self.mode}, {self.predicate}, mask={self.mask:#x})"


# ---------------------------------------------------------------------------
# Event interning.
#
# The hot immutable events — ``Compute("fma", 1)``, ``SyncWarp(mask)``,
# barriers, and votes — carry no lane-private payload, so every lane of
# every round can share one frozen instance instead of allocating a fresh
# object per yield.  The scheduler never mutates events; interned instances
# are handed to ``ThreadCtx`` helpers (:mod:`repro.gpu.thread`) and flow
# through both the instrumented and the fast-path engines unchanged.
#
# Caches are bounded: a kernel that manufactures unbounded distinct
# (kind, ops) or mask values simply falls back to fresh allocations.
_INTERN_CAP = 4096

_COMPUTE_CACHE: dict = {}
_SYNCWARP_CACHE: dict = {}
_SYNCBLOCK_CACHE: dict = {}
_VOTE_CACHE: dict = {}


def intern_compute(kind: str = "alu", ops: int = 1) -> Compute:
    """Shared :class:`Compute` instance for ``(kind, ops)``."""
    key = (kind, ops)
    ev = _COMPUTE_CACHE.get(key)
    if ev is None:
        ev = Compute(kind, ops)
        if len(_COMPUTE_CACHE) < _INTERN_CAP:
            _COMPUTE_CACHE[key] = ev
    return ev


def intern_syncwarp(mask: int) -> SyncWarp:
    """Shared :class:`SyncWarp` instance for ``mask``."""
    ev = _SYNCWARP_CACHE.get(mask)
    if ev is None:
        ev = SyncWarp(mask)
        if len(_SYNCWARP_CACHE) < _INTERN_CAP:
            _SYNCWARP_CACHE[mask] = ev
    return ev


def intern_syncblock(bar_id: int = 0, count=None) -> SyncBlock:
    """Shared :class:`SyncBlock` instance for ``(bar_id, count)``."""
    key = (bar_id, count)
    ev = _SYNCBLOCK_CACHE.get(key)
    if ev is None:
        ev = SyncBlock(bar_id, count)
        if len(_SYNCBLOCK_CACHE) < _INTERN_CAP:
            _SYNCBLOCK_CACHE[key] = ev
    return ev


def intern_vote(mode: str, predicate: bool, mask: int) -> Vote:
    """Shared :class:`Vote` instance for ``(mode, predicate, mask)``."""
    key = (mode, predicate, mask)
    ev = _VOTE_CACHE.get(key)
    if ev is None:
        ev = Vote(mode, predicate, mask)
        if len(_VOTE_CACHE) < _INTERN_CAP:
            _VOTE_CACHE[key] = ev
    return ev
