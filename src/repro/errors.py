"""Exception hierarchy for the repro package.

Every error raised by the simulator, runtime, or codegen derives from
:class:`ReproError` so callers can catch the whole family with one clause.
The split mirrors the layering of the package: simulation faults (the GPU
substrate), runtime faults (the OpenMP device runtime), and codegen faults
(the mini compiler).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


# ---------------------------------------------------------------------------
# GPU simulator faults
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for faults detected by the SIMT simulator."""


class MemoryFault(SimulationError):
    """Out-of-bounds or otherwise invalid device memory access."""


class AllocationError(SimulationError):
    """Device memory allocator could not satisfy a request."""


class DeadlockError(SimulationError):
    """No thread in a block can make progress.

    Raised when a scheduling round advances no lane while unfinished lanes
    remain — e.g. a warp-level barrier whose mask names a lane that already
    retired, or a block barrier not reached by every live thread.

    Structured provenance rides along for programmatic consumers (the
    sanitizer report): ``block_id`` and ``round`` locate the lockup;
    ``lanes`` is a tuple of ``(tid, warp, lane, state, wait_key)`` rows
    describing every stuck lane.
    """

    def __init__(self, message: str, block_id=None, round=None, lanes=()):
        super().__init__(message)
        self.block_id = block_id
        self.round = round
        self.lanes = tuple(lanes)


class SynchronizationError(SimulationError):
    """Structurally invalid synchronization (bad mask, mismatched barrier)."""


class LaunchError(SimulationError):
    """Invalid kernel launch configuration."""


class DataRaceError(SimulationError):
    """Two lanes touched the same address concurrently without atomics.

    Raised only when race detection is enabled on the launch; reports the
    address, the access kinds, and the lanes involved.  Structured
    provenance for the sanitizer report: ``block_id``, the ``buffer``
    name and element ``index``, the scheduling ``round`` of the second
    access, and the two conflicting source ``sites``.
    """

    def __init__(self, message: str, block_id=None, buffer=None, index=None,
                 round=None, sites=()):
        super().__init__(message)
        self.block_id = block_id
        self.buffer = buffer
        self.index = index
        self.round = round
        self.sites = tuple(sites)


class DeviceAssertionError(SimulationError):
    """A device-side assertion (``tc.device_assert``) failed."""


class LaunchTimeout(SimulationError):
    """A launch exceeded its wall-clock watchdog (``timeout=`` seconds).

    Structured progress rides along for programmatic consumers (and the
    launch retry ladder): ``timeout`` is the configured limit in seconds,
    ``blocks_done``/``num_blocks`` locate how far the launch got, and
    ``progress`` is a tuple of ``(block_id, rounds)`` rows for every block
    that completed before the deadline.  Under the parallel executor the
    granularity is the work chunk, so ``blocks_done`` counts blocks whose
    chunk delivered results in time.
    """

    def __init__(self, message: str, timeout=None, blocks_done=None,
                 num_blocks=None, progress=()):
        super().__init__(message)
        self.timeout = timeout
        self.blocks_done = blocks_done
        self.num_blocks = num_blocks
        self.progress = tuple(progress)


class FaultInjectionError(ReproError):
    """A fault-injection plan is misconfigured (bad spec, bad env string)."""


# ---------------------------------------------------------------------------
# OpenMP device runtime faults
# ---------------------------------------------------------------------------


class RuntimeFault(ReproError):
    """Base class for faults detected by the OpenMP device runtime."""


class InvalidSimdGroupError(RuntimeFault):
    """SIMD group configuration violates the paper's constraints.

    SIMD groups must not span a warp and must evenly divide it (§5.1).
    """


class SharingSpaceError(RuntimeFault):
    """Variable sharing space misuse (e.g. release without acquire)."""


class UnsupportedFeatureError(RuntimeFault):
    """Feature unavailable on the selected device profile.

    Example: generic-mode SIMD on the AMD profile, which lacks
    wavefront-level barriers (§5.4.1 of the paper).
    """


# ---------------------------------------------------------------------------
# Codegen faults
# ---------------------------------------------------------------------------


class CodegenError(ReproError):
    """Base class for faults detected while lowering directive trees."""


class DirectiveNestingError(CodegenError):
    """Directive tree violates OpenMP nesting rules."""


class OutliningError(CodegenError):
    """Loop-task outlining failed (bad body signature, capture issues)."""


class PayloadError(CodegenError):
    """Argument payload packing/unpacking failed."""
