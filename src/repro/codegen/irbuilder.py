"""The OpenMP IR builder: lowering directive trees onto the runtime (§4.1).

Real code generation emits LLVM IR; here "lowering" builds nested generator
closures that call the same runtime entry points in the same order the
paper's generated code would:

* a ``Target`` region becomes an entry generator that calls
  ``__target_init``, splits into main/worker/retired roles, and (for the
  main/SPMD path) drives the teams-level construct;
* a ``ParallelFor`` (and the parallel half of the combined construct)
  becomes an outlined *microtask* registered in the dispatch table and
  launched through ``__parallel``;
* a ``Simd`` loop becomes an outlined *loop task* whose per-iteration body
  the runtime's ``__simd_loop`` invokes with the normalized induction value;
* trip counts are evaluated through the canonical-loop callback exactly
  where the executing thread needs them (team main for generic, every
  thread for SPMD — §5.4).

The builder also wires the payload plumbing: each outlined function's
:class:`~repro.codegen.outline.OutlinedTask` layout says which launch-arg
buffers, captured ``pre`` locals, and enclosing loop variables ride in its
payload.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.errors import CodegenError
from repro.codegen.canonical_loop import evaluate_trip
from repro.codegen.directives import (
    ParallelFor,
    Simd,
    Target,
    TeamsDistribute,
    TeamsDistributeParallelFor,
)
from repro.codegen.outline import OutlinedTask, iv_key, outline_task, resolve_uses, subtree_uses
from repro.codegen.program import CompiledKernel
from repro.codegen.spmdization import analyze_modes
from repro.gpu.events import Compute
from repro.runtime.dispatch import DispatchTable
from repro.runtime.icv import ExecMode
from repro.runtime.mapping import get_simd_group
from repro.runtime.parallel import parallel as rt_parallel
from repro.runtime.reduction import workshare_reduce
from repro.runtime.simd import simd as rt_simd
from repro.runtime.state import TeamRuntime
from repro.runtime.target import (
    ROLE_MAIN,
    ROLE_RETIRED,
    ROLE_WORKER,
    target_deinit,
    target_init,
    team_worker_loop,
)
from repro.runtime.mapping import simdmask
from repro.runtime.sync import workshare_barrier
from repro.runtime.workshare import (
    charge_schedule_setup,
    distribute_indices,
    dynamic_next,
    for_indices,
    guided_next,
)


def build_task_values(task: OutlinedTask, env: Dict, ivs: Tuple[int, ...]) -> Dict:
    """Assemble the named value environment an outlined task is called with."""
    values: Dict[str, object] = {}
    for u in task.uses:
        values[u] = env[u]
    for cname, _ in task.captures:
        try:
            values[cname] = env[cname]
        except KeyError:
            raise CodegenError(
                f"task {task.name!r} captures {cname!r} but the enclosing "
                "pre= callback did not produce it"
            ) from None
    for level in range(task.depth):
        values[iv_key(level)] = int(ivs[level])
    return values


def _outer_ivs(task: OutlinedTask, values: Dict) -> Tuple[int, ...]:
    return tuple(int(values[iv_key(level)]) for level in range(task.depth))


#: Identities/combiner for the for-level reduction clause.
_RED_IDENTITY = {"add": 0.0, "max": float("-inf"), "min": float("inf"), None: None}


def _red_combine(op, a, b):
    if op == "add":
        return a + b
    if op == "max":
        return a if a >= b else b
    return a if a <= b else b


def _finish_for_reduction(tc, rt, node, acc, ivs_outer, values):
    """Combine executor partials and run the clause's finalizer."""
    op, finalize = node.reduction
    total = yield from workshare_reduce(tc, rt, acc, op)
    if tc.tid == 0:
        yield from finalize(tc, ivs_outer, values, total)


def _run_for(tc, rt, node, trip, to_user_iv, content, ivs_outer, values):
    """Workshare a ``for`` loop across the team's SIMD groups.

    Static schedules are index arithmetic; ``schedule(dynamic)`` claims
    chunks from the team's atomic counter — the group's SIMD main thread
    claims and, in SPMD parallel mode where every lane executes the region
    redundantly, broadcasts the claim to its group with a shuffle.
    """
    cfg = rt.cfg
    red_op = getattr(node, "reduction", None)
    red_op = red_op[0] if red_op else None
    acc = _RED_IDENTITY[red_op] if red_op else None
    if node.schedule not in ("dynamic", "guided"):
        group = get_simd_group(tc, cfg)
        for k in for_indices(trip, group, cfg.num_groups, node.schedule, node.chunk):
            val = yield from content(tc, rt, ivs_outer + (to_user_iv(k),), values)
            if red_op:
                acc = _red_combine(red_op, acc, float(val))
            yield Compute("alu", 1)
        return acc

    if tc.tid == 0:
        yield from tc.store(rt.dyn_counter, 0, 0)
    yield from workshare_barrier(tc, rt)
    broadcast = cfg.parallel_mode is ExecMode.SPMD and cfg.simd_len > 1
    mask = simdmask(tc, cfg)
    guided = node.schedule == "guided"
    while True:
        if tc.tid % cfg.simd_len == 0:
            if guided:
                claim = yield from guided_next(
                    tc, rt.dyn_counter, trip, cfg.num_groups, node.chunk
                )
            else:
                claim = yield from dynamic_next(tc, rt.dyn_counter, trip, node.chunk)
            lo, hi = (-1, -1) if claim is None else claim
        else:
            lo, hi = 0, 0
        if broadcast:
            lo = int((yield from tc.shfl(lo, 0, mask)))
            hi = int((yield from tc.shfl(hi, 0, mask)))
        if lo < 0:
            break
        for k in range(lo, hi):
            val = yield from content(tc, rt, ivs_outer + (to_user_iv(k),), values)
            if red_op:
                acc = _red_combine(red_op, acc, float(val))
            yield Compute("alu", 1)
    # Implicit barrier: the next region may reset the claim counter.
    yield from workshare_barrier(tc, rt)
    return acc


# ---------------------------------------------------------------------------
# Simd lowering
# ---------------------------------------------------------------------------


def _lower_simd(
    table: DispatchTable,
    simd_node: Simd,
    arg_names: Sequence[str],
    outer_captures: Sequence[Tuple[str, str]],
    depth: int,
    name: str,
):
    """Outline the simd loop body and return (task, call generator fn)."""
    loop = simd_node.loop
    task = outline_task(
        name=name,
        uses=resolve_uses(loop, arg_names),
        captures=outer_captures,
        depth=depth,
    )
    reduction = simd_node.reduction

    def simd_task_fn(tc, rt, omp_iv, values):
        ivs = _outer_ivs(task, values) + (loop.user_iv(omp_iv),)
        result = yield from loop.body(tc, ivs, values)
        return result

    fn_id = table.register(
        simd_task_fn,
        task.layout,
        name,
        kind="simd",
        known=not simd_node.external,
        reduction=reduction[0] if reduction else None,
    )

    def call_simd(tc, rt, ivs, env):
        trip = yield from evaluate_trip(tc, loop, env, ivs)
        values = build_task_values(task, env, ivs)
        spmd = rt.cfg.parallel_mode is ExecMode.SPMD
        total = yield from rt_simd(tc, rt, fn_id, trip, values, spmd)
        if reduction is not None and tc.tid % rt.cfg.simd_len == 0:
            # Only the SIMD main thread finalizes the group total.
            yield from reduction[1](tc, ivs, env, total)

    return task, fn_id, call_simd


def _lower_loop_content(
    table: DispatchTable,
    loop,
    arg_names: Sequence[str],
    enclosing_captures: Sequence[Tuple[str, str]],
    depth: int,
    name: str,
):
    """Runner for one iteration of ``loop``: pre -> simd/leaf -> post.

    ``depth`` counts the loop variables *including this loop's own* that the
    content runs under.  Returns ``(tasks, runner)``.
    """
    tasks: Dict[str, Tuple[OutlinedTask, int]] = {}
    if loop.body is not None:
        def run_leaf(tc, rt, ivs, env):
            result = yield from loop.body(tc, ivs, env)
            return result
        return tasks, run_leaf

    simd_node = loop.nested
    all_captures = tuple(enclosing_captures) + tuple(loop.captures)
    task, fn_id, call_simd = _lower_simd(
        table, simd_node, arg_names, all_captures, depth, f"{name}.simd"
    )
    tasks[f"{name}.simd"] = (task, fn_id)
    has_pre, has_post = loop.pre is not None, loop.post is not None

    def run(tc, rt, ivs, env):
        if has_pre:
            locals_ = yield from loop.pre(tc, ivs, env)
            env = {**env, **(locals_ or {})}
        yield from call_simd(tc, rt, ivs, env)
        if has_post:
            yield from loop.post(tc, ivs, env)

    return tasks, run


# ---------------------------------------------------------------------------
# Combined teams distribute parallel for
# ---------------------------------------------------------------------------


def _compile_tdpf(
    target: Target, node: TeamsDistributeParallelFor, arg_names, name, table, report
):
    loop = node.loop
    tasks, content = _lower_loop_content(
        table, loop, arg_names, (), depth=1, name=f"{name}.tdpf"
    )
    micro_task = outline_task(
        name=f"{name}.tdpf",
        uses=subtree_uses(loop, arg_names),
        captures=(),
        depth=0,
    )

    def microtask(tc, rt, values):
        trip = yield from evaluate_trip(tc, loop, values, ())
        yield from charge_schedule_setup(tc)
        chunk = distribute_indices(
            trip, tc.block_id, tc.num_blocks, node.dist_schedule, node.dist_chunk
        )
        if not isinstance(chunk, (list, tuple)):
            chunk = list(chunk)
        acc = yield from _run_for(
            tc, rt, node, len(chunk), lambda k: loop.user_iv(chunk[k]),
            content, (), values,
        )
        if node.reduction is not None:
            yield from _finish_for_reduction(tc, rt, node, acc, (), values)

    micro_id = table.register(microtask, micro_task.layout, micro_task.name, kind="parallel")
    tasks[micro_task.name] = (micro_task, micro_id)

    def entry_factory(cfg, gmem, counters, args):
        values0 = {u: args[u] for u in micro_task.uses}

        def entry(tc):
            rt = TeamRuntime.get(tc, cfg, gmem, table, counters)
            role = yield from target_init(tc, rt)
            if role == ROLE_RETIRED:
                return
            if role == ROLE_WORKER:
                yield from team_worker_loop(tc, rt)
                return
            yield from rt_parallel(tc, rt, micro_id, values0)
            if role == ROLE_MAIN:
                yield from target_deinit(tc, rt)

        return entry

    return CompiledKernel(
        name=name,
        target=target,
        report=report,
        table=table,
        arg_names=tuple(arg_names),
        tasks=tasks,
        total_uses=micro_task.uses,
        entry_factory=entry_factory,
    )


# ---------------------------------------------------------------------------
# teams distribute (+ nested parallel for)
# ---------------------------------------------------------------------------


def _compile_teams_distribute(
    target: Target, node: TeamsDistribute, arg_names, name, table, report
):
    td_loop = node.loop
    tasks: Dict[str, Tuple[OutlinedTask, int]] = {}
    total_uses = subtree_uses(td_loop, arg_names)

    if td_loop.nested is None:
        # Sequential per-team body on the main thread.
        def iteration(tc, rt, ivs, env):
            yield from td_loop.body(tc, ivs, env)
    else:
        pf_node: ParallelFor = td_loop.nested
        pf_loop = pf_node.loop
        inner_tasks, content = _lower_loop_content(
            table,
            pf_loop,
            arg_names,
            tuple(td_loop.captures),
            depth=2,
            name=f"{name}.pf",
        )
        tasks.update(inner_tasks)
        pf_task = outline_task(
            name=f"{name}.pf",
            uses=subtree_uses(pf_loop, arg_names),
            captures=tuple(td_loop.captures),
            depth=1,
        )

        def pf_microtask(tc, rt, values):
            ivs_outer = _outer_ivs(pf_task, values)
            trip = yield from evaluate_trip(tc, pf_loop, values, ivs_outer)
            yield from charge_schedule_setup(tc)
            acc = yield from _run_for(
                tc, rt, pf_node, trip, pf_loop.user_iv, content, ivs_outer, values
            )
            if pf_node.reduction is not None:
                yield from _finish_for_reduction(
                    tc, rt, pf_node, acc, ivs_outer, values
                )

        pf_id = table.register(pf_microtask, pf_task.layout, pf_task.name, kind="parallel")
        tasks[pf_task.name] = (pf_task, pf_id)
        has_pre, has_post = td_loop.pre is not None, td_loop.post is not None

        def iteration(tc, rt, ivs, env):
            if has_pre:
                locals_ = yield from td_loop.pre(tc, ivs, env)
                env = {**env, **(locals_ or {})}
            values = build_task_values(pf_task, env, ivs)
            yield from rt_parallel(tc, rt, pf_id, values)
            if has_post:
                yield from td_loop.post(tc, ivs, env)

    def entry_factory(cfg, gmem, counters, args):
        env0 = {u: args[u] for u in total_uses}

        def entry(tc):
            rt = TeamRuntime.get(tc, cfg, gmem, table, counters)
            role = yield from target_init(tc, rt)
            if role == ROLE_RETIRED:
                return
            if role == ROLE_WORKER:
                yield from team_worker_loop(tc, rt)
                return
            trip = yield from evaluate_trip(tc, td_loop, env0, ())
            yield from charge_schedule_setup(tc)
            for k in distribute_indices(
                trip, tc.block_id, tc.num_blocks, node.schedule, node.dist_chunk
            ):
                iv = td_loop.user_iv(k)
                yield from iteration(tc, rt, (iv,), env0)
                yield Compute("alu", 1)
            if role == ROLE_MAIN:
                yield from target_deinit(tc, rt)

        return entry

    return CompiledKernel(
        name=name,
        target=target,
        report=report,
        table=table,
        arg_names=tuple(arg_names),
        tasks=tasks,
        total_uses=total_uses,
        entry_factory=entry_factory,
    )


# ---------------------------------------------------------------------------


def compile_kernel(
    target: Target, arg_names: Sequence[str], name: str = "kernel"
) -> CompiledKernel:
    """Lower a directive tree into a launchable :class:`CompiledKernel`."""
    if not isinstance(target, Target):
        raise CodegenError(
            f"compile_kernel expects a Target tree, got {type(target).__name__}"
        )
    report = analyze_modes(target)
    table = DispatchTable()
    child = target.child
    if isinstance(child, TeamsDistributeParallelFor):
        return _compile_tdpf(target, child, tuple(arg_names), name, table, report)
    return _compile_teams_distribute(target, child, tuple(arg_names), name, table, report)
