"""Variable globalization (§4.3 of the paper).

When a ``simd`` loop executes in the CPU-centric generic mode, variables the
outlined loop body references must be visible to the whole SIMD group, so
local (thread-private) storage is promoted:

* *captured scalars* are staged through the variable sharing space — that
  happens mechanically in :mod:`repro.runtime.sharing`;
* *local array allocations* are re-homed from lane-private memory into
  team-shared memory (this module's :func:`globalized_alloc`);
* *untraceable* values (our stand-in: buffers the compiler did not see at
  outlining) are copied to shared memory just before the loop.

:func:`plan` produces the compile-time report of these decisions, used by
DESIGN/EXPERIMENTS reporting and asserted on by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.codegen.directives import Target, iter_loops
from repro.codegen.spmdization import SpmdReport
from repro.runtime.icv import ExecMode
from repro.runtime.state import TeamRuntime


@dataclass
class GlobalizationDecision:
    """One variable's storage decision."""

    task: str
    var: str
    kind: str  # "capture-scalar" | "use-buffer" | "local-array"
    storage: str  # "register" | "sharing-space" | "team-shared"
    reason: str


@dataclass
class GlobalizationPlan:
    decisions: List[GlobalizationDecision] = field(default_factory=list)

    @property
    def promoted(self) -> List[GlobalizationDecision]:
        return [d for d in self.decisions if d.storage != "register"]

    def describe(self) -> str:
        return "\n".join(
            f"{d.task}:{d.var} [{d.kind}] -> {d.storage} ({d.reason})"
            for d in self.decisions
        )


def plan(target: Target, report: SpmdReport) -> GlobalizationPlan:
    """Compile-time globalization decisions for every outlined region."""
    out = GlobalizationPlan()
    parallel_generic = report.parallel_mode is ExecMode.GENERIC
    teams_generic = report.teams_mode is ExecMode.GENERIC
    enclosing_captures: list = []
    for node, loop, depth in iter_loops(target):
        if node.kind == "simd":
            staged = parallel_generic
            storage = "sharing-space" if staged else "register"
            reason = (
                "generic parallel: SIMD workers fetch the payload from the "
                "variable sharing space"
                if staged
                else "SPMD parallel: payload stays thread-local"
            )
        elif node.kind in ("parallel_for", "tdpf"):
            staged = teams_generic
            storage = "sharing-space" if staged else "register"
            reason = (
                "generic teams: workers fetch the payload from the team "
                "staging slots"
                if staged
                else "SPMD teams: payload stays thread-local"
            )
        else:
            continue
        task = f"{node.kind}:{loop.name}"
        # Captures declared by *enclosing* loops travel in this task's
        # payload; the innermost task carries the whole chain.
        for name, _ in enclosing_captures:
            out.decisions.append(
                GlobalizationDecision(task, name, "capture-scalar", storage, reason)
            )
        uses = loop.uses if loop.uses is not None else ("<all args>",)
        for name in uses:
            out.decisions.append(
                GlobalizationDecision(task, name, "use-buffer", storage, reason)
            )
        enclosing_captures.extend(loop.captures)
    return out


def globalized_alloc(tc, rt: TeamRuntime, name: str, size: int, dtype, shared: bool):
    """Allocate a per-iteration scratch array with the §4.3 promotion rule.

    ``shared=True`` (generic-mode simd) re-homes the allocation into team
    shared memory via :meth:`TeamRuntime.globalize_shared` so SIMD workers
    can see it; otherwise it stays a lane-private allocation.
    """
    if shared:
        return rt.globalize_shared(name, size, dtype)
    return tc.alloca(name, size, dtype)
