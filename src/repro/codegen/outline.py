"""Loop-task outlining: payload layouts and capture plumbing (§4.1–4.2).

The paper's codegen isolates loop bodies into outlined functions whose free
variables travel as a packed pointer-array payload.  This module computes,
for each outlined region, the static :class:`~repro.runtime.payload.
PayloadLayout` it is compiled against:

* the launch-argument buffers its subtree references (``uses``);
* the locals captured from enclosing sequential ``pre`` code (``captures``,
  with declared slot kinds);
* the enclosing loop variables (``__iv0``, ``__iv1``, …) the body needs to
  reconstruct its position — real outlining passes these in the payload
  struct the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import OutliningError
from repro.codegen.canonical_loop import CanonicalLoop
from repro.runtime.payload import PayloadLayout


def iv_key(level: int) -> str:
    """Payload slot name of the enclosing loop variable at ``level``."""
    return f"__iv{level}"


def resolve_uses(loop: CanonicalLoop, arg_names: Sequence[str]) -> Tuple[str, ...]:
    """Launch-argument names a loop's own content references."""
    if loop.uses is None:
        return tuple(arg_names)
    unknown = [u for u in loop.uses if u not in arg_names]
    if unknown:
        raise OutliningError(
            f"loop {loop.name!r} uses undeclared launch args {unknown}; "
            f"declared: {list(arg_names)}"
        )
    return tuple(loop.uses)


def subtree_uses(loop: CanonicalLoop, arg_names: Sequence[str]) -> Tuple[str, ...]:
    """Union (stable order) of uses of ``loop`` and every nested loop."""
    seen = []
    node_loop = loop
    while True:
        for u in resolve_uses(node_loop, arg_names):
            if u not in seen:
                seen.append(u)
        if node_loop.nested is None:
            return tuple(seen)
        node_loop = node_loop.nested.loop


@dataclass(frozen=True)
class OutlinedTask:
    """Static metadata of one outlined function."""

    name: str
    #: Launch-arg buffer names in the payload.
    uses: Tuple[str, ...]
    #: Captured locals: (name, kind) pairs, outermost scope first.
    captures: Tuple[Tuple[str, str], ...]
    #: Number of enclosing loop variables shipped as ``__iv`` slots.
    depth: int
    layout: PayloadLayout

    @property
    def nargs(self) -> int:
        return len(self.layout)


def outline_task(
    name: str,
    uses: Sequence[str],
    captures: Sequence[Tuple[str, str]],
    depth: int,
) -> OutlinedTask:
    """Build the payload layout of an outlined function.

    Slot order: buffer uses, then captured locals, then enclosing loop
    variables — a fixed ABI both the packer (SIMD main) and unpacker
    (workers) agree on, like the aggregate struct in the paper's §4.1.
    """
    names = set()
    entries = []
    for u in uses:
        entries.append((u, "buf"))
        names.add(u)
    for cname, ckind in captures:
        if cname in names:
            raise OutliningError(f"capture {cname!r} shadows a payload entry")
        entries.append((cname, ckind))
        names.add(cname)
    for level in range(depth):
        entries.append((iv_key(level), "i64"))
    return OutlinedTask(
        name=name,
        uses=tuple(uses),
        captures=tuple((n, k) for n, k in captures),
        depth=depth,
        layout=PayloadLayout.build(entries),
    )
