"""The launchable artifact produced by the OpenMP IR builder.

A :class:`CompiledKernel` bundles everything the launcher needs: the
directive tree, the resolved execution modes (with the analysis report), the
dispatch table of outlined functions, and the entry-generator factory the IR
builder lowered.  It is immutable after compilation; the same kernel can be
launched many times with different geometries and argument bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

from repro.errors import CodegenError
from repro.codegen.directives import Target
from repro.codegen.outline import OutlinedTask
from repro.codegen.spmdization import SpmdReport
from repro.runtime.dispatch import DispatchTable
from repro.runtime.icv import ExecMode


@dataclass
class CompiledKernel:
    """A compiled target region, ready to launch."""

    name: str
    target: Target
    report: SpmdReport
    table: DispatchTable
    arg_names: Tuple[str, ...]
    #: Outlined tasks by name -> (metadata, fn_id).
    tasks: Dict[str, Tuple[OutlinedTask, int]]
    #: All launch-arg names referenced anywhere in the tree.
    total_uses: Tuple[str, ...]
    #: factory(cfg, gmem, counters, args) -> entry generator function.
    entry_factory: Callable = field(repr=False, default=None)

    @property
    def has_simd(self) -> bool:
        """Whether the tree contains a ``simd`` construct.

        Without one, SIMD groups are meaningless: launches force group size
        1, reproducing the paper's "in the case where the simd directive is
        unused, parallel regions will always execute in SPMD mode with a
        SIMD group size of one" (§5.4).
        """
        from repro.codegen.directives import iter_loops

        return any(node.kind == "simd" for node, _, _ in iter_loops(self.target))

    @property
    def launch_hints(self):
        """``(num_teams, thread_limit)`` clause hints of the teams construct."""
        child = self.target.child
        return (getattr(child, "num_teams", None), getattr(child, "thread_limit", None))

    @property
    def simdlen_hint(self):
        """The ``simdlen`` clause of the kernel's simd construct, if any."""
        from repro.codegen.directives import iter_loops

        for node, _, _ in iter_loops(self.target):
            if node.kind == "simd" and node.simdlen is not None:
                return node.simdlen
        return None

    @property
    def teams_mode(self) -> ExecMode:
        return self.report.teams_mode

    @property
    def parallel_mode(self) -> ExecMode:
        return self.report.parallel_mode

    def make_entry(self, cfg, gmem, counters, args: Dict[str, object]):
        """Bind launch arguments and produce the per-thread entry generator."""
        missing = [u for u in self.total_uses if u not in args]
        if missing:
            raise CodegenError(
                f"kernel {self.name!r} launch is missing args {missing}; "
                f"expected {list(self.total_uses)}"
            )
        return self.entry_factory(cfg, gmem, counters, args)

    def describe(self) -> str:
        lines = [f"kernel {self.name!r}: {self.report.describe()}"]
        for tname, (task, fn_id) in self.tasks.items():
            lines.append(
                f"  task #{fn_id} {tname}: uses={list(task.uses)} "
                f"captures={[c for c, _ in task.captures]} depth={task.depth}"
            )
        return "\n".join(lines)
