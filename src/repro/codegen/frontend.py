"""Pragma-string frontend: a miniature of Clang's directive parsing (§4.2).

Where Clang turns ``#pragma omp teams distribute parallel for`` tokens into
an ``OMPExecutableDirective``, :func:`pragma` turns the equivalent string
(with a small clause grammar) into our directive nodes::

    node = pragma("teams distribute parallel for schedule(static_cyclic,2)",
                  my_loop)
    prog = pragma("target", node)

Supported clause syntax: ``schedule(kind[,chunk])``, ``simdlen(n)``,
``mode(generic|spmd)``.  Unknown directives or clauses raise
:class:`~repro.errors.CodegenError` with the offending token, like a
compiler diagnostic.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from repro.errors import CodegenError
from repro.codegen.canonical_loop import CanonicalLoop
from repro.codegen.directives import (
    Directive,
    ParallelFor,
    Simd,
    Target,
    TeamsDistribute,
    TeamsDistributeParallelFor,
)
from repro.core.clauses import parse_mode, parse_schedule
from repro.runtime.icv import ExecMode

_CLAUSE_RE = re.compile(r"(\w+)\s*\(([^)]*)\)")

#: Directive spellings, longest first so prefixes do not shadow.
_DIRECTIVES = (
    "target teams distribute parallel for simd",
    "target teams distribute parallel for",
    "target teams distribute",
    "teams distribute parallel for simd",
    "teams distribute parallel for",
    "teams distribute",
    "parallel for simd",
    "parallel for",
    "simd",
    "target",
)


def _split(text: str) -> Tuple[str, Dict[str, str]]:
    """Split pragma text into the directive name and its clauses."""
    text = text.strip()
    if text.startswith("#pragma"):
        text = text.split("omp", 1)[-1].strip()
    clauses = {m.group(1): m.group(2) for m in _CLAUSE_RE.finditer(text)}
    head = _CLAUSE_RE.sub("", text).strip()
    head = re.sub(r"\s+", " ", head)
    for name in _DIRECTIVES:
        if head == name:
            return name, clauses
    raise CodegenError(
        f"unknown or unsupported directive {head!r}; supported: {_DIRECTIVES}"
    )


def pragma(text: str, operand=None) -> Directive:
    """Build a directive node from pragma text.

    ``operand`` is the associated loop (:class:`CanonicalLoop`) for loop
    directives, or the child directive for ``target``.  The combined
    ``... simd`` spellings expect the loop's ``nested`` to already hold the
    :class:`Simd` node (matching how Clang splits combined directives).
    """
    name, raw = _split(text)
    if name != "target" and name.startswith("target "):
        # Split the combined target spelling: clauses apply to the inner
        # construct; the teams mode can only be forced via mode() on a bare
        # ``target`` pragma.
        clause_text = " ".join(f"{k}({v})" for k, v in raw.items())
        inner = pragma(f"{name[len('target '):]} {clause_text}", operand)
        return Target(inner)
    schedule = parse_schedule(raw["schedule"]) if "schedule" in raw else None
    mode = parse_mode(raw["mode"]) if "mode" in raw else ExecMode.AUTO
    simdlen: Optional[int] = int(raw["simdlen"]) if "simdlen" in raw else None
    num_teams: Optional[int] = int(raw["num_teams"]) if "num_teams" in raw else None
    thread_limit: Optional[int] = (
        int(raw["thread_limit"]) if "thread_limit" in raw else None
    )
    known = {"schedule", "simdlen", "mode", "num_teams", "thread_limit"}
    unknown = set(raw) - known
    if unknown:
        raise CodegenError(f"unknown clause(s) {sorted(unknown)} on {name!r}")

    def want_loop() -> CanonicalLoop:
        if not isinstance(operand, CanonicalLoop):
            raise CodegenError(f"directive {name!r} needs a CanonicalLoop operand")
        return operand

    if name == "target":
        if not isinstance(operand, Directive):
            raise CodegenError("target needs a directive operand")
        return Target(operand, teams_mode=mode)
    if name == "simd":
        return Simd(want_loop(), simdlen=simdlen)
    if name in ("parallel for", "parallel for simd"):
        sched = schedule or parse_schedule("static_cyclic")
        return ParallelFor(want_loop(), mode=mode, schedule=sched.kind, chunk=sched.chunk)
    if name in ("teams distribute",):
        sched = schedule or parse_schedule("static")
        return TeamsDistribute(
            want_loop(), schedule=sched.kind,
            num_teams=num_teams, thread_limit=thread_limit,
        )
    if name in (
        "teams distribute parallel for",
        "teams distribute parallel for simd",
    ):
        sched = schedule or parse_schedule("static_cyclic")
        return TeamsDistributeParallelFor(
            want_loop(), mode=mode, schedule=sched.kind, chunk=sched.chunk,
            num_teams=num_teams, thread_limit=thread_limit,
        )
    raise CodegenError(f"unhandled directive {name!r}")  # pragma: no cover
