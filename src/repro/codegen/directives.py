"""Directive tree nodes — the supported construct matrix.

Like the early LLVM offloading implementations the paper builds on, the
lowering supports a closed matrix of construct combinations (everything the
paper's evaluation needs, §6):

* ``Target(TeamsDistribute(loop))`` — outer loop across teams; each
  iteration's content may be a leaf body or a nested :class:`ParallelFor`
  (the classic two-level shape; the teams region runs **generic**);
* ``Target(TeamsDistributeParallelFor(loop))`` — the combined construct:
  iterations split across (team × OpenMP thread); content may be a leaf
  body or a nested :class:`Simd` (the three-level shape; the teams region
  runs **SPMD**);
* ``ParallelFor(loop)`` — inner worksharing across the team's SIMD groups;
  content may be a leaf body or a nested :class:`Simd`;
* ``Simd(loop)`` — innermost; leaf body only.

Nesting is validated eagerly so a malformed tree fails at construction with
a :class:`~repro.errors.DirectiveNestingError`, not at launch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DirectiveNestingError
from repro.codegen.canonical_loop import CanonicalLoop
from repro.runtime.icv import ExecMode
from repro.runtime.workshare import SCHEDULES


def _check_for_reduction(reduction, loop) -> None:
    if reduction is None:
        return
    op, finalize = reduction
    if op not in ("add", "max", "min"):
        raise DirectiveNestingError(
            f"unsupported reduction op {op!r}; expected add/max/min"
        )
    if not callable(finalize):
        raise DirectiveNestingError("reduction finalizer must be callable")
    if loop.body is None:
        raise DirectiveNestingError(
            "for-level reductions require a leaf loop body (combine it with "
            "a simd-level reduction instead for three-level reduces)"
        )


def _check_schedule(schedule: str, chunk: int) -> None:
    if schedule not in SCHEDULES:
        raise DirectiveNestingError(
            f"unknown schedule {schedule!r}; expected one of {SCHEDULES}"
        )
    if chunk < 1:
        raise DirectiveNestingError("schedule chunk must be >= 1")


class Directive:
    """Base class for directive nodes."""

    kind = "directive"


@dataclass
class Simd(Directive):
    """``#pragma omp simd`` — innermost, leaf-body loop.

    ``reduction`` is the future-work extension (§7): an ``(op, finalize)``
    pair where ``op`` ∈ {"add", "max", "min"} combines the values returned
    by the loop body across iterations and group lanes, and ``finalize`` is
    a generator ``finalize(tc, ivs, view, total)`` the SIMD main thread runs
    with the group total (e.g. storing a row sum).
    """

    loop: CanonicalLoop
    #: ``simdlen`` hint; the actual group size is the launch's ``simd_len``.
    simdlen: Optional[int] = None
    #: Optional reduction clause: (op, finalize generator fn).
    reduction: Optional[tuple] = None
    #: True models a loop body defined in another translation unit: the
    #: dispatch if/cascade cannot see it, so calls take the indirect
    #: fallback path (§5.5) — used by ablation A2.
    external: bool = False
    kind = "simd"

    def __post_init__(self) -> None:
        if self.loop.body is None:
            raise DirectiveNestingError(
                "simd must be the innermost construct (leaf body only)"
            )
        if self.simdlen is not None and self.simdlen < 1:
            raise DirectiveNestingError("simdlen must be >= 1")
        if self.reduction is not None:
            op, finalize = self.reduction
            if op not in ("add", "max", "min"):
                raise DirectiveNestingError(
                    f"unsupported reduction op {op!r}; expected add/max/min"
                )
            if not callable(finalize):
                raise DirectiveNestingError("reduction finalizer must be callable")


@dataclass
class ParallelFor(Directive):
    """``#pragma omp parallel for`` across the team's SIMD groups."""

    loop: CanonicalLoop
    mode: ExecMode = ExecMode.AUTO
    schedule: str = "static_cyclic"
    chunk: int = 1
    #: ``reduction`` clause for the for loop (§7 extension beyond simd):
    #: (op, finalize) — the leaf body returns a value per iteration,
    #: executors accumulate, and the first executor runs
    #: ``finalize(tc, ivs_outer, view, team_total)`` once per region.
    reduction: Optional[tuple] = None
    kind = "parallel_for"

    def __post_init__(self) -> None:
        _check_schedule(self.schedule, self.chunk)
        _check_for_reduction(self.reduction, self.loop)
        nested = self.loop.nested
        if nested is not None and not isinstance(nested, Simd):
            raise DirectiveNestingError(
                "parallel for may only nest a simd construct, got "
                f"{type(nested).__name__}"
            )


@dataclass
class TeamsDistribute(Directive):
    """``#pragma omp teams distribute`` — outer loop across teams."""

    loop: CanonicalLoop
    #: ``dist_schedule`` of the distribute level (how iterations map to
    #: teams): "static" contiguous blocks (the default) or "static_cyclic"
    #: round-robin chunks of ``dist_chunk``.
    schedule: str = "static"
    dist_chunk: int = 1
    #: ``num_teams`` / ``thread_limit`` clause hints, used as launch
    #: defaults when the caller does not pass a geometry.
    num_teams: Optional[int] = None
    thread_limit: Optional[int] = None
    kind = "teams_distribute"

    def __post_init__(self) -> None:
        if self.schedule not in ("static", "static_cyclic"):
            raise DirectiveNestingError(
                "dist_schedule must be static or static_cyclic, got "
                f"{self.schedule!r}"
            )
        if self.dist_chunk < 1:
            raise DirectiveNestingError("dist_chunk must be >= 1")
        nested = self.loop.nested
        if nested is not None and not isinstance(nested, ParallelFor):
            raise DirectiveNestingError(
                "teams distribute may only nest a parallel for construct, "
                f"got {type(nested).__name__}"
            )


@dataclass
class TeamsDistributeParallelFor(Directive):
    """The combined ``teams distribute parallel for`` construct.

    Iterations are split across teams (contiguous ``distribute`` chunks) and
    then across each team's SIMD groups (``for`` schedule).  Because
    distribute and for share the loop, there is no sequential scheduling
    code for a team main thread to run — this is why the paper's three-level
    kernels get an SPMD teams region (§6.3).
    """

    loop: CanonicalLoop
    schedule: str = "static_cyclic"
    chunk: int = 1
    mode: ExecMode = ExecMode.AUTO  # parallel-level mode override
    #: ``dist_schedule`` controlling the distribute (team) level split.
    dist_schedule: str = "static"
    dist_chunk: int = 1
    #: for-level ``reduction`` clause (see :class:`ParallelFor`).
    reduction: Optional[tuple] = None
    #: ``num_teams`` / ``thread_limit`` clause hints (launch defaults).
    num_teams: Optional[int] = None
    thread_limit: Optional[int] = None
    kind = "tdpf"

    def __post_init__(self) -> None:
        _check_schedule(self.schedule, self.chunk)
        _check_for_reduction(self.reduction, self.loop)
        if self.dist_schedule not in ("static", "static_cyclic"):
            raise DirectiveNestingError(
                "dist_schedule must be static or static_cyclic, got "
                f"{self.dist_schedule!r}"
            )
        if self.dist_chunk < 1:
            raise DirectiveNestingError("dist_chunk must be >= 1")
        nested = self.loop.nested
        if nested is not None and not isinstance(nested, Simd):
            raise DirectiveNestingError(
                "teams distribute parallel for may only nest a simd "
                f"construct, got {type(nested).__name__}"
            )


@dataclass
class Target(Directive):
    """``#pragma omp target`` — the offloaded region."""

    child: Directive
    teams_mode: ExecMode = ExecMode.AUTO
    kind = "target"

    def __post_init__(self) -> None:
        if not isinstance(self.child, (TeamsDistribute, TeamsDistributeParallelFor)):
            raise DirectiveNestingError(
                "target must contain a teams distribute or combined teams "
                f"distribute parallel for construct, got {type(self.child).__name__}"
            )


def iter_loops(node: Directive):
    """Yield ``(directive, loop, depth)`` for every loop in the tree."""
    if isinstance(node, Target):
        yield from iter_loops(node.child)
        return
    loop = node.loop
    depth = 0
    while True:
        yield node, loop, depth
        if loop.nested is None:
            return
        node = loop.nested
        loop = node.loop
        depth += 1
