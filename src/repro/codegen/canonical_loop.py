"""``OMPCanonicalLoop``: normalized loops with trip-count and body callbacks.

Clang represents every OpenMP loop directive over an ``OMPCanonicalLoop``
node that can produce (a) the loop's trip count and (b) the mapping from the
logical iteration number to the user's loop variable (§4.2 of the paper).
Our :class:`CanonicalLoop` plays the same role:

* ``trip_count`` may be a plain ``int``, a host-evaluable callable
  ``f(view, *outer_ivs) -> int``, or a device generator
  ``g(tc, view, *outer_ivs)`` that loads memory to compute the count (e.g.
  ``row_ptr[i+1] - row_ptr[i]`` for the sparse kernel) — the paper's
  "callback to generate the trip count of the loop";
* ``start``/``step`` map the normalized induction value ``k`` to the user
  loop variable ``start + k*step`` — the body callback then receives the
  user-facing value;
* ``body`` is the loop-body callback: a generator
  ``body(tc, ivs, view)`` where ``ivs`` is the tuple of all enclosing loop
  variables (outermost first) and ``view`` the named argument environment;
* alternatively ``nested`` holds a nested directive, with optional ``pre`` /
  ``post`` sequential per-iteration code around it.  ``pre`` is a generator
  ``pre(tc, ivs, view) -> dict`` whose returned locals are captured into the
  nested construct's payload (``captures`` declares their names and slot
  kinds); non-``None`` ``pre``/``post`` is what breaks tight nesting and
  forces generic mode (§5.4).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple, Union

from repro.errors import CodegenError
from repro.gpu.events import Compute

TripCount = Union[int, Callable]


@dataclass
class CanonicalLoop:
    """A normalized OpenMP loop: trip count, iv mapping, and content."""

    trip_count: TripCount
    body: Optional[Callable] = None
    nested: Optional[object] = None  # a directive node
    pre: Optional[Callable] = None
    post: Optional[Callable] = None
    #: Launch-argument names the content references (None = all).
    uses: Optional[Sequence[str]] = None
    #: Locals produced by ``pre`` to pass into ``nested``: (name, kind)
    #: pairs with kind in {"buf", "f64", "i64"}.
    captures: Tuple[Tuple[str, str], ...] = ()
    start: int = 0
    step: int = 1
    name: str = "loop"

    def __post_init__(self) -> None:
        if (self.body is None) == (self.nested is None):
            raise CodegenError(
                f"loop {self.name!r} must have exactly one of body= or nested="
            )
        if self.body is not None and (self.pre or self.post or self.captures):
            raise CodegenError(
                f"loop {self.name!r}: pre/post/captures only apply around a "
                "nested construct"
            )
        if self.step == 0:
            raise CodegenError(f"loop {self.name!r} has step 0")
        if self.captures and self.pre is None:
            raise CodegenError(
                f"loop {self.name!r} declares captures but has no pre= to "
                "produce them"
            )

    # ------------------------------------------------------------------
    @property
    def tight(self) -> bool:
        """True when the nested construct is tightly nested (no pre/post)."""
        return self.pre is None and self.post is None

    def user_iv(self, k: int) -> int:
        """Map a normalized induction value to the user loop variable."""
        return self.start + k * self.step

    def static_trip(self) -> Optional[int]:
        """The trip count if it is a compile-time constant, else None."""
        return self.trip_count if isinstance(self.trip_count, int) else None


def evaluate_trip(tc, loop: CanonicalLoop, view, outer_ivs: Tuple[int, ...]):
    """Device-side trip count evaluation (a generator).

    Constant counts are free; host callables charge one ALU op for the
    bound arithmetic; device generators run with their memory traffic
    charged like any other device code.
    """
    trip = loop.trip_count
    if isinstance(trip, int):
        if trip < 0:
            raise CodegenError(f"loop {loop.name!r} has negative trip count")
        return trip
    if inspect.isgeneratorfunction(trip):
        value = yield from trip(tc, view, *outer_ivs)
    else:
        yield Compute("alu", 1)
        value = trip(view, *outer_ivs)
    value = int(value)
    if value < 0:
        raise CodegenError(
            f"loop {loop.name!r} trip count callback returned {value}"
        )
    return value


def from_range(
    start: int, stop: int, step: int = 1, **kwargs
) -> CanonicalLoop:
    """Build a canonical loop from ``range(start, stop, step)`` semantics."""
    if step == 0:
        raise CodegenError("step must be nonzero")
    span = stop - start
    trip = max(0, -(-span // step) if step > 0 else -(span // -step))
    # Normalize: iv k in [0, trip) maps to start + k*step.
    return CanonicalLoop(trip_count=trip, start=start, step=step, **kwargs)
