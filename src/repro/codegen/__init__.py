"""Mini Clang / OpenMP-IRBuilder: directive trees lowered onto the runtime.

The paper's codegen contribution (§4) is reproduced structurally:

* :mod:`repro.codegen.canonical_loop` — ``OMPCanonicalLoop``: normalized
  loops with trip-count and body callbacks;
* :mod:`repro.codegen.directives` — the directive tree (the supported
  construct matrix);
* :mod:`repro.codegen.outline` — loop-task outlining: payload layouts and
  capture plumbing for the outlined functions;
* :mod:`repro.codegen.globalize` — variable globalization decisions (§4.3);
* :mod:`repro.codegen.spmdization` — tightly-nested analysis choosing
  GENERIC vs SPMD per level (§3.2, §5.4);
* :mod:`repro.codegen.irbuilder` / :mod:`repro.codegen.program` — lowering
  into runtime calls and the launchable :class:`CompiledKernel`;
* :mod:`repro.codegen.frontend` — the user-facing builder ("mini-Clang").
"""

from repro.codegen.canonical_loop import CanonicalLoop
from repro.codegen.directives import (
    Simd,
    ParallelFor,
    Target,
    TeamsDistribute,
    TeamsDistributeParallelFor,
)
from repro.codegen.program import CompiledKernel
from repro.codegen.irbuilder import compile_kernel
from repro.codegen.spmdization import SpmdReport, analyze_modes

__all__ = [
    "CanonicalLoop",
    "CompiledKernel",
    "ParallelFor",
    "Simd",
    "SpmdReport",
    "Target",
    "TeamsDistribute",
    "TeamsDistributeParallelFor",
    "analyze_modes",
    "compile_kernel",
]
