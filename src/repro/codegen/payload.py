"""Payload packing/unpacking (re-export).

The conversion helpers live in :mod:`repro.runtime.payload` because the
runtime unpacks payloads on the device side; codegen builds the layouts in
:mod:`repro.codegen.outline`.  This module keeps the DESIGN.md name stable
for users looking for "payload" under codegen.
"""

from repro.runtime.payload import (
    PayloadLayout,
    bits_to_f64,
    bits_to_i64,
    f64_to_bits,
    i64_to_bits,
)

__all__ = [
    "PayloadLayout",
    "bits_to_f64",
    "bits_to_i64",
    "f64_to_bits",
    "i64_to_bits",
]
