"""SPMDization analysis: choosing GENERIC vs SPMD per level.

The rules follow the paper's §3.2/§5.4 and its §6 experiment descriptions:

* **teams**: a combined ``teams distribute parallel for`` runs SPMD — there
  is no sequential scheduling code between the teams and parallel levels.
  A ``teams distribute`` whose iterations contain a ``parallel`` construct
  runs GENERIC: the team main thread iterates the distribute loop and
  launches parallel regions ("With this structure the teams region will run
  in generic mode", §6.3).
* **parallel**: SPMD iff every nested ``simd`` is *tightly* nested (no
  sequential ``pre``/``post`` code around it) — "The simplest case for when
  SPMD is applicable is when all affected OpenMP regions are tightly
  nested" (§3.2).  A leaf parallel loop (no ``simd``) is SPMD with group
  size one, identical to the pre-existing two-level behaviour (§5.4).

Forcing a mode with a clause overrides the analysis.  Forcing SPMD where
the analysis says GENERIC is the *guarded SPMDization* extension the paper
cites from Huber et al. [16] and lists as future work for parallel regions:
it is allowed, flagged in the report, and requires the sequential code to
be side-effect-free under redundant execution (our ``pre`` callbacks are
value-producing only, so this holds by construction — but the broadcast
cost is then paid by every thread executing ``pre`` redundantly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import DirectiveNestingError
from repro.codegen.directives import (
    ParallelFor,
    Simd,
    Target,
    TeamsDistribute,
    TeamsDistributeParallelFor,
)
from repro.runtime.icv import ExecMode


@dataclass
class SpmdReport:
    """Outcome of the mode analysis, with human-readable reasoning."""

    teams_mode: ExecMode
    parallel_mode: ExecMode
    reasons: List[str] = field(default_factory=list)
    #: True when a forced clause overrode the analysis (guarded SPMDization).
    forced: bool = False

    def describe(self) -> str:
        lines = [
            f"teams: {self.teams_mode.value}, parallel: {self.parallel_mode.value}"
            + (" (forced)" if self.forced else "")
        ]
        lines += [f"  - {r}" for r in self.reasons]
        return "\n".join(lines)


def _parallel_mode_for(loop) -> Tuple[ExecMode, str]:
    nested = loop.nested
    if nested is None:
        return (
            ExecMode.SPMD,
            "parallel loop is a leaf (no simd): SPMD with group size 1, "
            "identical to the two-level implementation (§5.4)",
        )
    assert isinstance(nested, Simd)
    if loop.tight:
        return (
            ExecMode.SPMD,
            "simd is tightly nested in the parallel loop: SPMD (§3.2)",
        )
    return (
        ExecMode.GENERIC,
        "sequential code surrounds the nested simd loop: generic mode with "
        "the SIMD worker state machine (§5.3)",
    )


def analyze_modes(target: Target) -> SpmdReport:
    """Resolve the execution mode of the teams and parallel levels."""
    if not isinstance(target, Target):
        raise DirectiveNestingError(
            f"analysis expects a Target tree, got {type(target).__name__}"
        )
    child = target.child
    reasons: List[str] = []
    forced = False

    if isinstance(child, TeamsDistributeParallelFor):
        teams_mode = ExecMode.SPMD
        reasons.append(
            "combined teams distribute parallel for: no sequential code "
            "between the teams and parallel levels — teams SPMD (§6.3)"
        )
        parallel_mode, why = _parallel_mode_for(child.loop)
        reasons.append(why)
        clause = child.mode
    elif isinstance(child, TeamsDistribute):
        teams_mode = ExecMode.GENERIC
        reasons.append(
            "teams distribute with per-iteration parallel regions: the team "
            "main thread schedules the distribute loop — teams generic (§6.3)"
        )
        inner = child.loop.nested
        if inner is None:
            parallel_mode = ExecMode.SPMD
            reasons.append(
                "no parallel construct: parallel level unused (SPMD, size 1)"
            )
            clause = ExecMode.AUTO
        else:
            assert isinstance(inner, ParallelFor)
            parallel_mode, why = _parallel_mode_for(inner.loop)
            reasons.append(why)
            clause = inner.mode
    else:  # pragma: no cover - Target validates this already
        raise DirectiveNestingError(f"unsupported target child {child!r}")

    # Clause overrides (guarded SPMDization / forced generic).
    if target.teams_mode is not ExecMode.AUTO and target.teams_mode != teams_mode:
        forced = True
        reasons.append(
            f"teams mode forced {teams_mode.value} -> {target.teams_mode.value} "
            "by clause"
            + (
                " (guarded SPMDization: sequential code will execute "
                "redundantly on all threads)"
                if target.teams_mode is ExecMode.SPMD
                else ""
            )
        )
        teams_mode = target.teams_mode
    if clause is not ExecMode.AUTO and clause != parallel_mode:
        forced = True
        reasons.append(
            f"parallel mode forced {parallel_mode.value} -> {clause.value} by "
            "clause"
            + (
                " (guarded SPMDization of the parallel region — the paper's "
                "§7 future work)"
                if clause is ExecMode.SPMD
                else ""
            )
        )
        parallel_mode = clause

    return SpmdReport(teams_mode, parallel_mode, reasons, forced)
