"""Public API layer (populated by repro.core.api)."""
