"""Execution-mode enum re-export for the public API surface."""

from repro.runtime.icv import ExecMode

__all__ = ["ExecMode"]
