"""Public API: build directive programs, compile them, launch them.

This is the surface a downstream user works with::

    import numpy as np
    from repro import Device, omp

    dev = Device()
    x = dev.from_array("x", np.arange(4096, dtype=np.float64))
    y = dev.from_array("y", np.zeros(4096))

    def body(tc, ivs, view):
        (i,) = ivs
        v = yield from tc.load(view["x"], i)
        yield from tc.compute("fma")
        yield from tc.store(view["y"], i, 2.0 * v)

    prog = omp.target(omp.teams_distribute_parallel_for(4096, body=body))
    result = omp.launch(dev, prog, num_teams=16, team_size=128,
                        args={"x": x, "y": y})
    print(result.cycles, result.cfg.describe())

Loop bodies are generator functions ``body(tc, ivs, view)`` — ``tc`` is the
device thread context, ``ivs`` the tuple of enclosing loop variables
(outermost first), ``view`` the named argument environment (launch-arg
buffers plus any locals captured from ``pre=`` callbacks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.errors import CodegenError
from repro.codegen.canonical_loop import CanonicalLoop
from repro.codegen.directives import (
    ParallelFor,
    Simd,
    Target,
    TeamsDistribute,
    TeamsDistributeParallelFor,
)
from repro.codegen.irbuilder import compile_kernel
from repro.codegen.program import CompiledKernel
from repro.gpu.counters import KernelCounters
from repro.gpu.device import Device
from repro.runtime.icv import DEFAULT_SHARING_BYTES, ExecMode, LaunchConfig
from repro.runtime.state import RuntimeCounters

__all__ = [
    "ExecMode",
    "LaunchResult",
    "collapsed_loop",
    "compile",
    "launch",
    "loop",
    "parallel_for",
    "simd",
    "target",
    "teams_distribute",
    "teams_distribute_parallel_for",
]


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def loop(
    trip_count,
    body=None,
    nested=None,
    pre=None,
    post=None,
    uses: Optional[Sequence[str]] = None,
    captures: Sequence[Tuple[str, str]] = (),
    start: int = 0,
    step: int = 1,
    name: str = "loop",
) -> CanonicalLoop:
    """Build a canonical loop (see :class:`~repro.codegen.canonical_loop.CanonicalLoop`)."""
    return CanonicalLoop(
        trip_count=trip_count,
        body=body,
        nested=nested,
        pre=pre,
        post=post,
        uses=uses,
        captures=tuple(captures),
        start=start,
        step=step,
        name=name,
    )


def collapsed_loop(
    trips: Sequence[int],
    body,
    uses: Optional[Sequence[str]] = None,
    name: str = "collapsed",
) -> CanonicalLoop:
    """Fuse perfectly nested loops — the ``collapse(n)`` clause (§7).

    ``trips`` are the component trip counts, outermost first; ``body``
    receives the decoded component indices in place of the fused induction
    value, with the div/mod decode charged as device ALU ops.  Leaf loops
    only (collapse of a loop containing further constructs is not part of
    the supported matrix).
    """
    from repro.runtime.collapse import collapsed_trip, decode_index_device

    trips = tuple(int(t) for t in trips)
    total = collapsed_trip(trips)

    def decode_body(tc, ivs, view):
        *outer, flat = ivs
        idx = yield from decode_index_device(tc, int(flat), trips)
        yield from body(tc, tuple(outer) + idx, view)

    return loop(total, body=decode_body, uses=uses, name=name)


def _as_loop(loop_or_trip, kwargs) -> CanonicalLoop:
    if isinstance(loop_or_trip, CanonicalLoop):
        if kwargs:
            raise CodegenError(
                "pass loop options either via a CanonicalLoop or keywords, not both"
            )
        return loop_or_trip
    return loop(loop_or_trip, **kwargs)


def simd(
    loop_or_trip,
    simdlen: Optional[int] = None,
    reduction: Optional[tuple] = None,
    external: bool = False,
    **loop_kwargs,
) -> Simd:
    """``#pragma omp simd`` over a loop (innermost, leaf body).

    ``reduction=(op, finalize)`` enables the reduction extension: the body
    returns a value per iteration, the runtime combines them across the
    group, and the SIMD main thread runs ``finalize(tc, ivs, view, total)``.
    ``external=True`` models a body from another translation unit, forcing
    the indirect-call dispatch fallback (§5.5).
    """
    return Simd(
        _as_loop(loop_or_trip, loop_kwargs),
        simdlen=simdlen,
        reduction=reduction,
        external=external,
    )


def parallel_for(
    loop_or_trip,
    mode: ExecMode = ExecMode.AUTO,
    schedule: str = "static_cyclic",
    chunk: int = 1,
    reduction: Optional[tuple] = None,
    **loop_kwargs,
) -> ParallelFor:
    """``#pragma omp parallel for`` across the team's SIMD groups.

    ``reduction=(op, finalize)`` is the for-level reduction clause: the
    leaf body returns a value per iteration, executors accumulate, and the
    first executor runs ``finalize(tc, ivs_outer, view, team_total)`` once
    per region instance.
    """
    return ParallelFor(
        _as_loop(loop_or_trip, loop_kwargs), mode=mode, schedule=schedule,
        chunk=chunk, reduction=reduction,
    )


def teams_distribute(
    loop_or_trip,
    schedule: str = "static",
    dist_chunk: int = 1,
    num_teams: Optional[int] = None,
    thread_limit: Optional[int] = None,
    **loop_kwargs,
) -> TeamsDistribute:
    """``#pragma omp teams distribute`` across the league.

    ``schedule`` is the ``dist_schedule``: "static" contiguous blocks or
    "static_cyclic" round-robin chunks of ``dist_chunk``.
    """
    return TeamsDistribute(
        _as_loop(loop_or_trip, loop_kwargs),
        schedule=schedule,
        dist_chunk=dist_chunk,
        num_teams=num_teams,
        thread_limit=thread_limit,
    )


def teams_distribute_parallel_for(
    loop_or_trip,
    mode: ExecMode = ExecMode.AUTO,
    schedule: str = "static_cyclic",
    chunk: int = 1,
    dist_schedule: str = "static",
    dist_chunk: int = 1,
    num_teams: Optional[int] = None,
    thread_limit: Optional[int] = None,
    reduction: Optional[tuple] = None,
    **loop_kwargs,
) -> TeamsDistributeParallelFor:
    """The combined ``teams distribute parallel for`` construct.

    ``reduction=(op, finalize)`` reduces leaf-body values across each
    team's executors; ``finalize`` runs once per team (accumulate across
    teams with an atomic in the finalizer).
    """
    return TeamsDistributeParallelFor(
        _as_loop(loop_or_trip, loop_kwargs),
        mode=mode,
        schedule=schedule,
        chunk=chunk,
        dist_schedule=dist_schedule,
        dist_chunk=dist_chunk,
        num_teams=num_teams,
        thread_limit=thread_limit,
        reduction=reduction,
    )


def target(child, teams_mode: ExecMode = ExecMode.AUTO) -> Target:
    """``#pragma omp target`` around a teams-level construct."""
    return Target(child, teams_mode=teams_mode)


def compile(
    tree: Target, arg_names: Sequence[str], name: str = "kernel"
) -> CompiledKernel:
    """Lower a directive tree into a launchable kernel."""
    return compile_kernel(tree, arg_names, name=name)


# ---------------------------------------------------------------------------
# Launch
# ---------------------------------------------------------------------------


@dataclass
class LaunchResult:
    """Everything one launch produced: counters, config, and the kernel."""

    kernel: CompiledKernel
    cfg: LaunchConfig
    counters: KernelCounters
    runtime: RuntimeCounters

    @property
    def cycles(self) -> float:
        """Cost-model cycle estimate of the kernel."""
        return self.counters.cycles

    @property
    def sanitizer(self):
        """Sanitizer report of the launch (None unless ``check=`` was set)."""
        return self.counters.sanitizer

    def summary(self) -> Dict[str, float]:
        out = self.counters.summary()
        out["simd_len"] = float(self.cfg.simd_len)
        out["num_teams"] = float(self.cfg.num_teams)
        out["team_size"] = float(self.cfg.team_size)
        return out


def launch(
    device: Device,
    kernel: Union[CompiledKernel, Target],
    num_teams: Optional[int] = None,
    team_size: Optional[int] = None,
    simd_len: Optional[int] = None,
    args: Optional[Dict[str, object]] = None,
    sharing_bytes: int = DEFAULT_SHARING_BYTES,
    name: str = "kernel",
    regs_per_thread: int = 32,
    detect_races: bool = False,
    check=None,
    schedule_policy=None,
    executor=None,
    engine: Optional[str] = None,
    faults=None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.05,
    resume: bool = False,
    stream=None,
) -> LaunchResult:
    """Launch a compiled kernel (or compile a tree on the fly) on ``device``.

    ``num_teams``/``team_size`` set the league geometry (``team_size`` is the
    worker-thread count; generic teams mode adds the extra main warp
    automatically).  ``simd_len`` is the SIMD group size — 1 reproduces the
    pre-paper two-level behaviour.  ``regs_per_thread`` is the register
    estimate the occupancy calculation uses (what ``-Xptxas -v`` would
    report for the generated kernel).

    ``check`` runs the launch under the correctness sanitizer
    (:mod:`repro.sanitizer`): ``True``/``"raise"`` raises on the first
    data race, ``"report"`` collects all findings into
    ``result.sanitizer``; a
    :class:`~repro.sanitizer.monitor.SanitizerConfig` gives full control.
    ``schedule_policy`` permutes warp/commit order (see
    :func:`repro.sanitizer.explore_schedules`).

    ``executor`` selects the launch engine for this call (e.g. a
    :class:`repro.exec.ParallelExecutor`); by default the device's
    executor, then the ``REPRO_EXECUTOR`` environment default, applies.
    ``engine`` selects the round engine
    (``"auto"``/``"instrumented"``/``"fast"``/``"jit"``) exactly like
    :meth:`Device.launch` — explicit fast/jit on a hooked launch is a
    :class:`~repro.errors.LaunchError`; the fuzz harness uses this to
    pin each differential leg.
    The runtime counters are registered as launch side state so the
    parallel engine merges their per-team deltas deterministically.

    ``faults``/``timeout``/``retries``/``backoff``/``resume`` pass
    straight through to :meth:`~repro.gpu.device.Device.launch` —
    fault-injection plan, wall-clock watchdog, launch-level
    retry-with-rollback, and block-granular checkpoint/resume (see
    ``docs/RESILIENCE.md``).

    ``stream`` (a :class:`repro.serve.Stream`) makes the call
    asynchronous: the launch is queued behind the stream's earlier
    launches and a :class:`repro.serve.LaunchHandle` is returned
    immediately — ``handle.result()`` yields the
    :class:`LaunchResult` (or re-raises the launch's error).  Launches
    on independent streams proceed concurrently, serialized only at
    the device (see ``docs/SERVE.md``).
    """
    args = dict(args or {})
    if isinstance(kernel, Target):
        kernel = compile_kernel(kernel, tuple(sorted(args)), name=name)
    if simd_len is None:
        # Honour the simd construct's simdlen clause; default to the
        # two-level behaviour (group size 1) like pre-paper LLVM.
        simd_len = kernel.simdlen_hint or 1
    if not kernel.has_simd:
        # §5.4: without a simd construct the group size is always one —
        # otherwise group lanes would execute leaf loop bodies redundantly.
        simd_len = 1
    hint_teams, hint_threads = kernel.launch_hints
    if num_teams is None:
        num_teams = hint_teams
    if team_size is None:
        team_size = hint_threads
    if num_teams is None or team_size is None:
        raise CodegenError(
            "launch needs num_teams and team_size — pass them or put "
            "num_teams/thread_limit clauses on the teams construct"
        )
    cfg = LaunchConfig(
        num_teams=num_teams,
        team_size=team_size,
        simd_len=simd_len,
        teams_mode=kernel.teams_mode,
        parallel_mode=kernel.parallel_mode,
        sharing_bytes=sharing_bytes,
        params=device.params,
    )
    def _run() -> LaunchResult:
        # Entry binding happens inside the stream's turn so a queued
        # launch observes buffer contents as of its ordered position,
        # not submission time.
        rc = RuntimeCounters()
        entry = kernel.make_entry(cfg, device.gmem, rc, args)
        kc = device.launch(
            entry,
            num_blocks=cfg.num_teams,
            threads_per_block=cfg.block_dim,
            regs_per_thread=regs_per_thread,
            detect_races=detect_races,
            sanitize=check,
            schedule_policy=schedule_policy,
            executor=executor,
            engine=engine,
            side_state=(rc,),
            faults=faults,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            resume=resume,
        )
        kc.extra.update(rc.as_dict())
        kc.extra["simd_len"] = float(cfg.simd_len)
        return LaunchResult(kernel=kernel, cfg=cfg, counters=kc, runtime=rc)

    if stream is not None:
        return stream.submit(_run)
    return _run()
