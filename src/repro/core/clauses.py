"""Clause helpers shared by the public API and the pragma frontend.

OpenMP clauses the reproduction understands:

* ``num_teams(n)`` / ``thread_limit(n)`` — launch geometry hints;
* ``simdlen(n)`` — SIMD group size hint (the launch's ``simd_len`` wins);
* ``schedule(kind[, chunk])`` — ``static`` | ``static_cyclic`` | ``dynamic``;
* ``mode(generic|spmd)`` — force an execution mode (guarded SPMDization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import CodegenError
from repro.runtime.icv import ExecMode
from repro.runtime.workshare import SCHEDULES


@dataclass(frozen=True)
class Schedule:
    """A parsed ``schedule`` clause."""

    kind: str = "static_cyclic"
    chunk: int = 1

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULES:
            raise CodegenError(
                f"unknown schedule kind {self.kind!r}; expected one of {SCHEDULES}"
            )
        if self.chunk < 1:
            raise CodegenError("schedule chunk must be >= 1")


def parse_schedule(text: str) -> Schedule:
    """Parse ``"static"`` / ``"static,4"`` / ``"static_cyclic, 2"`` etc."""
    parts = [p.strip() for p in text.split(",")]
    kind = parts[0]
    chunk = int(parts[1]) if len(parts) > 1 and parts[1] else 1
    return Schedule(kind, chunk)


def parse_mode(text: str) -> ExecMode:
    """Parse a mode clause value."""
    try:
        return ExecMode(text.strip().lower())
    except ValueError:
        raise CodegenError(
            f"unknown execution mode {text!r}; expected 'generic', 'spmd', or 'auto'"
        ) from None
