"""Argument payload layout, packing, and unpacking.

The paper's runtime passes outlined-function arguments as an array of
pointer-sized values ("These variables are always stored as pointers such
that each variable is a consistent size", §5.3.1).  We reproduce that: a
payload is a sequence of 64-bit slots, and a :class:`PayloadLayout` — static
metadata the outlined function was compiled with — says how to interpret
each slot:

``buf``
    a device buffer, stored as its global handle;
``f64`` / ``i64``
    a scalar passed by value, stored as its bit pattern (what Clang does
    for pointer-sized firstprivate captures).

Packing happens on the SIMD main thread before staging the slots into the
variable sharing space; unpacking happens on every thread that fetched the
slots.  The conversions themselves are register arithmetic (free); the
memory traffic of staging/fetching is charged where it happens, in
:mod:`repro.runtime.sharing` and :mod:`repro.runtime.simd`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import PayloadError
from repro.gpu.memory import Buffer, GlobalMemory

#: Slot interpretation kinds.
KINDS = ("buf", "f64", "i64")


def f64_to_bits(value: float) -> int:
    """Bit-cast a float64 to a uint64 slot value."""
    return int(np.float64(value).view(np.uint64))


def bits_to_f64(bits: int) -> float:
    """Bit-cast a uint64 slot value back to float64."""
    return float(np.uint64(bits).view(np.float64))


def i64_to_bits(value: int) -> int:
    """Reinterpret a (possibly negative) int64 as a uint64 slot value."""
    return int(np.int64(value).view(np.uint64))


def bits_to_i64(bits: int) -> int:
    return int(np.uint64(bits).view(np.int64))


@dataclass(frozen=True)
class PayloadLayout:
    """Static slot layout of one outlined function's argument payload."""

    entries: Tuple[Tuple[str, str], ...]  # (name, kind), in slot order

    @staticmethod
    def build(names_kinds: Sequence[Tuple[str, str]]) -> "PayloadLayout":
        for name, kind in names_kinds:
            if kind not in KINDS:
                raise PayloadError(f"unknown payload kind {kind!r} for {name!r}")
        return PayloadLayout(tuple((n, k) for n, k in names_kinds))

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(n for n, _ in self.entries)

    # -- conversions ------------------------------------------------------
    def pack(self, values: Dict[str, object], gmem: GlobalMemory) -> List[int]:
        """Convert named values into 64-bit slots, in layout order.

        Buffers from non-global spaces are registered in the handle table on
        first use so their references can travel (the real runtime does the
        analogous generic-pointer conversion).
        """
        slots: List[int] = []
        for name, kind in self.entries:
            try:
                value = values[name]
            except KeyError:
                raise PayloadError(
                    f"payload value {name!r} missing; have {sorted(values)}"
                ) from None
            if kind == "buf":
                if not isinstance(value, Buffer):
                    raise PayloadError(
                        f"payload entry {name!r} declared 'buf' but got "
                        f"{type(value).__name__}"
                    )
                slots.append(gmem.register(value))
            elif kind == "f64":
                slots.append(f64_to_bits(float(value)))
            else:  # i64
                slots.append(i64_to_bits(int(value)))
        return slots

    def unpack(self, slots: Sequence[int], gmem: GlobalMemory) -> Dict[str, object]:
        """Convert 64-bit slots back into named values."""
        if len(slots) != len(self.entries):
            raise PayloadError(
                f"payload arity mismatch: layout has {len(self.entries)} "
                f"entries, got {len(slots)} slots"
            )
        out: Dict[str, object] = {}
        for (name, kind), bits in zip(self.entries, slots):
            if kind == "buf":
                out[name] = gmem.lookup(int(bits))
            elif kind == "f64":
                out[name] = bits_to_f64(int(bits))
            else:
                out[name] = bits_to_i64(int(bits))
        return out
