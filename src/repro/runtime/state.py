"""Per-team runtime state: the Python port of the DeviceRTL team context.

One :class:`TeamRuntime` exists per thread block (per OpenMP team).  It owns
the shared-memory control state the paper's protocols communicate through:

* ``team_fn`` — the outlined-function id of the pending parallel region (0 =
  termination signal), written by the team main thread in generic mode;
* ``simd_fn`` / ``simd_trip`` — per-SIMD-group work descriptors, written by
  SIMD main threads (the paper's ``setSimdFn``/``getSimdFn``);
* the :class:`~repro.runtime.sharing.SharingSpace` for argument staging.

It also carries references the device code needs (launch config, dispatch
table, global memory) and the :class:`RuntimeCounters` the benchmark harness
reads back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.gpu.memory import GlobalMemory
from repro.runtime.dispatch import DispatchTable
from repro.runtime.icv import LaunchConfig
from repro.runtime.sharing import SharingSpace


@dataclass
class RuntimeCounters:
    """OpenMP-runtime-level statistics for one launch (all teams)."""

    #: Parallel regions executed, split by their execution mode.
    parallel_generic: int = 0
    parallel_spmd: int = 0
    #: ``__simd`` calls, split by path (Fig 4's two halves + the size-1 /
    #: AMD sequential fallback).
    simd_generic: int = 0
    simd_spmd: int = 0
    simd_sequential: int = 0
    #: Team-worker and SIMD-worker state machine wake-ups.
    worker_wakeups: int = 0
    simd_wakeups: int = 0
    #: Sharing-space overflows into global memory.
    sharing_fallbacks: int = 0
    #: Variables globalized (local -> shared/global) by codegen.
    globalized_vars: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "omp_parallel_generic": float(self.parallel_generic),
            "omp_parallel_spmd": float(self.parallel_spmd),
            "omp_simd_generic": float(self.simd_generic),
            "omp_simd_spmd": float(self.simd_spmd),
            "omp_simd_sequential": float(self.simd_sequential),
            "omp_worker_wakeups": float(self.worker_wakeups),
            "omp_simd_wakeups": float(self.simd_wakeups),
            "omp_sharing_fallbacks": float(self.sharing_fallbacks),
            "omp_globalized_vars": float(self.globalized_vars),
        }


class TeamRuntime:
    """Shared-memory control state and services for one OpenMP team."""

    def __init__(
        self,
        block,
        cfg: LaunchConfig,
        gmem: GlobalMemory,
        table: DispatchTable,
        counters: RuntimeCounters,
    ) -> None:
        self.cfg = cfg
        self.gmem = gmem
        self.table = table
        self.counters = counters
        shared = block.shared
        #: Pending parallel-region descriptor: [fn_id]; 0 terminates workers.
        self.team_fn = shared.alloc("omp.team_fn", 1, np.uint64)
        #: Per-group simd-loop descriptors (paper's SIMD group state).
        self.simd_fn = shared.alloc("omp.simd_fn", cfg.num_groups, np.uint64)
        self.simd_trip = shared.alloc("omp.simd_trip", cfg.num_groups, np.uint64)
        self.sharing = SharingSpace(shared, cfg, gmem, counters)
        #: Shared scratch for the reduction extensions: one slot per SIMD
        #: group (or per warp for block-level reduces, whichever is more),
        #: plus one broadcast slot for the combined result.
        n_worker_warps = max(1, cfg.team_size // cfg.params.warp_size)
        self.red_scratch = shared.alloc(
            "omp.reduce_scratch", max(n_worker_warps, cfg.num_groups) + 1, np.float64
        )
        #: Per-team claim counter for ``schedule(dynamic)`` worksharing.
        self.dyn_counter = gmem.alloc(
            f"omp.dyn_counter.team{block.block_id}", 1, np.int64
        )
        #: Shared scratch used by codegen's variable globalization.
        self._globalized: Dict[str, object] = {}
        self._block = block

    # ------------------------------------------------------------------
    @staticmethod
    def get(
        tc,
        cfg: LaunchConfig,
        gmem: GlobalMemory,
        table: DispatchTable,
        counters: RuntimeCounters,
    ) -> "TeamRuntime":
        """Per-block singleton accessor (first thread to run creates it)."""
        rt = getattr(tc.block, "_omp_rt", None)
        if rt is None:
            rt = TeamRuntime(tc.block, cfg, gmem, table, counters)
            tc.block._omp_rt = rt
        return rt

    # ------------------------------------------------------------------
    def globalize_shared(self, name: str, size: int, dtype) -> object:
        """Team-shared replacement for a globalized local allocation (§4.3).

        Codegen calls this (through the team main / SIMD main thread) when a
        local variable must become visible to worker threads.  Allocation is
        idempotent per name so every thread resolves the same buffer.
        """
        buf = self._globalized.get(name)
        if buf is None:
            buf = self._block.shared.alloc(f"omp.globalized.{name}", size, dtype)
            self._globalized[name] = buf
            self.counters.globalized_vars += 1
        return buf
