"""``__parallel`` (paper Fig 3) and the parallel-region inner protocol.

``parallel`` is the runtime entry for an OpenMP ``parallel`` construct:

* **teams SPMD**: every thread of the team reaches the call with the
  argument environment already local; all proceed into :func:`parallel_inner`
  and the construct's implicit barrier.
* **teams generic**: only the team main thread reaches the call.  It stages
  the outlined-function id and argument payload through the team state,
  releases the workers from their block barrier, and waits at the join
  barrier while they execute the region via
  :func:`repro.runtime.target.team_worker_loop`.

:func:`parallel_inner` is the paper's Fig 3 proper — the second mode split:
in SPMD parallel mode every thread invokes the microtask; in generic mode
only SIMD main threads do, everyone else enters the SIMD worker state
machine until the leader posts the null-function termination signal.
"""

from __future__ import annotations

from typing import Dict

from repro.gpu.events import Compute
from repro.runtime.dispatch import NULL_FN, invoke_microtask
from repro.runtime.icv import ExecMode
from repro.runtime.mapping import get_simd_group, is_simd_group_leader, simdmask
from repro.runtime.simd import set_simd_fn, simd_state_machine
from repro.runtime.state import TeamRuntime


def parallel_inner(tc, rt: TeamRuntime, fn_id: int, values: Dict):
    """Fig 3 core: execute one parallel region on the current thread."""
    cfg = rt.cfg
    if cfg.parallel_mode is ExecMode.SPMD:
        # All threads execute the region in SPMD mode.
        yield from invoke_microtask(tc, rt.table, fn_id, rt, values)
        return

    if is_simd_group_leader(tc, cfg):
        # Only simd mains execute the region in generic mode.
        yield from invoke_microtask(tc, rt.table, fn_id, rt, values)
        # Send the termination signal to the group's simd workers.
        group = get_simd_group(tc, cfg)
        yield from set_simd_fn(tc, rt, group, NULL_FN)
        yield from tc.syncwarp(simdmask(tc, cfg))
    else:
        # Simd workers enter the state machine.
        yield from simd_state_machine(tc, rt)


def parallel(tc, rt: TeamRuntime, fn_id: int, values: Dict):
    """``__parallel``: runtime entry for a parallel construct."""
    cfg = rt.cfg
    if cfg.teams_mode is ExecMode.SPMD:
        # Every thread is here; arguments are local — no staging needed,
        # just the (free at runtime) pointer bookkeeping.
        if tc.tid == 0:
            if cfg.parallel_mode is ExecMode.SPMD:
                rt.counters.parallel_spmd += 1
            else:
                rt.counters.parallel_generic += 1
        yield Compute("alu", 2)
        yield from parallel_inner(tc, rt, fn_id, values)
        # Implicit barrier at the end of the parallel construct: wait for
        # every SIMD group in the team.
        yield from tc.syncthreads()
        return

    # Teams generic mode: only the team main thread reaches this point.
    if cfg.parallel_mode is ExecMode.SPMD:
        rt.counters.parallel_spmd += 1
    else:
        rt.counters.parallel_generic += 1
    layout = rt.table.lookup(fn_id).layout
    slots = layout.pack(values, rt.gmem)
    yield from tc.store(rt.team_fn, 0, fn_id)
    yield from rt.sharing.stage_team_args(tc, slots)
    yield from tc.syncthreads()  # release the worker threads
    # The team main thread does not execute the region; it waits for the
    # workers at the join barrier.
    yield from tc.syncthreads()
    yield from rt.sharing.end_team_sharing(tc)
