"""Reductions — the extension the paper lists as future work (§6.2, §7).

The paper's loop API shipped without reduction support; sparse_matvec had to
fall back to a "less efficient atomic update".  This module implements what
the authors describe as the immediate next step so the ablation bench (A5)
can quantify what reductions buy over atomics:

* :func:`simd_group_reduce` — butterfly (xor-shuffle) reduction across the
  lanes of one SIMD group; every lane ends with the total.  Needs no memory
  traffic at all, only ``log2(simd_len)`` shuffle+op steps.
* :func:`team_reduce` — block-level tree: warp-level butterfly, one shared
  slot per warp, a block barrier, and a final butterfly on the first warp,
  broadcast back through shared memory.

Supported combiner ops: ``add``, ``max``, ``min``.
"""

from __future__ import annotations

from repro.errors import RuntimeFault
from repro.gpu.events import Compute
from repro.runtime.mapping import simdmask
from repro.runtime.state import TeamRuntime

OPS = ("add", "max", "min")


def _combine(op: str, a, b):
    if op == "add":
        return a + b
    if op == "max":
        return a if a >= b else b
    if op == "min":
        return a if a <= b else b
    raise RuntimeFault(f"unknown reduction op {op!r}; expected one of {OPS}")


def simd_group_reduce(tc, rt: TeamRuntime, value, op: str = "add"):
    """Reduce ``value`` across the caller's SIMD group; all lanes get the total.

    Every lane of the group must call this at the same point (the butterfly
    converges the group like a barrier would).
    """
    cfg = rt.cfg
    mask = simdmask(tc, cfg)
    delta = cfg.simd_len // 2
    while delta >= 1:
        other = yield from tc.shfl_xor(value, delta, mask)
        yield Compute("fma", 1)
        value = _combine(op, value, other)
        delta //= 2
    return value


def warp_reduce(tc, value, op: str = "add"):
    """Butterfly reduction across a full warp; all lanes get the total."""
    mask = tc.warp_mask()
    delta = tc.warp_size // 2
    while delta >= 1:
        other = yield from tc.shfl_xor(value, delta, mask)
        yield Compute("fma", 1)
        value = _combine(op, value, other)
        delta //= 2
    return value


def workshare_reduce(tc, rt: TeamRuntime, value, op: str = "add"):
    """Combine per-executor partials across a parallel region's executors.

    The participant set depends on the parallel mode: every worker thread
    in SPMD mode, only the SIMD main threads in generic mode.  Partials are
    staged per group in the team's reduction scratch, synchronized with the
    named workshare barrier (so the team main thread's join barrier is
    untouched), and combined by the first executor; every participant
    returns the team total.

    This is the ``reduction`` clause for ``for`` worksharing loops — the
    §7 future-work item beyond the simd-level reduction.
    """
    from repro.runtime.icv import ExecMode
    from repro.runtime.mapping import get_simd_group
    from repro.runtime.sync import workshare_barrier

    cfg = rt.cfg
    scratch = rt.red_scratch
    group = get_simd_group(tc, cfg)
    n_groups = cfg.num_groups
    if cfg.parallel_mode is ExecMode.SPMD:
        # Fold each group's lanes first (butterfly), then one slot per group.
        if cfg.simd_len > 1:
            value = yield from simd_group_reduce(tc, rt, value, op)
        if tc.tid % cfg.simd_len == 0:
            yield from tc.store(scratch, group, value)
    else:
        # Generic mode: the leaders are the only executors.
        yield from tc.store(scratch, group, value)
    yield from workshare_barrier(tc, rt)
    # First executor combines the per-group partials into the broadcast slot.
    if tc.tid == 0:
        total = yield from tc.load(scratch, 0)
        total = float(total)
        for g in range(1, n_groups):
            partial = yield from tc.load(scratch, g)
            yield Compute("fma", 1)
            total = _combine(op, total, float(partial))
        yield from tc.store(scratch, n_groups, total)
    yield from workshare_barrier(tc, rt)
    total = yield from tc.load(scratch, n_groups)
    return float(total)


def team_reduce(tc, rt: TeamRuntime, value, op: str = "add"):
    """Reduce across all worker threads of the team; all callers get the total.

    Every worker thread of the team must participate (it contains block
    barriers).  Uses the team's shared reduction scratch: one slot per warp
    plus a broadcast slot.
    """
    cfg = rt.cfg
    scratch = rt.red_scratch
    n_warps = max(1, cfg.team_size // cfg.params.warp_size)
    value = yield from warp_reduce(tc, value, op)
    if tc.lane_id == 0:
        yield from tc.store(scratch, tc.warp_id, value)
    yield from tc.syncthreads()
    if tc.warp_id == 0:
        if tc.lane_id < n_warps:
            partial = yield from tc.load(scratch, tc.lane_id)
        else:
            partial = 0.0 if op == "add" else None
        if partial is None:
            # max/min identity: reuse lane 0's own partial so the combine
            # is a no-op for the padding lanes.
            partial = yield from tc.load(scratch, 0)
        total = yield from warp_reduce(tc, partial, op)
        if tc.lane_id == 0:
            yield from tc.store(scratch, n_warps, total)
    yield from tc.syncthreads()
    total = yield from tc.load(scratch, n_warps)
    return total
