"""Outlined-function dispatch: the if/cascade with indirect fallback (§5.5).

Outlined regions are referenced at run time by *function ids* (the paper's
function pointers).  Calling through a raw pointer is expensive on GPUs, so
Clang builds an if/cascade comparing the pointer against the outlined
regions known at compile time and only falls back to an indirect call for
regions it cannot see (e.g. other translation units) — a methodology from
Bertolli et al. [5].  :func:`invoke_microtask` reproduces both paths and
charges their costs: one compare per cascade level, or a fixed indirect
penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import RuntimeFault
from repro.gpu.events import intern_compute
from repro.runtime.payload import PayloadLayout

#: Issue-op cost of an indirect call (pointer load + setup + branch).
INDIRECT_CALL_OPS = 8

#: Dependent instruction rounds an indirect call serializes (pointer load,
#: target setup, branch) — unlike the predictable cascade compares, these
#: cannot overlap with the surrounding code, so they lengthen the critical
#: path as well as costing issue slots.
INDIRECT_CALL_ROUNDS = 3

#: Null function id — the paper's ``nullptr`` termination signal.
NULL_FN = 0


@dataclass
class TaskInfo:
    """One registered outlined function ("loop task")."""

    fn_id: int
    fn: object  # generator function
    name: str
    layout: PayloadLayout
    kind: str = "task"  # "parallel" | "simd" | "task" (diagnostics only)
    #: False models a region from another translation unit: it is excluded
    #: from the if/cascade, forcing the indirect-call fallback.
    known: bool = True
    #: Reduction op ("add"/"max"/"min") for reduction loop tasks, else None.
    reduction: Optional[str] = None


class DispatchTable:
    """Registry of outlined functions for one compiled kernel."""

    def __init__(self) -> None:
        self._tasks: Dict[int, TaskInfo] = {}
        self._next_id = 1  # 0 is the null fn / termination signal

    def register(
        self,
        fn,
        layout: PayloadLayout,
        name: str,
        kind: str = "task",
        known: bool = True,
        reduction: Optional[str] = None,
    ) -> int:
        """Register an outlined generator function; returns its fn id."""
        fn_id = self._next_id
        self._next_id += 1
        self._tasks[fn_id] = TaskInfo(fn_id, fn, name, layout, kind, known, reduction)
        return fn_id

    def lookup(self, fn_id: int) -> TaskInfo:
        try:
            return self._tasks[int(fn_id)]
        except KeyError:
            raise RuntimeFault(f"unknown outlined function id {fn_id}") from None

    def known_ids(self) -> Tuple[int, ...]:
        """Ids in the if/cascade, in registration (compile) order."""
        return tuple(t.fn_id for t in self._tasks.values() if t.known)

    def __len__(self) -> int:
        return len(self._tasks)


def cascade_cost_ops(table: DispatchTable, fn_id: int) -> int:
    """Comparison ops the if/cascade spends before reaching ``fn_id``."""
    known = table.known_ids()
    for pos, kid in enumerate(known):
        if kid == fn_id:
            return pos + 1
    return len(known) + INDIRECT_CALL_OPS


def invoke_microtask(tc, table: DispatchTable, fn_id: int, *call_args):
    """Resolve and call an outlined function (device-side generator).

    Charges the dispatch cost — cascade compares for compile-time-known
    regions, or the serializing indirect-call penalty for external ones —
    then delegates to the task generator with ``(tc, *call_args)``.
    """
    task = table.lookup(fn_id)
    if task.known:
        yield intern_compute("alu", cascade_cost_ops(table, fn_id))
    else:
        yield intern_compute("alu", cascade_cost_ops(table, fn_id))
        for _ in range(INDIRECT_CALL_ROUNDS):
            yield intern_compute("branch", 1)
    result = yield from task.fn(tc, *call_args)
    return result
