"""The variable sharing space (§5.3.1 of the paper).

In generic execution modes, variables the main thread must communicate to
worker threads are staged through a reserved slice of GPU shared memory.
Before this work the single team main thread was the only writer; the paper
grows the space from 1,024 to 2,048 bytes and divides it **evenly among the
SIMD groups** so every SIMD main thread can stage its group's simd-loop
arguments concurrently.  A group whose arguments do not fit its slice falls
back to a freshly allocated *global* buffer, recorded per group in an
``argptr`` array ("each SIMD group will have a pointer which correlates to
where variables are stored"); the allocation is released at the end of the
sharing episode.

All staging/fetch traffic goes through real :class:`~repro.gpu.memory`
buffers, so the shared-vs-global cost difference — and the occupancy cost of
reserving a bigger space — are measured, not assumed.  Ablation A1 sweeps
``sharing_bytes`` to show the fallback trade-off.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import SharingSpaceError
from repro.gpu.events import Compute
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.runtime.icv import TEAM_STAGING_SLOTS, LaunchConfig


class SharingSpace:
    """Per-team staging areas for cross-thread variable communication."""

    def __init__(
        self,
        shared: SharedMemory,
        cfg: LaunchConfig,
        gmem: GlobalMemory,
        counters,
    ) -> None:
        self.cfg = cfg
        self.gmem = gmem
        self.counters = counters
        #: Team main thread's staging slots (pre-existing LLVM mechanism).
        self.team_slots = shared.alloc("omp.team_staging", TEAM_STAGING_SLOTS, np.uint64)
        #: The SIMD variable sharing space, divided evenly among groups.
        self.simd_slots = shared.alloc("omp.simd_sharing", cfg.sharing_slots, np.uint64)
        #: Per-group pointer: 0 = args live in the group's shared slice,
        #: otherwise the handle of a global overflow allocation.
        self.argptr = shared.alloc("omp.simd_argptr", cfg.num_groups, np.uint64)
        self._team_overflow = None
        self._group_overflow: Dict[int, object] = {}

    def _notify(self, tc, kind: str, group: int, nslots: int, capacity: int) -> None:
        """Tell an attached sanitizer monitor about a sharing episode."""
        block = getattr(tc, "block", None)
        mon = getattr(block, "monitor", None)
        if mon is not None:
            mon.on_sharing(block, kind, self, group, nslots, capacity,
                           block.counters.rounds)

    def _forced_overflow(self, tc, group: int, kind: str) -> bool:
        """Fault hook: should this staging episode take the overflow path?

        Consults the block's fault plan at the ``sharing.overflow`` site.
        Forcing the fallback is *not* an error — the global-buffer path is
        a legal (slower) execution the campaign proves bit-identical — so
        the injection is recorded as recovered immediately.
        """
        faults = getattr(getattr(tc, "block", None), "faults", None)
        if faults is None:
            return False
        block_id = tc.block.block_id
        spec = faults.fires("sharing.overflow", block=block_id, group=group,
                            kind=kind)
        if spec is None:
            return False
        faults.record(
            "sharing.overflow",
            {"block": block_id, "group": group, "kind": kind},
            recovered=True,
            detail="forced global-memory fallback",
        )
        return True

    # -- SIMD-group staging (paper Fig 4 / __begin_sharing_simd_args) ------
    def stage_simd_args(self, tc, group: int, slots: Sequence[int]):
        """SIMD main thread publishes its group's packed argument slots."""
        n = len(slots)
        per_group = self.cfg.slots_per_group
        self._notify(tc, "stage_simd", group, n, per_group)
        if n <= per_group and (
            n == 0 or not self._forced_overflow(tc, group, "simd")
        ):
            base = group * per_group
            if n:
                yield from tc.store_vec(
                    self.simd_slots, range(base, base + n), [int(s) for s in slots]
                )
            yield from tc.store(self.argptr, group, 0)
        else:
            gbuf = self.gmem.alloc(f"omp.simd_args_overflow.g{group}", n, np.uint64)
            self._group_overflow[group] = gbuf
            self.counters.sharing_fallbacks += 1
            # malloc bookkeeping on device is not free.
            yield Compute("alu", 16)
            yield from tc.store_vec(gbuf, range(n), [int(s) for s in slots])
            yield from tc.store(self.argptr, group, gbuf.handle)

    def fetch_simd_args(self, tc, group: int, nargs: int) -> List[int]:
        """A group thread reads back the staged slots (broadcast access)."""
        self._notify(tc, "fetch_simd", group, nargs, self.cfg.slots_per_group)
        ptr = yield from tc.load(self.argptr, group)
        if int(ptr) == 0:
            base = group * self.cfg.slots_per_group
            if nargs == 0:
                return []
            vals = yield from tc.load_vec(self.simd_slots, range(base, base + nargs))
        else:
            gbuf = self.gmem.lookup(int(ptr))
            vals = yield from tc.load_vec(gbuf, range(nargs))
        return [int(v) for v in vals]

    def end_simd_sharing(self, tc, group: int):
        """Release the group's overflow allocation, if any (end of simd loop)."""
        self._notify(tc, "end_simd", group, 0, self.cfg.slots_per_group)
        gbuf = self._group_overflow.pop(group, None)
        if gbuf is not None:
            self.gmem.free(gbuf)
            yield Compute("alu", 8)
        else:
            yield Compute("alu", 1)

    # -- team-level staging (pre-existing mechanism, kept for parallel) ----
    def stage_team_args(self, tc, slots: Sequence[int]):
        """Team main thread publishes the parallel region's argument slots."""
        n = len(slots)
        self._notify(tc, "stage_team", -1, n, self.team_slots.size)
        if n <= self.team_slots.size:
            if n:
                yield from tc.store_vec(
                    self.team_slots, range(n), [int(s) for s in slots]
                )
            self._team_overflow_active = False
        else:
            if self._team_overflow is not None:
                raise SharingSpaceError("nested team staging without release")
            gbuf = self.gmem.alloc("omp.team_args_overflow", n, np.uint64)
            self._team_overflow = gbuf
            self.counters.sharing_fallbacks += 1
            yield Compute("alu", 16)
            yield from tc.store_vec(gbuf, range(n), [int(s) for s in slots])
            # Publish the overflow handle in slot 0 with a tag in slot 1.
            yield from tc.store_vec(self.team_slots, (0, 1), (gbuf.handle, 1))

    def fetch_team_args(self, tc, nargs: int) -> List[int]:
        """A worker thread reads the parallel region's staged slots."""
        self._notify(tc, "fetch_team", -1, nargs, self.team_slots.size)
        if nargs == 0:
            return []
        if nargs <= self.team_slots.size:
            vals = yield from tc.load_vec(self.team_slots, range(nargs))
        else:
            ptr = yield from tc.load(self.team_slots, 0)
            gbuf = self.gmem.lookup(int(ptr))
            vals = yield from tc.load_vec(gbuf, range(nargs))
        return [int(v) for v in vals]

    def end_team_sharing(self, tc):
        """Release the team overflow allocation at the end of the region."""
        self._notify(tc, "end_team", -1, 0, self.team_slots.size)
        if self._team_overflow is not None:
            self.gmem.free(self._team_overflow)
            self._team_overflow = None
            yield Compute("alu", 8)
        else:
            yield Compute("alu", 1)

    # -- host-side cleanup (error paths) -----------------------------------
    def release_group(self, group: int) -> None:
        """Free a group's overflow allocation without device cost accounting.

        Error-path cleanup: when a simd region raises after staging has
        overflowed to global memory, ``end_simd_sharing`` never runs — the
        runtime calls this from its exception handler so the allocation is
        not leaked.  Idempotent; no scheduler events are emitted because
        the block is already unwinding.
        """
        gbuf = self._group_overflow.pop(group, None)
        if gbuf is not None and self.gmem.is_live(gbuf):
            # Not live: the host-side launch sweep already reclaimed it
            # (this handler can run late, from a GC'd lane generator).
            self.gmem.free(gbuf)

    def release_team(self) -> None:
        """Free the team overflow allocation on an error path (idempotent)."""
        if self._team_overflow is not None:
            if self.gmem.is_live(self._team_overflow):
                self.gmem.free(self._team_overflow)
            self._team_overflow = None


#: Name prefixes of the sharing space's global fallback allocations.
OVERFLOW_PREFIXES = ("omp.simd_args_overflow", "omp.team_args_overflow")


def release_leaked_overflow(gmem: GlobalMemory, mark: int) -> int:
    """Free overflow allocations a failed launch left behind; host-side.

    When a kernel aborts (device assert, out-of-bounds access, deadlock,
    watchdog expiry) the lockstep round loop stops resuming lane
    generators, so a staging thread's in-band release never runs and any
    global overflow allocation from the dying launch would leak.
    ``Device.launch`` calls this on its terminal error path with the
    handle watermark it took at launch entry; returns how many
    allocations were reclaimed.
    """
    leaked = [
        buf for buf in gmem.allocated_since(mark)
        if buf.name.startswith(OVERFLOW_PREFIXES) and buf.space == "global"
    ]
    for buf in leaked:
        gmem.free(buf)
    return len(leaked)
