"""Synchronization helpers over the GPU substrate primitives.

Thin, named wrappers so runtime and user code reads like the paper:
``synchronizeWarp(simdmask())`` becomes ``sync_group(tc, rt)`` and the
team-level barrier becomes ``team_barrier(tc)``.
"""

from __future__ import annotations

from repro.errors import UnsupportedFeatureError
from repro.runtime.mapping import simdmask
from repro.runtime.state import TeamRuntime


def sync_group(tc, rt: TeamRuntime):
    """Warp-level barrier over the caller's SIMD group."""
    yield from tc.syncwarp(simdmask(tc, rt.cfg))


def sync_warp_named(tc, rt: TeamRuntime, mask: int):
    """Named warp barrier; unavailable on profiles without warp sync.

    This is the primitive whose absence on AMD wavefronts rules out the
    generic SIMD mode (§5.4.1); calling it on such a profile is an error so
    misconfigured code fails loudly instead of deadlocking.
    """
    if not rt.cfg.params.supports_warp_sync:
        raise UnsupportedFeatureError(
            f"profile {rt.cfg.params.name!r} has no warp-level named barrier"
        )
    yield from tc.syncwarp(mask)


def team_barrier(tc):
    """Block-wide barrier across the whole team."""
    yield from tc.syncthreads()


def workshare_barrier(tc, rt: TeamRuntime):
    """Barrier across the threads executing the current parallel region.

    Uses a *named, counted* block barrier (id 1) so it composes with the
    generic teams protocol: the team main thread waits at the join barrier
    (id 0) and must not be released by worker-internal synchronization.
    The participant count depends on the parallel mode — every worker
    thread in SPMD, only the SIMD main threads in generic mode (everyone
    else sits in the SIMD state machine behind warp barriers).
    """
    from repro.runtime.icv import ExecMode

    cfg = rt.cfg
    count = cfg.team_size if cfg.parallel_mode is ExecMode.SPMD else cfg.num_groups
    yield from tc.syncthreads(bar_id=1, count=count)
