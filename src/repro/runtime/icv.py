"""Launch configuration and internal control variables (ICVs).

:class:`LaunchConfig` fixes, for one target-region launch, everything the
device runtime needs to know: league and team geometry, the SIMD group size
(``simd_len``), the execution mode of the ``teams`` and ``parallel`` levels,
and the size of the variable sharing space.  It also encodes the paper's
hardware-mapping rules:

* SIMD groups never span a warp and evenly divide it (§5.1), so ``simd_len``
  must divide ``warp_size``;
* a teams region executing in *generic* mode gets **one additional warp**
  whose first lane is the team main thread (Fig 2), so the block is one warp
  wider than the worker count;
* on devices without warp-level named barriers (the AMD profile, §5.4.1)
  generic-mode SIMD is unavailable: the group size collapses to 1 and simd
  loops run sequentially.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import InvalidSimdGroupError, UnsupportedFeatureError
from repro.gpu.costmodel import CostParams

#: Default size of the variable sharing space, in bytes.  The paper grew the
#: pre-existing 1,024-byte space to 2,048 bytes to accommodate SIMD groups
#: (§5.3.1); both values are interesting for the ablation bench.
DEFAULT_SHARING_BYTES = 2048

#: Pre-existing LLVM value, used as the baseline in ablation A1.
LEGACY_SHARING_BYTES = 1024

#: Slots (8-byte pointers) reserved for the team main thread's parallel-region
#: argument staging, kept separate from the per-group SIMD slices.
TEAM_STAGING_SLOTS = 32


class ExecMode(enum.Enum):
    """Execution mode of a ``teams`` or ``parallel`` region.

    ``GENERIC`` is the CPU-centric model: one main thread runs sequential
    code, everyone else idles in a state machine.  ``SPMD`` is the
    GPU-centric model: every thread executes the region.  ``AUTO`` lets the
    SPMDization analysis (:mod:`repro.codegen.spmdization`) decide.
    """

    AUTO = "auto"
    GENERIC = "generic"
    SPMD = "spmd"


@dataclass
class LaunchConfig:
    """Resolved configuration of one target-region launch."""

    num_teams: int
    team_size: int
    simd_len: int = 1
    teams_mode: ExecMode = ExecMode.GENERIC
    parallel_mode: ExecMode = ExecMode.SPMD
    sharing_bytes: int = DEFAULT_SHARING_BYTES
    params: CostParams = field(default_factory=CostParams)
    #: True when the AMD fallback demoted generic-mode SIMD to sequential.
    simd_demoted: bool = False

    def __post_init__(self) -> None:
        ws = self.params.warp_size
        if self.num_teams < 1:
            raise InvalidSimdGroupError("num_teams must be >= 1")
        if self.team_size < 1:
            raise InvalidSimdGroupError("team_size must be >= 1")
        if self.team_size % ws:
            raise InvalidSimdGroupError(
                f"team_size ({self.team_size}) must be a multiple of the warp "
                f"size ({ws}); SIMD groups may not span partial warps"
            )
        if self.simd_len < 1 or ws % self.simd_len:
            raise InvalidSimdGroupError(
                f"simd_len ({self.simd_len}) must evenly divide the warp size "
                f"({ws}) — the paper's groups never span a warp (§5.1)"
            )
        if self.teams_mode is ExecMode.AUTO or self.parallel_mode is ExecMode.AUTO:
            raise UnsupportedFeatureError(
                "LaunchConfig needs resolved modes; run the SPMDization "
                "analysis (repro.codegen.spmdization) before launching"
            )
        if (
            not self.params.supports_warp_sync
            and self.parallel_mode is ExecMode.GENERIC
            and self.simd_len > 1
        ):
            # §5.4.1: no wavefront-level barrier => no generic-mode SIMD.
            # Demote: every thread becomes its own group; simd loops run
            # sequentially on it.
            self.simd_len = 1
            self.simd_demoted = True
        if self.sharing_bytes < 8:
            raise InvalidSimdGroupError("sharing_bytes must hold at least one slot")

    # -- derived geometry ---------------------------------------------------
    @property
    def num_groups(self) -> int:
        """SIMD groups per team (``team_size / simd_len``)."""
        return self.team_size // self.simd_len

    @property
    def groups_per_warp(self) -> int:
        return self.params.warp_size // self.simd_len

    @property
    def block_dim(self) -> int:
        """Hardware threads per block: generic teams adds the main warp."""
        if self.teams_mode is ExecMode.GENERIC:
            return self.team_size + self.params.warp_size
        return self.team_size

    @property
    def main_tid(self) -> Optional[int]:
        """Thread id of the team main thread (generic mode only)."""
        if self.teams_mode is ExecMode.GENERIC:
            return self.team_size  # first lane of the extra warp
        return None

    @property
    def sharing_slots(self) -> int:
        """Total 8-byte slots in the SIMD variable sharing space."""
        return self.sharing_bytes // 8

    @property
    def slots_per_group(self) -> int:
        """Sharing-space slots available to each SIMD group (§5.3.1)."""
        return max(0, self.sharing_slots // self.num_groups)

    def describe(self) -> str:
        return (
            f"{self.num_teams} teams × {self.team_size} threads, "
            f"simd_len={self.simd_len} ({self.num_groups} groups), "
            f"teams={self.teams_mode.value}, parallel={self.parallel_mode.value}, "
            f"block_dim={self.block_dim}, sharing={self.sharing_bytes}B"
        )
