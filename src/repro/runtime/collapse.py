"""Loop collapsing — the second extension from the paper's future work (§7).

``collapse(2)`` fuses two perfectly nested loops into a single iteration
space so the worksharing constructs see more parallelism.  The runtime-side
work is just index arithmetic: the fused trip count and the decode of a
fused induction value back into the component indices (one divide + one
modulo, charged as ALU ops when decoded on device).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.errors import RuntimeFault
from repro.gpu.events import Compute


def collapsed_trip(trips: Sequence[int]) -> int:
    """Fused trip count of perfectly nested loops with the given trips."""
    if not trips:
        raise RuntimeFault("collapse needs at least one loop")
    total = 1
    for t in trips:
        if t < 0:
            raise RuntimeFault("negative trip count")
        total *= t
    return total


def decode_index(iv: int, trips: Sequence[int]) -> Tuple[int, ...]:
    """Host-side decode of a fused induction value into component indices."""
    idx = []
    for t in reversed(trips[1:]):
        idx.append(iv % t)
        iv //= t
    idx.append(iv)
    return tuple(reversed(idx))


def decode_index_device(tc, iv: int, trips: Sequence[int]):
    """Device-side decode: same math, with the div/mod ops charged."""
    yield Compute("alu", 2 * (len(trips) - 1))
    return decode_index(iv, trips)
