"""``__target_init`` and the team-main worker state machine (§5.2, Fig 5).

At the start of an offloaded region every hardware thread calls
:func:`target_init`, the protocol's first divergence point:

* **teams SPMD**: all threads return :data:`ROLE_ALL` and immediately begin
  executing the user code.
* **teams generic**: only the team main thread — the first lane of the
  *extra* warp the launch added for this purpose (Fig 2) — returns
  (:data:`ROLE_MAIN`) to run the user code.  The extra warp's remaining
  lanes retire on the spot (:data:`ROLE_RETIRED`); all worker threads
  (:data:`ROLE_WORKER`) enter :func:`team_worker_loop`, where they idle at a
  block barrier until the main thread stages a parallel region, execute it
  through :func:`repro.runtime.parallel.parallel_inner`, join, and loop —
  until the null-function termination signal posted by
  :func:`target_deinit`.
"""

from __future__ import annotations

from repro.gpu.events import Compute
from repro.runtime.dispatch import NULL_FN
from repro.runtime.icv import ExecMode
from repro.runtime.mapping import (
    is_extra_warp_filler,
    is_simd_group_leader,
    is_team_main,
)
from repro.runtime.parallel import parallel_inner
from repro.runtime.state import TeamRuntime

#: Roles returned by :func:`target_init`.
ROLE_ALL = "all"  # SPMD: execute the target region
ROLE_MAIN = "main"  # generic: team main thread, execute the target region
ROLE_WORKER = "worker"  # generic: enter the worker state machine
ROLE_RETIRED = "retired"  # generic: extra-warp filler lane, exit now


def target_init(tc, rt: TeamRuntime) -> str:
    """Initialise the team state and classify the calling thread."""
    cfg = rt.cfg
    if cfg.teams_mode is ExecMode.SPMD:
        # Shared team-state setup cost, paid once per thread at entry.
        yield Compute("alu", 4)
        return ROLE_ALL
    if is_extra_warp_filler(tc, cfg):
        yield Compute("alu", 2)
        return ROLE_RETIRED
    if is_team_main(tc, cfg):
        # The main thread initialises the shared team state.
        yield from tc.store(rt.team_fn, 0, NULL_FN)
        yield Compute("alu", 4)
        return ROLE_MAIN
    yield Compute("alu", 2)
    return ROLE_WORKER


def target_deinit(tc, rt: TeamRuntime):
    """Team main thread terminates the workers at the end of the region."""
    yield from tc.store(rt.team_fn, 0, NULL_FN)
    yield from tc.syncthreads()  # wake workers; they observe null and exit


def team_worker_loop(tc, rt: TeamRuntime):
    """Worker-thread state machine of the generic teams mode ([5], Fig 5)."""
    cfg = rt.cfg
    while True:
        # Idle until the main thread signals a parallel region (or exit).
        yield from tc.syncthreads()
        fn = yield from tc.load(rt.team_fn, 0)
        fn = int(fn)
        if fn == NULL_FN:
            return
        rt.counters.worker_wakeups += 1
        # Fetch the staged argument payload.  In generic parallel mode only
        # SIMD main threads execute the region body, so only they (and every
        # thread when the parallel region is SPMD) fetch the arguments.
        layout = rt.table.lookup(fn).layout
        if cfg.parallel_mode is ExecMode.SPMD or is_simd_group_leader(tc, cfg):
            slots = yield from rt.sharing.fetch_team_args(tc, len(layout))
            values = layout.unpack(slots, rt.gmem)
        else:
            values = {}
        yield from parallel_inner(tc, rt, fn, values)
        # Join barrier with the team main thread.
        yield from tc.syncthreads()
