"""OpenMP runtime query functions (``omp_get_*``) for device code.

With three-level parallelism the OpenMP identity of a hardware thread is
layered exactly as §5.1 maps it:

* the *team* is the thread block → :func:`omp_get_team_num`;
* the OpenMP *thread* is the SIMD **group** (each group acts as one OpenMP
  thread whose lanes co-execute simd loops) → :func:`omp_get_thread_num`
  returns the group index and :func:`omp_get_num_threads` the group count;
* the simd *lane* is the position within the group →
  :func:`omp_get_simd_lane` (an extension; OpenMP has no portable query,
  but the runtime mapping helpers expose it).

All queries are pure index arithmetic, free at the cost-model level, same
as the real runtime's register reads.
"""

from __future__ import annotations

from repro.gpu.thread import ThreadCtx
from repro.runtime.icv import LaunchConfig
from repro.runtime.mapping import get_simd_group, get_simd_group_id
from repro.runtime.state import TeamRuntime


def omp_get_num_teams(tc: ThreadCtx, rt: TeamRuntime) -> int:
    """League size (``omp_get_num_teams``)."""
    return tc.num_blocks


def omp_get_team_num(tc: ThreadCtx, rt: TeamRuntime) -> int:
    """This team's index in the league (``omp_get_team_num``)."""
    return tc.block_id


def omp_get_num_threads(tc: ThreadCtx, rt: TeamRuntime) -> int:
    """OpenMP threads in the current parallel region = SIMD groups."""
    return rt.cfg.num_groups


def omp_get_thread_num(tc: ThreadCtx, rt: TeamRuntime) -> int:
    """This thread's OpenMP id in the parallel region = its SIMD group."""
    return get_simd_group(tc, rt.cfg)


def omp_get_simd_lane(tc: ThreadCtx, rt: TeamRuntime) -> int:
    """Lane within the SIMD group (extension; SIMD mains are lane 0)."""
    return get_simd_group_id(tc, rt.cfg)


def omp_get_simd_len(tc: ThreadCtx, rt: TeamRuntime) -> int:
    """The active SIMD group size (the effective ``simdlen``)."""
    return rt.cfg.simd_len


def omp_in_simd_demoted_mode(tc: ThreadCtx, rt: TeamRuntime) -> bool:
    """True when the §5.4.1 AMD fallback demoted simd to sequential."""
    return rt.cfg.simd_demoted
