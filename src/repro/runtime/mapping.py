"""SIMD-group mapping helpers (§5.1 of the paper).

The paper partitions each team's worker threads into SIMD groups of
adjacent warp lanes and defines five runtime queries, reproduced here with
the same names (PEP-8-cased):

* :func:`get_simd_group` — which group a thread belongs to;
* :func:`get_simd_group_id` — the thread's lane index *within* its group
  (SIMD main threads always have id 0);
* :func:`get_simd_group_size` — the (uniform) group size;
* :func:`is_simd_group_leader` — whether the thread is its group's main;
* :func:`simdmask` — the warp bitmask naming the caller's group, used for
  every warp-level barrier in the SIMD protocol.

These are pure index arithmetic on the thread id and launch configuration —
no memory traffic — exactly as on the real device where they compile to a
few lane-id instructions.
"""

from __future__ import annotations

from repro.gpu.thread import ThreadCtx
from repro.runtime.icv import LaunchConfig


def get_simd_group(tc: ThreadCtx, cfg: LaunchConfig) -> int:
    """Group index of this thread within its team."""
    return tc.tid // cfg.simd_len


def get_simd_group_id(tc: ThreadCtx, cfg: LaunchConfig) -> int:
    """This thread's lane index within its SIMD group (main thread = 0)."""
    return tc.tid % cfg.simd_len


def get_simd_group_size(tc: ThreadCtx, cfg: LaunchConfig) -> int:
    """Size of every SIMD group for the current parallel region."""
    return cfg.simd_len


def is_simd_group_leader(tc: ThreadCtx, cfg: LaunchConfig) -> bool:
    """True for the SIMD main thread of each group."""
    return tc.tid % cfg.simd_len == 0


def simdmask(tc: ThreadCtx, cfg: LaunchConfig) -> int:
    """Warp bitmask of the lanes sharing this thread's SIMD group."""
    base = (tc.lane_id // cfg.simd_len) * cfg.simd_len
    return ((1 << cfg.simd_len) - 1) << base


def group_leader_tid(group: int, cfg: LaunchConfig) -> int:
    """Thread id of the SIMD main thread of ``group``."""
    return group * cfg.simd_len


def is_team_main(tc: ThreadCtx, cfg: LaunchConfig) -> bool:
    """True for the team main thread (generic teams mode only)."""
    return cfg.main_tid is not None and tc.tid == cfg.main_tid


def is_extra_warp_filler(tc: ThreadCtx, cfg: LaunchConfig) -> bool:
    """True for the extra warp's non-main lanes, which retire at init."""
    return cfg.main_tid is not None and tc.tid > cfg.main_tid
