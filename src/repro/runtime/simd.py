"""``__simd``, the SIMD worker state machine, and ``__simd_loop``.

These are the paper's Figs 4, 6 and 8, ported line for line:

* :func:`simd` (``__simd``) — entry point for a simd worksharing loop.  In
  SPMD parallel mode every thread already holds the work descriptor locally
  and goes straight to the loop; in generic mode the SIMD main thread
  publishes the descriptor and argument payload through the group state and
  sharing space, wakes its workers with a warp barrier, joins the loop, and
  releases any overflow allocation afterwards.
* :func:`simd_state_machine` — what SIMD worker threads run for the duration
  of a generic parallel region: wait at the group barrier, fetch the work
  function (null = terminate), fetch shared arguments, execute, join.
* :func:`simd_loop` (``__simd_loop``) — the workshare itself:
  ``omp_iv = getSimdGroupId(); omp_iv += getSimdGroupSize()`` until the trip
  count is covered.

A group size of one (including the §5.4.1 AMD demotion) takes a sequential
fast path with none of the group machinery, matching the paper's "if the
group size is less than two … all simd loops would execute sequentially".
"""

from __future__ import annotations

from typing import Dict

from repro.gpu.events import intern_compute
from repro.runtime.dispatch import NULL_FN, invoke_microtask
from repro.runtime.mapping import (
    get_simd_group,
    get_simd_group_id,
    simdmask,
)
from repro.runtime.state import TeamRuntime


#: Reduction identities for the extension's combiner ops.
_IDENTITY = {"add": 0.0, "max": float("-inf"), "min": float("inf")}


def _combine(op: str, a, b):
    if op == "add":
        return a + b
    if op == "max":
        return a if a >= b else b
    return a if a <= b else b


def simd_loop(tc, rt: TeamRuntime, fn_id: int, trip_count: int, values: Dict):
    """``__simd_loop`` (paper Fig 8): strided workshare across group lanes."""
    cfg = rt.cfg
    omp_iv = get_simd_group_id(tc, cfg)
    yield from tc.syncwarp(simdmask(tc, cfg))
    while omp_iv < trip_count:
        yield from invoke_microtask(tc, rt.table, fn_id, rt, omp_iv, values)
        omp_iv += cfg.simd_len
        yield intern_compute("alu", 1)  # induction increment + bound check


def simd_reduce_loop(
    tc, rt: TeamRuntime, fn_id: int, trip_count: int, values: Dict, op: str
):
    """Reduction extension: workshare + group butterfly; returns the total.

    Each lane accumulates the values its iterations return, then the group
    combines partials with a xor-shuffle butterfly — every lane ends with the
    group total (so the SIMD main thread can finalize it without a memory
    round-trip).
    """
    cfg = rt.cfg
    mask = simdmask(tc, cfg)
    acc = _IDENTITY[op]
    omp_iv = get_simd_group_id(tc, cfg)
    yield from tc.syncwarp(mask)
    while omp_iv < trip_count:
        val = yield from invoke_microtask(tc, rt.table, fn_id, rt, omp_iv, values)
        acc = _combine(op, acc, val)
        omp_iv += cfg.simd_len
        yield intern_compute("alu", 1)
    delta = cfg.simd_len // 2
    while delta >= 1:
        other = yield from tc.shfl_xor(acc, delta, mask)
        yield intern_compute("fma", 1)
        acc = _combine(op, acc, other)
        delta //= 2
    return acc


def _sequential_loop(tc, rt: TeamRuntime, fn_id: int, trip_count: int, values: Dict):
    """Group-size-1 fast path: plain sequential loop, no group machinery."""
    reduction = rt.table.lookup(fn_id).reduction
    acc = _IDENTITY[reduction] if reduction else None
    for omp_iv in range(trip_count):
        val = yield from invoke_microtask(tc, rt.table, fn_id, rt, omp_iv, values)
        if reduction:
            acc = _combine(reduction, acc, val)
        yield intern_compute("alu", 1)
    return acc


def set_simd_fn(tc, rt: TeamRuntime, group: int, fn_id: int, trip_count: int = 0):
    """Publish the group's work descriptor (``setSimdFn``)."""
    yield from tc.store(rt.simd_fn, group, fn_id)
    if fn_id != NULL_FN:
        yield from tc.store(rt.simd_trip, group, trip_count)


def get_simd_fn(tc, rt: TeamRuntime, group: int):
    """Fetch the group's work descriptor (``getSimdFn``); returns (fn, trip)."""
    fn = yield from tc.load(rt.simd_fn, group)
    fn = int(fn)
    if fn == NULL_FN:
        return NULL_FN, 0
    trip = yield from tc.load(rt.simd_trip, group)
    return fn, int(trip)


def simd(tc, rt: TeamRuntime, fn_id: int, trip_count: int, values: Dict, spmd: bool):
    """``__simd`` (paper Fig 4): run a simd worksharing loop.

    ``values`` is the named argument environment of the loop task (buffers
    and by-value scalars).  ``spmd`` is the parallel region's resolved mode
    (``isParallelSPMD()``).
    """
    cfg = rt.cfg
    task = rt.table.lookup(fn_id)
    if cfg.simd_len == 1:
        rt.counters.simd_sequential += 1
        total = yield from _sequential_loop(tc, rt, fn_id, trip_count, values)
        return total

    if spmd:
        # All group lanes are here with local descriptors: no communication.
        if tc.tid % cfg.simd_len == 0:
            rt.counters.simd_spmd += 1
        if task.reduction:
            total = yield from simd_reduce_loop(
                tc, rt, fn_id, trip_count, values, task.reduction
            )
        else:
            total = None
            yield from simd_loop(tc, rt, fn_id, trip_count, values)
        yield from tc.syncwarp(simdmask(tc, cfg))
        return total

    # Generic mode: only the SIMD main thread reaches this call.
    rt.counters.simd_generic += 1
    group = get_simd_group(tc, cfg)
    layout = task.layout
    yield from set_simd_fn(tc, rt, group, fn_id, trip_count)
    slots = layout.pack(values, rt.gmem)
    try:
        yield from rt.sharing.stage_simd_args(tc, group, slots)
        yield from tc.syncwarp(simdmask(tc, cfg))  # wake the group's workers
        # The main thread executes its share against the shared arguments too
        # (Fig 4 runs __workshare_loop_simd on GlobalArgs).
        shared_values = layout.unpack(slots, rt.gmem)
        if task.reduction:
            total = yield from simd_reduce_loop(
                tc, rt, fn_id, trip_count, shared_values, task.reduction
            )
        else:
            total = None
            yield from simd_loop(tc, rt, fn_id, trip_count, shared_values)
        yield from tc.syncwarp(simdmask(tc, cfg))  # join
    except BaseException:
        # If the loop body (or a barrier) raises after staging overflowed
        # to a global allocation, ``end_simd_sharing`` below never runs —
        # release the allocation host-side so it does not leak.
        rt.sharing.release_group(group)
        raise
    yield from rt.sharing.end_simd_sharing(tc, group)
    return total


def simd_state_machine(tc, rt: TeamRuntime):
    """SIMD worker state machine (paper Fig 6)."""
    cfg = rt.cfg
    mask = simdmask(tc, cfg)
    group = get_simd_group(tc, cfg)
    while True:
        # Wait for work.
        yield from tc.syncwarp(mask)
        fn, trip = yield from get_simd_fn(tc, rt, group)
        if fn == NULL_FN:
            return  # end of the enclosing parallel region
        task = rt.table.lookup(fn)
        slots = yield from rt.sharing.fetch_simd_args(tc, group, len(task.layout))
        values = task.layout.unpack(slots, rt.gmem)
        rt.counters.simd_wakeups += 1
        if task.reduction:
            # Workers participate in the butterfly; only the SIMD main
            # thread consumes the total.
            yield from simd_reduce_loop(tc, rt, fn, trip, values, task.reduction)
        else:
            yield from simd_loop(tc, rt, fn, trip, values)
        yield from tc.syncwarp(mask)  # join with the SIMD main thread
