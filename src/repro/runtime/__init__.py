"""The OpenMP GPU device runtime ("DeviceRTL") with three-level parallelism.

This package is the Python port of the paper's runtime contribution:

* :mod:`repro.runtime.icv` — launch configuration and execution modes;
* :mod:`repro.runtime.mapping` — SIMD-group mapping helpers (§5.1);
* :mod:`repro.runtime.state` / :mod:`repro.runtime.sharing` — team state and
  the variable sharing space in shared memory (§5.3.1);
* :mod:`repro.runtime.target` — ``__target_init`` and the team-main worker
  state machine (§5.2, Fig 5);
* :mod:`repro.runtime.parallel` — ``__parallel`` (Fig 3);
* :mod:`repro.runtime.simd` — ``__simd``, the SIMD worker state machine, and
  ``__simd_loop`` (Figs 4, 6, 8);
* :mod:`repro.runtime.workshare` — ``distribute``/``for`` schedules;
* :mod:`repro.runtime.dispatch` — if/cascade microtask dispatch (§5.5);
* :mod:`repro.runtime.reduction` / :mod:`repro.runtime.collapse` —
  extensions the paper lists as future work (§7).
"""

from repro.runtime.icv import ExecMode, LaunchConfig
from repro.runtime.state import TeamRuntime, RuntimeCounters
from repro.runtime.dispatch import DispatchTable, TaskInfo

__all__ = [
    "DispatchTable",
    "ExecMode",
    "LaunchConfig",
    "RuntimeCounters",
    "TaskInfo",
    "TeamRuntime",
]
