"""Worksharing schedules for ``distribute`` and ``for``.

``distribute`` splits a loop across the league's teams; ``for`` splits a
loop across the OpenMP threads of a team — which, with three-level
parallelism, are the team's **SIMD groups** (each group acts as one OpenMP
thread whose lanes later split ``simd`` loops).  With ``simd_len == 1``
every hardware thread is its own group and the classic two-level behaviour
falls out, exactly as §5.4 describes.

Schedules:

``static``
    contiguous blocks, LLVM's default for ``distribute`` without a chunk;
``static_cyclic``
    round-robin with a chunk (default 1), the GPU-friendly default for
    ``for`` because adjacent workers touch adjacent iterations;
``dynamic``
    first-come first-served chunks claimed from a global atomic counter
    (device-side; costs real atomics).

The static schedules are pure index arithmetic; callers charge a small
:class:`~repro.gpu.events.Compute` for the bounds computation.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import RuntimeFault
from repro.gpu.events import Compute

SCHEDULES = ("static", "static_cyclic", "dynamic", "guided")


def static_block(trip_count: int, worker: int, num_workers: int) -> range:
    """Contiguous block schedule: worker ``w`` gets one dense chunk.

    Blocks differ in size by at most one iteration; every iteration is
    assigned to exactly one worker.
    """
    if num_workers < 1:
        raise RuntimeFault("num_workers must be >= 1")
    base = trip_count // num_workers
    rem = trip_count % num_workers
    start = worker * base + min(worker, rem)
    size = base + (1 if worker < rem else 0)
    return range(start, start + size)


def static_cyclic(
    trip_count: int, worker: int, num_workers: int, chunk: int = 1
) -> List[int]:
    """Round-robin chunked schedule (``schedule(static, chunk)``)."""
    if num_workers < 1:
        raise RuntimeFault("num_workers must be >= 1")
    if chunk < 1:
        raise RuntimeFault("chunk must be >= 1")
    out: List[int] = []
    stride = num_workers * chunk
    for chunk_start in range(worker * chunk, trip_count, stride):
        out.extend(range(chunk_start, min(chunk_start + chunk, trip_count)))
    return out


def schedule_indices(
    schedule: str, trip_count: int, worker: int, num_workers: int, chunk: int = 1
):
    """Dispatch to a static schedule by name."""
    if schedule == "static":
        return static_block(trip_count, worker, num_workers)
    if schedule == "static_cyclic":
        return static_cyclic(trip_count, worker, num_workers, chunk)
    raise RuntimeFault(
        f"unknown or non-static schedule {schedule!r}; expected one of "
        f"{SCHEDULES[:2]} here (dynamic uses dynamic_next)"
    )


def distribute_indices(trip_count: int, team: int, num_teams: int, schedule: str = "static", chunk: int = 1):
    """Iterations of a ``distribute`` loop owned by ``team``."""
    return schedule_indices(schedule, trip_count, team, num_teams, chunk)


def for_indices(trip_count: int, thread: int, num_threads: int, schedule: str = "static_cyclic", chunk: int = 1):
    """Iterations of a ``for`` loop owned by OpenMP thread ``thread``."""
    return schedule_indices(schedule, trip_count, thread, num_threads, chunk)


def dynamic_next(tc, counter_buf, trip_count: int, chunk: int = 1):
    """Claim the next dynamic chunk; returns ``(start, end)`` or ``None``.

    ``counter_buf`` is a one-element global buffer initialised to zero
    before the loop.  Each claim is one global atomic add, so dynamic
    scheduling's contention cost is measured rather than assumed.
    """
    start = yield from tc.atomic_add(counter_buf, 0, chunk)
    start = int(start)
    yield Compute("alu", 2)
    if start >= trip_count:
        return None
    return start, min(start + chunk, trip_count)


def guided_next(tc, counter_buf, trip_count: int, num_workers: int, min_chunk: int = 1):
    """Claim the next guided chunk; returns ``(start, end)`` or ``None``.

    OpenMP's guided schedule: each claim takes a chunk proportional to the
    *remaining* iterations divided by the worker count (halved here, the
    common implementation), never below ``min_chunk``.  Early claims are
    large (low claim overhead), the tail is fine-grained (load balance).
    """
    start = yield from tc.atomic_add(counter_buf, 0, 0)  # read current
    start = int(start)
    if start >= trip_count:
        yield Compute("alu", 2)
        return None
    remaining = trip_count - start
    chunk = max(min_chunk, remaining // (2 * num_workers))
    # Claim with CAS so concurrent claimants compute consistent chunks.
    old = yield from tc.atomic_cas(counter_buf, 0, start, start + chunk)
    yield Compute("alu", 4)
    if int(old) != start:
        # Lost the race; retry with the observed counter.
        retry = yield from guided_next(
            tc, counter_buf, trip_count, num_workers, min_chunk
        )
        return retry
    return start, min(start + chunk, trip_count)


def charge_schedule_setup(tc):
    """Issue cost of computing a static schedule's bounds."""
    yield Compute("alu", 3)
