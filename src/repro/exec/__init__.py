"""repro.exec — launch executors for the simulated GPU.

Two executors implement ``Device.launch``'s block loop:

* :class:`SerialExecutor` — the classic sequential reference loop;
* :class:`ParallelExecutor` — the block-sharding engine: every block
  runs against a read-snapshot of pre-launch global memory (in forked
  worker processes by default), and the coordinator merges write-sets,
  replays cross-block atomics through ``apply_atomic``, and folds
  counters/sanitizer reports back in ascending block id, bit-identical
  to the serial loop for well-formed kernels (see
  :mod:`repro.exec.engine` and ``docs/EXECUTOR.md``).

Selection, most specific wins:

1. ``device.launch(..., executor=...)`` per launch;
2. ``Device(..., executor=...)`` per device;
3. :func:`set_default_executor` process-wide override (used by CLI
   ``--workers`` flags);
4. the ``REPRO_EXECUTOR`` environment variable:

   ===================  ===================================================
   ``serial`` / unset   :class:`SerialExecutor`
   ``parallel[:N]``     :class:`ParallelExecutor` with the in-process
                        isolated loop — full snapshot/merge semantics, no
                        forking, safe for kernels observed through host
                        closures (how the test-suite matrix leg runs the
                        whole tier-1 suite through the engine)
   ``fork[:N]``         :class:`ParallelExecutor` over ``N`` forked
                        worker processes (the performance configuration)
   ===================  ===================================================
"""

from __future__ import annotations

import os
import threading
from typing import Optional

from repro.exec.engine import (
    ExecOutcome,
    GridSegment,
    LaunchPlan,
    ParallelExecutor,
    SegmentOutcome,
    SerialExecutor,
    merge_records,
)
from repro.exec.pool import (
    RetryPolicy,
    WorkerError,
    WorkerPool,
    fork_available,
    fork_map,
)
from repro.exec.record import BlockRecord, ErrorCapsule, GlobalWriteRecorder

__all__ = [
    "BlockRecord",
    "ErrorCapsule",
    "ExecOutcome",
    "GlobalWriteRecorder",
    "GridSegment",
    "LaunchPlan",
    "ParallelExecutor",
    "RetryPolicy",
    "SegmentOutcome",
    "SerialExecutor",
    "WorkerError",
    "WorkerPool",
    "coerce_executor",
    "default_executor",
    "fork_available",
    "fork_map",
    "merge_records",
    "set_default_executor",
]

#: Environment variable consulted by :func:`default_executor`.
EXECUTOR_ENV = "REPRO_EXECUTOR"

_override = None
#: The serve tier launches from multiple threads; the process-wide
#: default must be read/written under a lock rather than relying on the
#: GIL's per-op atomicity (a documented guarantee, not an accidental one).
_override_lock = threading.Lock()


def set_default_executor(executor) -> None:
    """Install (or clear, with None) a process-wide default executor.

    Takes precedence over :data:`EXECUTOR_ENV`; used by CLI entry points
    to honour a ``--workers`` flag for every launch a script performs.
    Thread-safe: concurrent launches resolving the default and callers
    flipping it serialize on an internal lock.
    """
    global _override
    with _override_lock:
        _override = executor


def coerce_executor(spec: str):
    """Parse an executor spec string (the ``REPRO_EXECUTOR`` grammar)."""
    spec = (spec or "").strip().lower()
    if spec in ("", "serial"):
        return SerialExecutor()
    kind, _, arg = spec.partition(":")
    workers = None
    if arg:
        try:
            workers = int(arg)
        except ValueError:
            raise ValueError(f"bad worker count in executor spec {spec!r}")
    if kind == "parallel":
        return ParallelExecutor(workers=workers, processes=False)
    if kind == "fork":
        return ParallelExecutor(workers=workers, processes=True)
    raise ValueError(
        f"unrecognized executor spec {spec!r}; "
        "expected serial, parallel[:N], or fork[:N]"
    )


def default_executor():
    """The executor launches use when none is given explicitly.

    Re-reads the environment on every call so test fixtures and
    subprocesses pick up changes without import-order games.
    """
    if _override is not None:
        return _override
    return coerce_executor(os.environ.get(EXECUTOR_ENV, ""))
