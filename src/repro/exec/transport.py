"""Columnar block-record transport for the warm worker pool.

The per-launch ``fork_map`` path ships :class:`~repro.exec.BlockRecord`
objects whole: each record's write-set is a ``(handle, idx) -> value``
dict of NumPy scalars, which pickles as one boxed object per cell.  For
the warm pool that cost lands on every serve request, so this module
gives the lease a packed wire form:

* **columnar write-sets** — per buffer, one ``int64`` index array plus
  one value array in the buffer's dtype (the cast is the same one the
  eventual per-cell store would apply, so round-tripping is
  bit-identical), instead of thousands of pickled scalar boxes;
* **shared-memory handoff** — when the runner executes in a forked
  worker and the packed payload is large, the pickle bytes move through
  one :mod:`multiprocessing.shared_memory` segment and only a tiny
  ``("shm", name, size)`` descriptor crosses the result pipe.

The in-process paths (pool degradation, ``processes=False``) bypass
packing entirely — ``unpack_records`` passes raw record lists through —
so results never depend on the transport, matching the pool's contract.

Crash window: a worker that dies between creating its segment and the
parent unpacking it leaks that segment until the host cleans ``/dev/shm``
(the worker unregisters the segment from its resource tracker as part
of the handoff).  The pool's crash sites fire before the runner
executes, so injected-fault campaigns do not hit the window; a real
mid-handoff death costs one bounded segment, not correctness — the
chunk is re-dispatched.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Sequence

import numpy as np

from repro.exec.record import BlockRecord

__all__ = ["pack_records", "unpack_records", "SHM_MIN_BYTES"]

#: Packed payloads at least this large take the shared-memory lane;
#: smaller ones ride the pipe inline (a segment per tiny result would
#: cost more in syscalls than it saves in copies).
SHM_MIN_BYTES = 64 * 1024


def _encode(rec: BlockRecord, dtypes: Dict[int, np.dtype]) -> dict:
    """Columnar dict form of one record (worker side, local handles
    already remapped; ``dtypes`` maps handle -> buffer dtype)."""
    columns = []
    by_handle: Dict[int, tuple] = {}
    for (handle, idx), value in rec.write_set.items():
        cols = by_handle.get(handle)
        if cols is None:
            cols = by_handle[handle] = ([], [])
            columns.append((handle, *cols))
        cols[0].append(idx)
        cols[1].append(value)
    packed_cols = [
        (handle, np.asarray(idxs, dtype=np.int64),
         np.asarray(values, dtype=dtypes.get(handle)))
        for handle, idxs, values in columns
    ]
    return {
        "block_id": rec.block_id,
        "counters": rec.counters,
        "shared_used": rec.shared_used,
        "completed": rec.completed,
        "columns": packed_cols,
        "oplog": rec.oplog,
        "read_cells": rec.read_cells,
        "report": rec.report,
        "live_allocs": rec.live_allocs,
        "side_deltas": rec.side_deltas,
        "error": rec.error,
        "deadlock": rec.deadlock,
    }


def _decode(state: dict) -> BlockRecord:
    """Rebuild a record; write-set insertion order (first-seen buffer,
    then chronological cells within it) matches the worker's columns."""
    write_set = {}
    for handle, idxs, values in state["columns"]:
        for k in range(idxs.size):
            write_set[(handle, int(idxs[k]))] = values[k]
    return BlockRecord(
        block_id=state["block_id"],
        counters=state["counters"],
        shared_used=state["shared_used"],
        completed=state["completed"],
        write_set=write_set,
        oplog=state["oplog"],
        read_cells=state["read_cells"],
        report=state["report"],
        live_allocs=state["live_allocs"],
        side_deltas=state["side_deltas"],
        error=state["error"],
        deadlock=state["deadlock"],
    )


def pack_records(records: Sequence[BlockRecord],
                 dtypes: Dict[int, np.dtype],
                 *, use_shm: bool = True) -> tuple:
    """Pack records for the pipe: ``("shm", name, size)`` or
    ``("inline", bytes)``.  Falls back to inline when the platform has
    no usable shared memory."""
    blob = pickle.dumps([_encode(r, dtypes) for r in records],
                        protocol=pickle.HIGHEST_PROTOCOL)
    if use_shm and len(blob) >= SHM_MIN_BYTES:
        try:
            from multiprocessing import resource_tracker, shared_memory

            seg = shared_memory.SharedMemory(create=True, size=len(blob))
            seg.buf[:len(blob)] = blob
            name = seg.name
            seg.close()
            try:
                # Hand ownership to the consumer: the parent's
                # attach/unlink pair balances its own registration.
                resource_tracker.unregister(seg._name, "shared_memory")
            except Exception:
                pass
            return ("shm", name, len(blob))
        except (OSError, ImportError):
            pass
    return ("inline", blob)


def unpack_records(payload) -> List[BlockRecord]:
    """Inverse of :func:`pack_records`.  Raw record lists (the pool's
    in-process paths never pack) pass through untouched."""
    if not (isinstance(payload, tuple) and payload and
            payload[0] in ("shm", "inline")):
        return payload
    if payload[0] == "shm":
        from multiprocessing import shared_memory

        _, name, size = payload
        seg = shared_memory.SharedMemory(name=name)
        try:
            blob = bytes(seg.buf[:size])
        finally:
            seg.close()
            seg.unlink()
    else:
        blob = payload[1]
    return [_decode(state) for state in pickle.loads(blob)]
