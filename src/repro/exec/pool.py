"""A self-healing fork-based worker pool for embarrassingly parallel fan-out.

The simulator's work units — thread blocks, schedule-exploration seeds —
close over generator functions, device objects, and live NumPy buffers,
none of which survive pickling.  ``fork`` sidesteps that entirely: each
worker is a forked child that *inherits* the parent's full state
(copy-on-write), runs its chunk of tasks, and ships only the **results**
back over a pipe.  Results must therefore be picklable; the task
callables need not be.

:func:`fork_map` is deliberately deterministic: tasks are split into
contiguous chunks, one worker per chunk, and results are returned in
task order regardless of which worker finished first.  A task that
raises is returned as an :class:`~repro.exec.record.ErrorCapsule` in its
slot rather than aborting the whole map — callers decide what an error
in slot *i* means (for block shards: "serial execution would have
stopped here").

Worker *processes*, on the other hand, can die or wedge — naturally
(OOM-killed, a segfaulting extension) or injected by a
:class:`repro.faults.FaultPlan` at the ``worker.crash``/``worker.hang``
sites.  The pool recovers instead of aborting (the recovery ladder,
governed by :class:`RetryPolicy`):

1. failed chunks are **retried** with capped exponential backoff, their
   task indices **redistributed** across a fresh set of forked workers;
2. after ``max_retries`` rounds the survivors' results are kept and the
   still-missing tasks **degrade to in-process** serial execution, which
   cannot suffer worker faults — the map always completes;
3. only with ``recover=False`` does the old behaviour return: a
   :class:`WorkerError` naming each dead worker's exit code or signal.

A ``deadline`` (absolute :func:`time.monotonic` value) turns the pool
into a launch watchdog: expiry kills outstanding workers and raises
:class:`~repro.errors.LaunchTimeout` with progress counts.

On platforms without ``fork`` (or when ``workers <= 1``) the map runs
in-process with identical semantics, so results never depend on the
transport.

:func:`fork_map` is the *per-launch* pool: children fork, run, and die
with each call.  :class:`WorkerPool` is the *persistent warm* pool the
serve tier (:mod:`repro.serve`) schedules onto: workers fork once,
stay resident across launches, are health-checked and respawned on
loss, and run picklable payloads through a runner fixed at spawn time.
It reuses the same retry/redistribute/degrade ladder and the same
``worker.crash``/``worker.hang`` fault sites.  Warm pools must be
closed (``close()``, a ``with`` block, or the module's atexit sweep)
so forked children never outlive the interpreter.

Block shards inherit the scheduler's engine selection unchanged: a
hook-free launch runs each shard on the fast round engine even inside a
worker, because the exec-layer write recorder is fast-path-compatible
(the block's handler tables specialize on it at construction — see
``docs/PERF.md``); any tracer/monitor/schedule-policy/fault-plan forces
the instrumented engine in the worker exactly as it would serially.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import signal as _signal
import sys
import threading
import time
import weakref
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import LaunchTimeout, SimulationError
from repro.exec.record import ErrorCapsule


class WorkerError(SimulationError):
    """A worker process died without delivering its results.

    Raised only when recovery is disabled (``recover=False``) or by the
    legacy single-shot path; the default pool retries, redistributes,
    and degrades in-process instead.  The message names each failed
    chunk's task range and its worker's exit code or fatal signal.
    """


#: Exit code used by injected worker crashes (distinctive in diagnostics).
INJECTED_CRASH_EXIT = 86

#: How long an injected hang sleeps; the parent reaps it long before.
_HANG_SLEEP = 3600.0

#: Hang watchdog applied when a fault plan is attached but the policy
#: does not set one — keeps injected hangs from stalling the suite.
DEFAULT_FAULT_HANG_TIMEOUT = 1.5


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery knobs for :func:`fork_map`.

    ``max_retries`` bounds redistribution rounds (not counting the final
    in-process degradation).  Backoff before retry round *k* is
    ``min(backoff_cap, backoff * 2**(k-1))`` seconds.  ``hang_timeout``
    is how long the parent waits on a chunk's pipe before declaring the
    worker hung (None = wait forever, unless a fault plan is attached —
    then :data:`DEFAULT_FAULT_HANG_TIMEOUT` applies so injected hangs
    are detected promptly).
    """

    max_retries: int = 2
    backoff: float = 0.02
    backoff_cap: float = 0.5
    hang_timeout: Optional[float] = None


def retry_delay(policy: RetryPolicy, attempt: int, *,
                faults=None, salt: object = 0) -> float:
    """Backoff before retry round ``attempt + 1``, with seeded jitter.

    The base is the classic capped exponential
    ``min(backoff_cap, backoff * 2**attempt)``; without jitter,
    concurrent failed chunks (several launches retrying after one
    injected crash wave) sleep in lockstep and re-collide.  The jitter
    factor is drawn in ``[0.5, 1.5)`` from a pure hash of
    ``(plan seed, salt, attempt)`` — deterministic, so a campaign with
    the same seed reproduces the identical retry timing, but distinct
    chunks (distinct ``salt``) de-synchronize.  With no fault plan the
    seed is 0: still jittered, still reproducible.
    """
    base = min(policy.backoff_cap, policy.backoff * (2 ** attempt))
    if base <= 0.0:
        return 0.0
    seed = getattr(faults, "seed", 0) if faults is not None else 0
    key = f"{seed}|backoff|{salt!r}|{attempt}".encode()
    digest = hashlib.blake2b(key, digest_size=8).digest()
    frac = int.from_bytes(digest, "big") / 2.0 ** 64
    return base * (0.5 + frac)


#: Stats keys :func:`fork_map` maintains in a caller-supplied dict.
STAT_KEYS = (
    "worker_deaths",
    "worker_hangs",
    "chunk_retries",
    "redistributions",
    "degraded_chunks",
    "degraded_tasks",
    "retry_rounds",
)


def fork_available() -> bool:
    """True when the ``fork`` start method exists (POSIX)."""
    return sys.platform != "win32" and "fork" in multiprocessing.get_all_start_methods()


def describe_exit(code: Optional[int]) -> str:
    """Human-readable worker exit status (exit code or signal name)."""
    if code is None:
        return "no exit status"
    if code < 0:
        try:
            name = _signal.Signals(-code).name
        except ValueError:
            name = f"signal {-code}"
        return f"killed by {name}"
    return f"exit code {code}"


def _chunk(n_tasks: int, workers: int) -> List[range]:
    """Split ``range(n_tasks)`` into ``workers`` contiguous chunks."""
    workers = max(1, min(workers, n_tasks))
    base, rem = divmod(n_tasks, workers)
    chunks, start = [], 0
    for w in range(workers):
        size = base + (1 if w < rem else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def _run_chunk(fn: Callable, tasks: Sequence, chunk: Sequence[int]) -> List[tuple]:
    out = []
    for i in chunk:
        try:
            out.append((i, "ok", fn(tasks[i])))
        except BaseException as exc:  # ship, don't kill the chunk
            out.append((i, "err", ErrorCapsule(exc)))
    return out


def _child_main(conn, fn: Callable, tasks: Sequence, chunk: Sequence[int],
                faults=None, attempt: int = 0) -> None:
    """Forked-child entry: run the chunk, ship results, exit *hard*.

    ``os._exit`` matters: the child inherited the parent's interpreter
    state (pytest hooks, atexit handlers, open benchmark sessions) and
    must not run any of it on the way out.  Fault injection happens here,
    before any work: a fired ``worker.crash`` dies with
    :data:`INJECTED_CRASH_EXIT`, a fired ``worker.hang`` sleeps until
    the parent's watchdog reaps it.  The parent re-evaluates the same
    (stateless) predicates for provenance.
    """
    code = 0
    try:
        if faults is not None and len(chunk):
            coords = {"chunk": int(chunk[0]), "attempt": attempt}
            # Hang before crash: a plan arming both (the campaign's
            # ``--hang`` leg) pins the hang to one chunk and must not
            # have the broader crash predicate mask it.
            if faults.fires("worker.hang", **coords) is not None:
                time.sleep(_HANG_SLEEP)
            if faults.fires("worker.crash", **coords) is not None:
                os._exit(INJECTED_CRASH_EXIT)
        results = _run_chunk(fn, tasks, chunk)
        try:
            conn.send(results)
        except Exception as exc:  # an unpicklable *result* slipped through
            conn.send([(i, "err", ErrorCapsule(exc)) for i in chunk])
    except BaseException:
        code = 1
    finally:
        try:
            conn.close()
        except Exception:
            pass
        os._exit(code)


def _deadline_timeout(msg_done: int, n_tasks: int) -> LaunchTimeout:
    return LaunchTimeout(
        f"launch watchdog expired with {msg_done}/{n_tasks} work chunks done",
        blocks_done=msg_done,
        num_blocks=n_tasks,
    )


def fork_map(
    fn: Callable,
    tasks: Sequence,
    workers: Optional[int] = None,
    processes: bool = True,
    *,
    faults=None,
    retry: Optional[RetryPolicy] = None,
    deadline: Optional[float] = None,
    recover: bool = True,
    stats: Optional[dict] = None,
    partial: Optional[list] = None,
) -> List[Tuple[str, object]]:
    """Run ``fn`` over ``tasks`` across forked workers; ordered outcomes.

    Returns one ``("ok", result)`` or ``("err", ErrorCapsule)`` pair per
    task, in task order.  ``workers=None`` uses one worker per available
    CPU (capped at 8); ``processes=False`` forces the in-process path.

    Keyword-only recovery surface: ``faults`` is an optional
    :class:`repro.faults.FaultPlan` consulted at the worker hook sites;
    ``retry`` a :class:`RetryPolicy`; ``deadline`` an absolute
    :func:`time.monotonic` watchdog; ``recover=False`` restores the
    legacy raise-on-death behaviour; ``stats`` (a dict) receives the
    :data:`STAT_KEYS` counts for observability.

    ``partial`` (a list) is the checkpoint harvest sink: when the
    watchdog raises :class:`~repro.errors.LaunchTimeout` mid-map, the
    ``("ok", result)`` outcomes already collected are appended to it
    before the raise, so callers can checkpoint completed work instead
    of discarding it (see :mod:`repro.faults.checkpoint`).
    """
    tasks = list(tasks)
    if stats is not None:
        for key in STAT_KEYS:
            stats.setdefault(key, 0)
    if not tasks:
        return []
    if workers is None:
        workers = min(os.cpu_count() or 1, 8)
    workers = max(1, min(int(workers), len(tasks)))
    policy = retry if retry is not None else RetryPolicy()

    if workers == 1 or not processes or not fork_available():
        if deadline is None:
            flat = _run_chunk(fn, tasks, range(len(tasks)))
        else:
            flat = []
            for i in range(len(tasks)):
                if time.monotonic() >= deadline:
                    if faults is not None:
                        faults.counters.timeouts += 1
                    if partial is not None:
                        partial.extend((s, p) for _, s, p in flat
                                       if s == "ok")
                    raise _deadline_timeout(i, len(tasks))
                flat.extend(_run_chunk(fn, tasks, (i,)))
        return [(status, payload) for _, status, payload in flat]

    ctx = multiprocessing.get_context("fork")
    outcomes: List[Optional[Tuple[str, object]]] = [None] * len(tasks)
    hang = policy.hang_timeout
    if hang is None and faults is not None:
        hang = DEFAULT_FAULT_HANG_TIMEOUT

    def spawn(chunks: List[Sequence[int]], attempt: int):
        children = []
        for chunk in chunks:
            recv_end, send_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_child_main,
                args=(send_end, fn, tasks, chunk, faults, attempt),
            )
            proc.daemon = True
            proc.start()
            send_end.close()
            # The hang clock starts at spawn, not at first poll, so the
            # watchdogs of several hung workers expire concurrently.
            children.append((proc, recv_end, chunk, time.monotonic()))
        return children

    def reap(children) -> None:
        for proc, recv_end, _, _ in children:
            try:
                recv_end.close()
            except Exception:
                pass
            if proc.is_alive():
                proc.terminate()
            proc.join()

    def collect(children, attempt: int):
        """Drain every child; returns [(chunk, why, exitcode)] failures."""
        failed = []
        for pos, (proc, recv_end, chunk, started) in enumerate(children):
            why = None
            rows = None
            try:
                while rows is None and why is None:
                    budgets = []
                    if hang is not None:
                        budgets.append(hang - (time.monotonic() - started))
                    if deadline is not None:
                        budgets.append(deadline - time.monotonic())
                    try:
                        if not budgets:
                            rows = recv_end.recv()
                        elif recv_end.poll(max(0.0, min(budgets))):
                            rows = recv_end.recv()
                    except EOFError:
                        why = "died"
                        break
                    if rows is not None or why is not None:
                        break
                    now = time.monotonic()
                    if deadline is not None and now >= deadline:
                        reap(children[pos:])
                        if faults is not None:
                            faults.counters.timeouts += 1
                        done = sum(1 for o in outcomes if o is not None)
                        raise _deadline_timeout(done, len(tasks))
                    if hang is not None and now - started >= hang:
                        why = "hung"
            finally:
                if why is None and rows is None:
                    pass  # LaunchTimeout path already reaped
                else:
                    try:
                        recv_end.close()
                    except Exception:
                        pass
            if rows is not None:
                for i, status, payload in rows:
                    outcomes[i] = (status, payload)
                proc.join()
                continue
            if why == "hung":
                proc.terminate()
            proc.join()
            failed.append((list(chunk), why, proc.exitcode))
            if stats is not None:
                key = "worker_deaths" if why == "died" else "worker_hangs"
                stats[key] += 1
            if faults is not None:
                site = "worker.crash" if why == "died" else "worker.hang"
                coords = {"chunk": int(chunk[0]), "attempt": attempt}
                if faults.fires(site, **coords) is not None:
                    faults.record(site, coords, recovered=recover,
                                  detail=describe_exit(proc.exitcode))
        return failed

    def guarded_collect(children, attempt: int):
        """Collect, reaping every child if the drain itself blows up.

        The normal paths join each child as it is processed (and the
        watchdog path reaps the tail), but an unexpected exception —
        KeyboardInterrupt mid-``recv``, an unpicklable surprise — used
        to leak live forked children.  ``reap`` is idempotent, so the
        double-reap on the LaunchTimeout path is harmless.
        """
        try:
            return collect(children, attempt)
        except BaseException:
            reap(children)
            raise

    chunks: List[Sequence[int]] = list(_chunk(len(tasks), workers))
    attempt = 0
    try:
        failed = guarded_collect(spawn(chunks, attempt), attempt)

        while failed and attempt < policy.max_retries:
            delay = retry_delay(policy, attempt, faults=faults,
                                salt=(len(tasks), failed[0][0][0]))
            if delay > 0:
                time.sleep(delay)
            attempt += 1
            indices = sorted(i for chunk, _, _ in failed for i in chunk)
            sub = _chunk(len(indices), workers)
            chunks = [[indices[p] for p in r] for r in sub if len(r)]
            if stats is not None:
                stats["chunk_retries"] += len(failed)
                stats["retry_rounds"] += 1
                if len(chunks) != len(failed):
                    stats["redistributions"] += 1
            if faults is not None:
                faults.counters.chunk_retries += len(failed)
            failed = guarded_collect(spawn(chunks, attempt), attempt)
    except LaunchTimeout:
        if partial is not None:
            partial.extend(o for o in outcomes
                           if o is not None and o[0] == "ok")
        raise

    if failed:
        if not recover:
            parts = []
            for chunk, why, code in failed:
                parts.append(
                    f"tasks {chunk[0]}..{chunk[-1]} {why} "
                    f"({describe_exit(code)})"
                )
            raise WorkerError(
                "worker process(es) failed before delivering results: "
                + "; ".join(parts)
            )
        # Degradation floor: run the still-missing tasks in-process.
        # Worker faults cannot fire here (they live in the forked child's
        # entry), so the map is guaranteed to complete.
        remaining = sorted(i for chunk, _, _ in failed for i in chunk)
        if stats is not None:
            stats["degraded_chunks"] += len(failed)
            stats["degraded_tasks"] += len(remaining)
        if faults is not None:
            faults.counters.degradations += 1
        for i, status, payload in _run_chunk(fn, tasks, remaining):
            outcomes[i] = (status, payload)
    return outcomes  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Persistent warm worker pool
# ---------------------------------------------------------------------------

#: Stats keys :meth:`WorkerPool.map` maintains in a caller-supplied dict
#: (a superset of :data:`STAT_KEYS`).
POOL_STAT_KEYS = STAT_KEYS + ("worker_respawns", "warm_dispatches")

#: Live pools swept at interpreter exit so warm workers never outlive
#: the parent (the per-launch ``fork_map`` children are daemons joined
#: in-band; persistent pools need the explicit sweep).
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()
_SWEEP_REGISTERED = False
_SWEEP_LOCK = threading.Lock()


def _sweep_pools() -> None:
    for pool in list(_LIVE_POOLS):
        try:
            pool.close()
        except Exception:
            pass


def _register_sweep() -> None:
    global _SWEEP_REGISTERED
    with _SWEEP_LOCK:
        if not _SWEEP_REGISTERED:
            atexit.register(_sweep_pools)
            _SWEEP_REGISTERED = True


def _pool_worker_main(conn, runner: Callable, faults) -> None:
    """Forked warm-worker entry: serve commands until told to stop.

    Commands over the duplex pipe:

    * ``("ping", nonce)`` — health check, answered ``("pong", nonce)``;
    * ``("run", attempt, [(i, payload), ...])`` — run the chunk through
      ``runner`` and answer ``("done", [(i, status, result), ...])``;
    * ``("stop",)`` — exit cleanly.

    Fault injection mirrors the per-launch pool: the ``worker.hang`` /
    ``worker.crash`` sites are consulted per task with
    ``{"chunk": task_index, "attempt": attempt}`` coordinates, so the
    same seeded plans (and the parent's provenance re-evaluation) work
    unchanged on the warm path.  Exits via ``os._exit`` for the same
    reason :func:`_child_main` does: the child inherited the parent's
    interpreter state and must not run its atexit/pytest machinery.
    """
    code = 0
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            kind = msg[0]
            if kind == "stop":
                break
            if kind == "ping":
                conn.send(("pong", msg[1]))
                continue
            _, attempt, items = msg
            out = []
            for i, payload in items:
                if faults is not None:
                    coords = {"chunk": int(i), "attempt": int(attempt)}
                    if faults.fires("worker.hang", **coords) is not None:
                        time.sleep(_HANG_SLEEP)
                    if faults.fires("worker.crash", **coords) is not None:
                        os._exit(INJECTED_CRASH_EXIT)
                try:
                    out.append((i, "ok", runner(payload)))
                except BaseException as exc:
                    out.append((i, "err", ErrorCapsule(exc)))
            try:
                conn.send(("done", out))
            except Exception as exc:  # an unpicklable result slipped through
                conn.send(("done", [(i, "err", ErrorCapsule(exc))
                                    for i, _ in items]))
    except BaseException:
        code = 1
    finally:
        try:
            conn.close()
        except Exception:
            pass
        os._exit(code)


class _PoolWorker:
    """Parent-side handle on one warm worker process."""

    __slots__ = ("proc", "conn", "slot", "busy_since")

    def __init__(self, proc, conn, slot: int) -> None:
        self.proc = proc
        self.conn = conn
        self.slot = slot
        self.busy_since: Optional[float] = None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        try:
            self.conn.close()
        except Exception:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join()


class WorkerPool:
    """A persistent, health-checked pool of warm forked workers.

    Unlike :func:`fork_map` — which forks a fresh set of children for
    every call — a :class:`WorkerPool` forks its workers **once** and
    reuses them across an arbitrary number of :meth:`map` calls: the
    serve tier's "workers stay warm across launches" requirement.  The
    trade-off is explicit: warm workers inherit the parent's state *at
    spawn time*, so the ``runner`` callable (fixed at construction,
    inherited by fork) must derive everything request-specific from the
    **picklable payload** it receives — it cannot see parent state
    created after the fork.

    The PR 3 recovery ladder carries over intact:

    1. a worker that dies or hangs mid-chunk is killed, its tasks are
       retried with capped exponential backoff and **redistributed**
       across the surviving (and freshly **respawned**) workers;
    2. after ``retry.max_retries`` rounds the still-missing tasks
       **degrade to in-process** execution of ``runner`` — the map
       always completes;
    3. the ``worker.crash``/``worker.hang`` fault sites fire exactly as
       on the per-launch pool (coordinates ``chunk``/``attempt``), with
       the plan captured at construction so forked children and parent
       agree on the schedule.

    Health-checked reuse: :meth:`ensure` (called before every dispatch)
    respawns any worker whose process has died since the last call, so
    a pool survives sporadic worker loss under sustained load without
    ever being rebuilt wholesale.  Pools must be closed — ``close()``,
    a ``with`` block, or the module's atexit sweep — so warm children
    never outlive the interpreter.
    """

    def __init__(
        self,
        runner: Callable,
        workers: Optional[int] = None,
        *,
        faults=None,
        retry: Optional[RetryPolicy] = None,
        processes: Optional[bool] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.runner = runner
        self.workers = workers or min(os.cpu_count() or 1, 8)
        self.faults = faults
        self.retry = retry if retry is not None else RetryPolicy()
        if processes is None:
            processes = fork_available()
        self.processes = bool(processes) and fork_available()
        self._ctx = multiprocessing.get_context("fork") if self.processes else None
        self._slots: List[Optional[_PoolWorker]] = [None] * self.workers
        self._spawned_once = [False] * self.workers
        self._closed = False
        self._lock = threading.Lock()
        self.stats = {key: 0 for key in POOL_STAT_KEYS}
        _register_sweep()
        _LIVE_POOLS.add(self)

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop and reap every worker; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = [w for w in self._slots if w is not None]
            self._slots = [None] * self.workers
        for w in workers:
            try:
                w.conn.send(("stop",))
            except Exception:
                pass
        deadline = time.monotonic() + 1.0
        for w in workers:
            w.proc.join(max(0.0, deadline - time.monotonic()))
            w.kill()
        _LIVE_POOLS.discard(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def pids(self) -> List[Optional[int]]:
        """PIDs of the live workers (test/observability surface)."""
        return [w.pid for w in self._slots if w is not None and w.alive()]

    # -- spawning ----------------------------------------------------------
    def _spawn(self, slot: int) -> _PoolWorker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, self.runner, self.faults),
        )
        proc.daemon = True
        proc.start()
        child_conn.close()
        return _PoolWorker(proc, parent_conn, slot)

    def ensure(self) -> List[_PoolWorker]:
        """Spawn missing/dead workers; return the live roster."""
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        if not self.processes:
            return []
        live = []
        with self._lock:
            for slot in range(self.workers):
                w = self._slots[slot]
                if w is not None and not w.alive():
                    w.kill()
                    w = None
                    self._slots[slot] = None
                if w is None:
                    w = self._spawn(slot)
                    self._slots[slot] = w
                    if self._spawned_once[slot]:
                        self.stats["worker_respawns"] += 1
                    self._spawned_once[slot] = True
                live.append(w)
        return live

    # -- dispatch ----------------------------------------------------------
    def map(
        self,
        payloads: Sequence,
        *,
        deadline: Optional[float] = None,
        stats: Optional[dict] = None,
    ) -> List[Tuple[str, object]]:
        """Run ``runner`` over ``payloads`` on the warm workers.

        Returns ordered ``("ok", result)`` / ``("err", ErrorCapsule)``
        pairs exactly like :func:`fork_map`.  ``stats`` (optional dict)
        receives :data:`POOL_STAT_KEYS` increments; the pool's own
        cumulative :attr:`stats` is always maintained.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        payloads = list(payloads)
        sinks = [self.stats] + ([stats] if stats is not None else [])
        if stats is not None:
            for key in POOL_STAT_KEYS:
                stats.setdefault(key, 0)
        if not payloads:
            return []

        n = len(payloads)
        outcomes: List[Optional[Tuple[str, object]]] = [None] * n
        hang = self.retry.hang_timeout
        if hang is None and self.faults is not None:
            hang = DEFAULT_FAULT_HANG_TIMEOUT

        def bump(key: str, inc: int = 1) -> None:
            for sink in sinks:
                sink[key] += inc

        def run_local(indices: Sequence[int]) -> None:
            for i in indices:
                if deadline is not None and time.monotonic() >= deadline:
                    if self.faults is not None:
                        self.faults.counters.timeouts += 1
                    done = sum(1 for o in outcomes if o is not None)
                    raise _deadline_timeout(done, n)
                try:
                    outcomes[i] = ("ok", self.runner(payloads[i]))
                except BaseException as exc:
                    outcomes[i] = ("err", ErrorCapsule(exc))

        pending = list(range(n))
        attempt = 0
        while pending and self.processes and not self._closed:
            workers = self.ensure()
            if not workers:
                break
            bump("warm_dispatches")
            chunks = _chunk(len(pending), len(workers))
            assignments = []  # (worker, [task indices])
            for w, r in zip(workers, chunks):
                if not len(r):
                    continue
                indices = [pending[p] for p in r]
                try:
                    w.conn.send(
                        ("run", attempt, [(i, payloads[i]) for i in indices])
                    )
                    w.busy_since = time.monotonic()
                    assignments.append((w, indices))
                except Exception:
                    # Died between health check and dispatch: retry round.
                    w.kill()
                    with self._lock:
                        if self._slots[w.slot] is w:
                            self._slots[w.slot] = None
                    assignments.append((w, indices))
                    w.busy_since = None

            failed: List[List[int]] = []
            for pos, (w, indices) in enumerate(assignments):
                if w.busy_since is None:  # dispatch itself failed
                    failed.append(indices)
                    bump("worker_deaths")
                    continue
                why = None
                rows = None
                while rows is None and why is None:
                    budgets = []
                    if hang is not None:
                        budgets.append(hang - (time.monotonic() - w.busy_since))
                    if deadline is not None:
                        budgets.append(deadline - time.monotonic())
                    try:
                        if not budgets:
                            rows = w.conn.recv()
                        elif w.conn.poll(max(0.0, min(budgets))):
                            rows = w.conn.recv()
                    except EOFError:
                        why = "died"
                        break
                    if rows is not None or why is not None:
                        break
                    now = time.monotonic()
                    if deadline is not None and now >= deadline:
                        for ww, _ in assignments[pos:]:
                            ww.kill()
                            with self._lock:
                                if self._slots[ww.slot] is ww:
                                    self._slots[ww.slot] = None
                        if self.faults is not None:
                            self.faults.counters.timeouts += 1
                        done = sum(1 for o in outcomes if o is not None)
                        raise _deadline_timeout(done, n)
                    if hang is not None and now - w.busy_since >= hang:
                        why = "hung"
                if rows is not None:
                    w.busy_since = None
                    for i, status, payload in rows[1]:
                        outcomes[i] = (status, payload)
                    continue
                # Worker died or hung mid-chunk: reap it, queue a retry.
                exitcode = w.proc.exitcode
                w.kill()
                with self._lock:
                    if self._slots[w.slot] is w:
                        self._slots[w.slot] = None
                failed.append(indices)
                bump("worker_deaths" if why == "died" else "worker_hangs")
                if self.faults is not None:
                    site = "worker.crash" if why == "died" else "worker.hang"
                    coords = {"chunk": int(indices[0]), "attempt": attempt}
                    if self.faults.fires(site, **coords) is not None:
                        self.faults.record(
                            site, coords, recovered=True,
                            detail=describe_exit(exitcode),
                        )

            pending = sorted(i for indices in failed for i in indices)
            if not pending:
                return outcomes  # type: ignore[return-value]
            if attempt >= self.retry.max_retries:
                break
            bump("chunk_retries", len(failed))
            bump("retry_rounds")
            bump("redistributions")
            if self.faults is not None:
                self.faults.counters.chunk_retries += len(failed)
            delay = retry_delay(self.retry, attempt, faults=self.faults,
                                salt=(len(payloads), pending[0]))
            if delay > 0:
                time.sleep(delay)
            attempt += 1

        if pending:
            # Degradation floor: in-process execution cannot suffer worker
            # faults, so the map always completes.
            if self.processes and not self._closed:
                bump("degraded_chunks")
                bump("degraded_tasks", len(pending))
                if self.faults is not None:
                    self.faults.counters.degradations += 1
            run_local(pending)
        return outcomes  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerPool(workers={self.workers}, processes={self.processes}, "
            f"live={len(self.pids())}, closed={self._closed})"
        )
