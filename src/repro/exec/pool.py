"""A minimal fork-based worker pool for embarrassingly parallel fan-out.

The simulator's work units — thread blocks, schedule-exploration seeds —
close over generator functions, device objects, and live NumPy buffers,
none of which survive pickling.  ``fork`` sidesteps that entirely: each
worker is a forked child that *inherits* the parent's full state
(copy-on-write), runs its chunk of tasks, and ships only the **results**
back over a pipe.  Results must therefore be picklable; the task
callables need not be.

:func:`fork_map` is deliberately deterministic: tasks are split into
contiguous chunks, one worker per chunk, and results are returned in
task order regardless of which worker finished first.  A task that
raises is returned as an :class:`~repro.exec.record.ErrorCapsule` in its
slot rather than aborting the whole map — callers decide what an error
in slot *i* means (for block shards: "serial execution would have
stopped here").

On platforms without ``fork`` (or when ``workers <= 1``) the map runs
in-process with identical semantics, so results never depend on the
transport.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.exec.record import ErrorCapsule


class WorkerError(SimulationError):
    """A worker process died without delivering its results."""


def fork_available() -> bool:
    """True when the ``fork`` start method exists (POSIX)."""
    return sys.platform != "win32" and "fork" in multiprocessing.get_all_start_methods()


def _chunk(n_tasks: int, workers: int) -> List[range]:
    """Split ``range(n_tasks)`` into ``workers`` contiguous chunks."""
    workers = max(1, min(workers, n_tasks))
    base, rem = divmod(n_tasks, workers)
    chunks, start = [], 0
    for w in range(workers):
        size = base + (1 if w < rem else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def _run_chunk(fn: Callable, tasks: Sequence, chunk: range) -> List[tuple]:
    out = []
    for i in chunk:
        try:
            out.append((i, "ok", fn(tasks[i])))
        except BaseException as exc:  # ship, don't kill the chunk
            out.append((i, "err", ErrorCapsule(exc)))
    return out


def _child_main(conn, fn: Callable, tasks: Sequence, chunk: range) -> None:
    """Forked-child entry: run the chunk, ship results, exit *hard*.

    ``os._exit`` matters: the child inherited the parent's interpreter
    state (pytest hooks, atexit handlers, open benchmark sessions) and
    must not run any of it on the way out.
    """
    code = 0
    try:
        results = _run_chunk(fn, tasks, chunk)
        try:
            conn.send(results)
        except Exception as exc:  # an unpicklable *result* slipped through
            conn.send([(i, "err", ErrorCapsule(exc)) for i in chunk])
    except BaseException:
        code = 1
    finally:
        try:
            conn.close()
        except Exception:
            pass
        os._exit(code)


def fork_map(
    fn: Callable,
    tasks: Sequence,
    workers: Optional[int] = None,
    processes: bool = True,
) -> List[Tuple[str, object]]:
    """Run ``fn`` over ``tasks`` across forked workers; ordered outcomes.

    Returns one ``("ok", result)`` or ``("err", ErrorCapsule)`` pair per
    task, in task order.  ``workers=None`` uses one worker per available
    CPU (capped at 8); ``processes=False`` forces the in-process path.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if workers is None:
        workers = min(os.cpu_count() or 1, 8)
    workers = max(1, min(int(workers), len(tasks)))

    if workers == 1 or not processes or not fork_available():
        flat = _run_chunk(fn, tasks, range(len(tasks)))
        return [(status, payload) for _, status, payload in flat]

    ctx = multiprocessing.get_context("fork")
    children = []
    for chunk in _chunk(len(tasks), workers):
        recv_end, send_end = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_child_main, args=(send_end, fn, tasks, chunk))
        proc.daemon = True
        proc.start()
        send_end.close()
        children.append((proc, recv_end, chunk))

    outcomes: List[Optional[Tuple[str, object]]] = [None] * len(tasks)
    failures = []
    for proc, recv_end, chunk in children:
        try:
            for i, status, payload in recv_end.recv():
                outcomes[i] = (status, payload)
        except EOFError:
            failures.append(chunk)
        finally:
            recv_end.close()
            proc.join()
    if failures:
        dead = ", ".join(f"tasks {c.start}..{c.stop - 1}" for c in failures)
        raise WorkerError(f"worker process died before delivering results ({dead})")
    return outcomes  # type: ignore[return-value]
