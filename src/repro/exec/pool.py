"""A self-healing fork-based worker pool for embarrassingly parallel fan-out.

The simulator's work units — thread blocks, schedule-exploration seeds —
close over generator functions, device objects, and live NumPy buffers,
none of which survive pickling.  ``fork`` sidesteps that entirely: each
worker is a forked child that *inherits* the parent's full state
(copy-on-write), runs its chunk of tasks, and ships only the **results**
back over a pipe.  Results must therefore be picklable; the task
callables need not be.

:func:`fork_map` is deliberately deterministic: tasks are split into
contiguous chunks, one worker per chunk, and results are returned in
task order regardless of which worker finished first.  A task that
raises is returned as an :class:`~repro.exec.record.ErrorCapsule` in its
slot rather than aborting the whole map — callers decide what an error
in slot *i* means (for block shards: "serial execution would have
stopped here").

Worker *processes*, on the other hand, can die or wedge — naturally
(OOM-killed, a segfaulting extension) or injected by a
:class:`repro.faults.FaultPlan` at the ``worker.crash``/``worker.hang``
sites.  The pool recovers instead of aborting (the recovery ladder,
governed by :class:`RetryPolicy`):

1. failed chunks are **retried** with capped exponential backoff, their
   task indices **redistributed** across a fresh set of forked workers;
2. after ``max_retries`` rounds the survivors' results are kept and the
   still-missing tasks **degrade to in-process** serial execution, which
   cannot suffer worker faults — the map always completes;
3. only with ``recover=False`` does the old behaviour return: a
   :class:`WorkerError` naming each dead worker's exit code or signal.

A ``deadline`` (absolute :func:`time.monotonic` value) turns the pool
into a launch watchdog: expiry kills outstanding workers and raises
:class:`~repro.errors.LaunchTimeout` with progress counts.

On platforms without ``fork`` (or when ``workers <= 1``) the map runs
in-process with identical semantics, so results never depend on the
transport.

Block shards inherit the scheduler's engine selection unchanged: a
hook-free launch runs each shard on the fast round engine even inside a
worker, because the exec-layer write recorder is fast-path-compatible
(the block's handler tables specialize on it at construction — see
``docs/PERF.md``); any tracer/monitor/schedule-policy/fault-plan forces
the instrumented engine in the worker exactly as it would serially.
"""

from __future__ import annotations

import multiprocessing
import os
import signal as _signal
import sys
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import LaunchTimeout, SimulationError
from repro.exec.record import ErrorCapsule


class WorkerError(SimulationError):
    """A worker process died without delivering its results.

    Raised only when recovery is disabled (``recover=False``) or by the
    legacy single-shot path; the default pool retries, redistributes,
    and degrades in-process instead.  The message names each failed
    chunk's task range and its worker's exit code or fatal signal.
    """


#: Exit code used by injected worker crashes (distinctive in diagnostics).
INJECTED_CRASH_EXIT = 86

#: How long an injected hang sleeps; the parent reaps it long before.
_HANG_SLEEP = 3600.0

#: Hang watchdog applied when a fault plan is attached but the policy
#: does not set one — keeps injected hangs from stalling the suite.
DEFAULT_FAULT_HANG_TIMEOUT = 1.5


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery knobs for :func:`fork_map`.

    ``max_retries`` bounds redistribution rounds (not counting the final
    in-process degradation).  Backoff before retry round *k* is
    ``min(backoff_cap, backoff * 2**(k-1))`` seconds.  ``hang_timeout``
    is how long the parent waits on a chunk's pipe before declaring the
    worker hung (None = wait forever, unless a fault plan is attached —
    then :data:`DEFAULT_FAULT_HANG_TIMEOUT` applies so injected hangs
    are detected promptly).
    """

    max_retries: int = 2
    backoff: float = 0.02
    backoff_cap: float = 0.5
    hang_timeout: Optional[float] = None


#: Stats keys :func:`fork_map` maintains in a caller-supplied dict.
STAT_KEYS = (
    "worker_deaths",
    "worker_hangs",
    "chunk_retries",
    "redistributions",
    "degraded_chunks",
    "degraded_tasks",
    "retry_rounds",
)


def fork_available() -> bool:
    """True when the ``fork`` start method exists (POSIX)."""
    return sys.platform != "win32" and "fork" in multiprocessing.get_all_start_methods()


def describe_exit(code: Optional[int]) -> str:
    """Human-readable worker exit status (exit code or signal name)."""
    if code is None:
        return "no exit status"
    if code < 0:
        try:
            name = _signal.Signals(-code).name
        except ValueError:
            name = f"signal {-code}"
        return f"killed by {name}"
    return f"exit code {code}"


def _chunk(n_tasks: int, workers: int) -> List[range]:
    """Split ``range(n_tasks)`` into ``workers`` contiguous chunks."""
    workers = max(1, min(workers, n_tasks))
    base, rem = divmod(n_tasks, workers)
    chunks, start = [], 0
    for w in range(workers):
        size = base + (1 if w < rem else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def _run_chunk(fn: Callable, tasks: Sequence, chunk: Sequence[int]) -> List[tuple]:
    out = []
    for i in chunk:
        try:
            out.append((i, "ok", fn(tasks[i])))
        except BaseException as exc:  # ship, don't kill the chunk
            out.append((i, "err", ErrorCapsule(exc)))
    return out


def _child_main(conn, fn: Callable, tasks: Sequence, chunk: Sequence[int],
                faults=None, attempt: int = 0) -> None:
    """Forked-child entry: run the chunk, ship results, exit *hard*.

    ``os._exit`` matters: the child inherited the parent's interpreter
    state (pytest hooks, atexit handlers, open benchmark sessions) and
    must not run any of it on the way out.  Fault injection happens here,
    before any work: a fired ``worker.crash`` dies with
    :data:`INJECTED_CRASH_EXIT`, a fired ``worker.hang`` sleeps until
    the parent's watchdog reaps it.  The parent re-evaluates the same
    (stateless) predicates for provenance.
    """
    code = 0
    try:
        if faults is not None and len(chunk):
            coords = {"chunk": int(chunk[0]), "attempt": attempt}
            # Hang before crash: a plan arming both (the campaign's
            # ``--hang`` leg) pins the hang to one chunk and must not
            # have the broader crash predicate mask it.
            if faults.fires("worker.hang", **coords) is not None:
                time.sleep(_HANG_SLEEP)
            if faults.fires("worker.crash", **coords) is not None:
                os._exit(INJECTED_CRASH_EXIT)
        results = _run_chunk(fn, tasks, chunk)
        try:
            conn.send(results)
        except Exception as exc:  # an unpicklable *result* slipped through
            conn.send([(i, "err", ErrorCapsule(exc)) for i in chunk])
    except BaseException:
        code = 1
    finally:
        try:
            conn.close()
        except Exception:
            pass
        os._exit(code)


def _deadline_timeout(msg_done: int, n_tasks: int) -> LaunchTimeout:
    return LaunchTimeout(
        f"launch watchdog expired with {msg_done}/{n_tasks} work chunks done",
        blocks_done=msg_done,
        num_blocks=n_tasks,
    )


def fork_map(
    fn: Callable,
    tasks: Sequence,
    workers: Optional[int] = None,
    processes: bool = True,
    *,
    faults=None,
    retry: Optional[RetryPolicy] = None,
    deadline: Optional[float] = None,
    recover: bool = True,
    stats: Optional[dict] = None,
) -> List[Tuple[str, object]]:
    """Run ``fn`` over ``tasks`` across forked workers; ordered outcomes.

    Returns one ``("ok", result)`` or ``("err", ErrorCapsule)`` pair per
    task, in task order.  ``workers=None`` uses one worker per available
    CPU (capped at 8); ``processes=False`` forces the in-process path.

    Keyword-only recovery surface: ``faults`` is an optional
    :class:`repro.faults.FaultPlan` consulted at the worker hook sites;
    ``retry`` a :class:`RetryPolicy`; ``deadline`` an absolute
    :func:`time.monotonic` watchdog; ``recover=False`` restores the
    legacy raise-on-death behaviour; ``stats`` (a dict) receives the
    :data:`STAT_KEYS` counts for observability.
    """
    tasks = list(tasks)
    if stats is not None:
        for key in STAT_KEYS:
            stats.setdefault(key, 0)
    if not tasks:
        return []
    if workers is None:
        workers = min(os.cpu_count() or 1, 8)
    workers = max(1, min(int(workers), len(tasks)))
    policy = retry if retry is not None else RetryPolicy()

    if workers == 1 or not processes or not fork_available():
        if deadline is None:
            flat = _run_chunk(fn, tasks, range(len(tasks)))
        else:
            flat = []
            for i in range(len(tasks)):
                if time.monotonic() >= deadline:
                    if faults is not None:
                        faults.counters.timeouts += 1
                    raise _deadline_timeout(i, len(tasks))
                flat.extend(_run_chunk(fn, tasks, (i,)))
        return [(status, payload) for _, status, payload in flat]

    ctx = multiprocessing.get_context("fork")
    outcomes: List[Optional[Tuple[str, object]]] = [None] * len(tasks)
    hang = policy.hang_timeout
    if hang is None and faults is not None:
        hang = DEFAULT_FAULT_HANG_TIMEOUT

    def spawn(chunks: List[Sequence[int]], attempt: int):
        children = []
        for chunk in chunks:
            recv_end, send_end = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_child_main,
                args=(send_end, fn, tasks, chunk, faults, attempt),
            )
            proc.daemon = True
            proc.start()
            send_end.close()
            # The hang clock starts at spawn, not at first poll, so the
            # watchdogs of several hung workers expire concurrently.
            children.append((proc, recv_end, chunk, time.monotonic()))
        return children

    def reap(children) -> None:
        for proc, recv_end, _, _ in children:
            try:
                recv_end.close()
            except Exception:
                pass
            if proc.is_alive():
                proc.terminate()
            proc.join()

    def collect(children, attempt: int):
        """Drain every child; returns [(chunk, why, exitcode)] failures."""
        failed = []
        for pos, (proc, recv_end, chunk, started) in enumerate(children):
            why = None
            rows = None
            try:
                while rows is None and why is None:
                    budgets = []
                    if hang is not None:
                        budgets.append(hang - (time.monotonic() - started))
                    if deadline is not None:
                        budgets.append(deadline - time.monotonic())
                    try:
                        if not budgets:
                            rows = recv_end.recv()
                        elif recv_end.poll(max(0.0, min(budgets))):
                            rows = recv_end.recv()
                    except EOFError:
                        why = "died"
                        break
                    if rows is not None or why is not None:
                        break
                    now = time.monotonic()
                    if deadline is not None and now >= deadline:
                        reap(children[pos:])
                        if faults is not None:
                            faults.counters.timeouts += 1
                        done = sum(1 for o in outcomes if o is not None)
                        raise _deadline_timeout(done, len(tasks))
                    if hang is not None and now - started >= hang:
                        why = "hung"
            finally:
                if why is None and rows is None:
                    pass  # LaunchTimeout path already reaped
                else:
                    try:
                        recv_end.close()
                    except Exception:
                        pass
            if rows is not None:
                for i, status, payload in rows:
                    outcomes[i] = (status, payload)
                proc.join()
                continue
            if why == "hung":
                proc.terminate()
            proc.join()
            failed.append((list(chunk), why, proc.exitcode))
            if stats is not None:
                key = "worker_deaths" if why == "died" else "worker_hangs"
                stats[key] += 1
            if faults is not None:
                site = "worker.crash" if why == "died" else "worker.hang"
                coords = {"chunk": int(chunk[0]), "attempt": attempt}
                if faults.fires(site, **coords) is not None:
                    faults.record(site, coords, recovered=recover,
                                  detail=describe_exit(proc.exitcode))
        return failed

    chunks: List[Sequence[int]] = list(_chunk(len(tasks), workers))
    attempt = 0
    failed = collect(spawn(chunks, attempt), attempt)

    while failed and attempt < policy.max_retries:
        delay = min(policy.backoff_cap, policy.backoff * (2 ** attempt))
        if delay > 0:
            time.sleep(delay)
        attempt += 1
        indices = sorted(i for chunk, _, _ in failed for i in chunk)
        sub = _chunk(len(indices), workers)
        chunks = [[indices[p] for p in r] for r in sub if len(r)]
        if stats is not None:
            stats["chunk_retries"] += len(failed)
            stats["retry_rounds"] += 1
            if len(chunks) != len(failed):
                stats["redistributions"] += 1
        if faults is not None:
            faults.counters.chunk_retries += len(failed)
        failed = collect(spawn(chunks, attempt), attempt)

    if failed:
        if not recover:
            parts = []
            for chunk, why, code in failed:
                parts.append(
                    f"tasks {chunk[0]}..{chunk[-1]} {why} "
                    f"({describe_exit(code)})"
                )
            raise WorkerError(
                "worker process(es) failed before delivering results: "
                + "; ".join(parts)
            )
        # Degradation floor: run the still-missing tasks in-process.
        # Worker faults cannot fire here (they live in the forked child's
        # entry), so the map is guaranteed to complete.
        remaining = sorted(i for chunk, _, _ in failed for i in chunk)
        if stats is not None:
            stats["degraded_chunks"] += len(failed)
            stats["degraded_tasks"] += len(remaining)
        if faults is not None:
            faults.counters.degradations += 1
        for i, status, payload in _run_chunk(fn, tasks, remaining):
            outcomes[i] = (status, payload)
    return outcomes  # type: ignore[return-value]
