"""Per-block execution records: write-sets, atomic logs, and error capsules.

The parallel launch engine (:mod:`repro.exec.engine`) runs every thread
block against a *read-snapshot* of global memory and ships a
:class:`BlockRecord` back to the coordinator.  Two pieces make that
possible:

:class:`GlobalWriteRecorder`
    The block scheduler's mutation hook.  It observes every global-memory
    store and atomic a block performs (in exact commit order), remembers
    the overwritten values so the block's effects can be *undone* —
    restoring the snapshot for the next block in the shard — and compacts
    the observations into the record's merge inputs:

    * ``write_set`` — final value per plainly-stored element (cells no
      atomic ever touched); replayed last-writer-wins in block order;
    * ``oplog`` — the chronological store/atomic sequence for cells that
      at least one atomic touched; replayed op-by-op through
      :func:`repro.gpu.atomics.apply_atomic` so read-modify-write results
      compose exactly as a serial launch would have produced them.  Each
      atomic entry also carries the old value the block *observed* under
      its snapshot — the merge's read-validation handle for detecting
      blocks whose behaviour depended on another block's atomics.

    Only buffers that existed *before* the launch (handle below the
    watermark) are tracked: buffers a kernel allocates while running
    (e.g. the runtime's per-team ``dyn_counter`` scratch) are block-local
    by construction and never merged.

:class:`ErrorCapsule`
    A transport-safe wrapper for exceptions raised inside a worker.  The
    original exception object is carried when it pickles (the normal case
    — every :mod:`repro.errors` type does); otherwise the capsule falls
    back to ``(type name, message, attrs)`` and reconstructs an instance
    of the same class on the coordinator side.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Oplog entry tags.
OP_STORE = "s"
OP_ATOMIC = "a"

#: Internal log-only tag for vectorized stores (compacted to OP_STORE
#: semantics at :meth:`GlobalWriteRecorder.extract` time).
_LOG_BULK = "S"


class GlobalWriteRecorder:
    """Undoable log of one block's global-memory mutations.

    ``watermark`` is the global-memory handle watermark
    (:meth:`repro.gpu.memory.GlobalMemory.mark`) taken before the launch:
    only writes to buffers allocated before it are tracked.  The block
    scheduler calls :meth:`on_store` *before* applying a store (so the
    overwritten values can be captured) and :meth:`on_atomic` *after*
    applying an atomic (the old value is the atomic's own result).
    """

    __slots__ = ("watermark", "_log", "track_reads", "read_cells")

    def __init__(self, watermark: int, track_reads: bool = False) -> None:
        self.watermark = int(watermark)
        # ('s', buf, idx, old, new) | ('a', buf, idx, op, operand, old)
        self._log: List[tuple] = []
        #: When sanitizing, the merge also needs the cells a block *read*
        #: to decide whether the serial monitor could have flagged a
        #: cross-block race involving them.
        self.track_reads = bool(track_reads)
        self.read_cells: set = set()

    # -- scheduler hooks ---------------------------------------------------
    def tracks(self, buf) -> bool:
        return 0 < buf.handle < self.watermark

    def on_load(self, buf, idxs) -> None:
        """Record read cells (only when ``track_reads``; values not kept)."""
        handle = buf.handle
        for i in idxs:
            self.read_cells.add((handle, int(i)))

    def on_store(self, buf, idx, value) -> None:
        """Record one element store (called just before the write applies).

        The scheduler interleaves the hook with the writes element by
        element so a :class:`~repro.errors.MemoryFault` mid-run leaves
        exactly the prefix a serial launch would have left — ``buf.read``
        bounds-checks with the same fault the write itself would raise.
        """
        self._log.append((OP_STORE, buf, int(idx), buf.read(idx), value))

    def on_store_bulk(self, buf, idxs, values) -> None:
        """Record one vectorized store (called just before the bulk write).

        ``idxs`` is a slice or integer index array and ``values`` the
        matching per-element array — the JIT consumption engine's
        whole-warp commit shape.  Faulting stores never come through
        here: their committed prefix uses the elementwise
        :meth:`on_store` so the undo/extract order matches the
        interpreters exactly.
        """
        if isinstance(idxs, slice):
            idx = np.arange(idxs.start, idxs.stop, dtype=np.int64)
        else:
            idx = np.asarray(idxs, dtype=np.int64)
        self._log.append(
            (_LOG_BULK, buf, idx, buf.data[idx].copy(), np.asarray(values))
        )

    def on_atomic(self, buf, idx, op, operand, old) -> None:
        """Record one applied atomic (old value already in hand)."""
        if not self.tracks(buf):
            return
        self._log.append((OP_ATOMIC, buf, int(idx), op, operand, old))

    # -- lifecycle ---------------------------------------------------------
    def undo(self) -> None:
        """Revert every recorded mutation, restoring the pre-block snapshot."""
        for entry in reversed(self._log):
            if entry[0] == OP_STORE or entry[0] == _LOG_BULK:
                _, buf, idx, old, _new = entry
            else:
                _, buf, idx, _op, _operand, old = entry
            buf.data[idx] = old
            buf.mark_dirty_sel(idx)

    def extract(self) -> Tuple[Dict[Tuple[int, int], object], List[tuple]]:
        """Compact the log into ``(write_set, oplog)`` keyed by handle.

        Cells at least one atomic touched keep their full chronological
        op sequence (interleaving matters for replay); purely-stored
        cells compact to their final value.
        """
        atomic_cells = {
            (e[1].handle, e[2]) for e in self._log if e[0] == OP_ATOMIC
        }
        write_set: Dict[Tuple[int, int], object] = {}
        oplog: List[tuple] = []
        for e in self._log:
            if e[0] == _LOG_BULK:
                # Expand in array order — the elementwise commit order the
                # interpreters would have used for the same store.
                handle = e[1].handle
                idx_arr, vals = e[2], e[4]
                for k in range(idx_arr.size):
                    key = (handle, int(idx_arr[k]))
                    if key in atomic_cells:
                        oplog.append((OP_STORE, key[0], key[1], vals[k]))
                    else:
                        write_set[key] = vals[k]
                continue
            key = (e[1].handle, e[2])
            if e[0] == OP_STORE:
                if key in atomic_cells:
                    oplog.append((OP_STORE, key[0], key[1], e[4]))
                else:
                    write_set[key] = e[4]
            else:
                # Keep the old value the block *observed* under its
                # snapshot: the merge validates it against the replayed
                # value to detect cross-block atomic dependence.
                oplog.append((OP_ATOMIC, key[0], key[1], e[3], e[4], e[5]))
        return write_set, oplog


class ErrorCapsule:
    """A worker-side exception, shipped to (and re-raised by) the coordinator."""

    __slots__ = ("exception", "type_name", "message", "attrs")

    #: Structured-provenance attributes worth preserving across transport.
    _ATTRS = ("block_id", "round", "lanes", "buffer", "index", "sites")

    def __init__(self, exc: BaseException) -> None:
        self.type_name = type(exc).__name__
        self.message = str(exc)
        self.attrs = {}
        for name in self._ATTRS:
            val = getattr(exc, name, None)
            if val is not None:
                self.attrs[name] = val
        self.exception: Optional[BaseException] = exc
        try:
            pickle.loads(pickle.dumps(exc))
        except Exception:
            # Unpicklable (e.g. a kernel raised something holding a live
            # generator); fall back to reconstruction from the fields.
            self.exception = None

    def __getstate__(self):
        return (self.exception, self.type_name, self.message, self.attrs)

    def __setstate__(self, state):
        self.exception, self.type_name, self.message, self.attrs = state

    def rebuild(self) -> BaseException:
        if self.exception is not None:
            return self.exception
        import builtins

        from repro import errors as _errors

        cls = getattr(_errors, self.type_name, None)
        if cls is None:
            cls = getattr(builtins, self.type_name, None)
        if not (isinstance(cls, type) and issubclass(cls, BaseException)):
            cls = _errors.SimulationError
        try:
            exc = cls(self.message)
        except Exception:
            exc = _errors.SimulationError(f"{self.type_name}: {self.message}")
        for name, val in self.attrs.items():
            try:
                setattr(exc, name, val)
            except Exception:
                pass
        return exc

    def reraise(self) -> None:
        raise self.rebuild()


@dataclass
class BlockRecord:
    """Everything one isolated block execution produced.

    The coordinator merges records in ascending ``block_id``; a record
    with ``error`` set marks the cutoff — serial execution would never
    have run any later block.
    """

    block_id: int
    #: Scheduler counters (partial if the block errored mid-run).
    counters: object = None
    #: Shared-memory bytes the block used (0 unless it ran to completion,
    #: mirroring the serial launch loop, which skips the update when a
    #: block deadlocks in report mode).
    shared_used: int = 0
    completed: bool = False
    #: Final values of plainly-stored global cells: (handle, idx) -> value.
    write_set: Dict[Tuple[int, int], object] = field(default_factory=dict)
    #: Chronological store/atomic ops on atomic-touched cells.
    oplog: List[tuple] = field(default_factory=list)
    #: Tracked cells the block read (populated only under the sanitizer;
    #: drives cross-block race fallback in the merge).
    read_cells: set = field(default_factory=set)
    #: Per-block sanitizer report (None when not sanitizing).
    report: object = None
    #: Global allocations the kernel made and never freed (e.g. the
    #: runtime's per-team ``dyn_counter``, a leaked sharing fallback),
    #: captured as ``(name, size, dtype, dirty_pages)`` — only the pages
    #: the kernel actually wrote travel (the rest is still the zero fill
    #: a fresh allocation starts with) — so the coordinator can recreate
    #: them; serial launches leave them live in global memory and tests
    #: assert on ``live_bytes`` growth.
    live_allocs: List[tuple] = field(default_factory=list)
    #: Per-block numeric deltas of the launch's side-state objects.
    side_deltas: Tuple[Dict[str, float], ...] = ()
    #: Exception the block raised, if any.
    error: Optional[ErrorCapsule] = None
    #: True when ``error`` is a DeadlockError (drives report-mode halting).
    deadlock: bool = False
