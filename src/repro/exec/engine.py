"""Launch executors: the serial reference loop and the block-sharding engine.

The paper's execution model (§3) gives thread blocks no way to synchronize
with one another — teams map to blocks, and every barrier the runtime
offers is warp- or block-scoped.  A grid is therefore an embarrassingly
parallel bag of blocks, and :class:`ParallelExecutor` exploits exactly
that: it fans contiguous shards of blocks out over a worker pool (forked
processes by default, an in-process loop otherwise), runs **every block
against the pre-launch snapshot of global memory**, and has the
coordinator merge the per-block effects back deterministically.

Serial equivalence
==================

The merge is constructed so that, for any kernel that is well-formed
under the model (no block reads another block's writes, no block branches
on an atomic's returned old value accumulated across blocks), the result
is *bit-identical* to :class:`SerialExecutor`:

* plainly-stored cells carry their final per-block value and are applied
  last-writer-wins in ascending block id — the order the serial loop
  commits them;
* cells touched by atomics carry the block's chronological store/atomic
  op sequence and are **replayed through**
  :func:`repro.gpu.atomics.apply_atomic` in ascending block id, so
  read-modify-write results compose exactly as serial execution computed
  them (``add`` re-accumulates, ``max``/``min`` re-fold, ``cas`` re-tests);
  each replayed atomic's old value is *validated* against the value the
  block actually observed under its snapshot — a mismatch means the block
  could have branched on another block's atomic result (e.g. dynamic
  work-claiming off a shared counter), so the merge rolls itself back and
  the launch re-executes serially (optimistic execution with read
  validation);
* per-block counters, shared-memory high-water marks, sanitizer reports,
  and side-state deltas merge in ascending block id;
* a block that errors marks a *cutoff*: state merges only for blocks the
  serial loop would have executed (everything below the cutoff, plus the
  erroring block's partial effects), then the error re-raises — or, for a
  deadlock under a report-mode sanitizer, the launch truncates exactly
  where the serial loop ``break``s.

Running every block against the same snapshot (rather than letting a
shard accumulate its blocks' writes) is what makes the result invariant
to worker count and shard boundaries.  Conflicting non-atomic writes to
the same cell from different blocks — the one case where "some legal
interleaving" and "the serial interleaving" can disagree — are detected
during the merge and flagged as ``cross-block-write-conflict`` sanitizer
findings.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DeadlockError, LaunchError, LaunchTimeout
from repro.gpu.atomics import apply_atomic
from repro.gpu.block import DEFAULT_MAX_ROUNDS, ThreadBlock
from repro.gpu.counters import BlockCounters
from repro.exec.pool import RetryPolicy, fork_available, fork_map
from repro.exec.record import (
    OP_ATOMIC,
    OP_STORE,
    BlockRecord,
    ErrorCapsule,
    GlobalWriteRecorder,
)
from repro.exec.state import (
    apply_deltas,
    apply_pages,
    capture_dirty_pages,
    delta_numeric,
    restore_numeric,
    snapshot_numeric,
)

#: Default cap on auto-detected worker count.
MAX_AUTO_WORKERS = 8


@dataclass(frozen=True)
class GridSegment:
    """One sub-launch of a segmented (batched) grid.

    The serve tier's batcher coalesces compatible small launches into a
    single grid by concatenating their block ranges: segment *i*
    occupies global block ids ``[offset_i, offset_i + num_blocks)`` but
    its blocks execute with **local** coordinates — ``block_id`` in
    ``[0, num_blocks)`` and ``num_blocks`` equal to the segment's own
    grid — so every lane observes exactly what a solo launch of that
    request would have shown it.  That, plus the ascending-block-id
    merge, is what makes batched results bit-identical to unbatched
    runs (segments must touch disjoint buffers; the batcher enforces
    that before merging requests).
    """

    entry: object
    num_blocks: int
    label: Optional[str] = None


@dataclass
class SegmentOutcome:
    """Per-segment slice of a segmented launch's outcome.

    ``error`` carries the :class:`~repro.exec.record.ErrorCapsule` a
    solo launch of this segment would have *raised*; other segments are
    unaffected (each segment has its own serial-cutoff semantics).
    """

    blocks: List[BlockCounters] = field(default_factory=list)
    shared_used: int = 0
    error: Optional[ErrorCapsule] = None


@dataclass
class LaunchPlan:
    """Everything an executor needs to run one kernel launch.

    Built by :meth:`repro.gpu.device.Device.launch` after validation and
    sanitizer resolution; executors never consult the global sanitizer
    session or touch ``device.last_launch`` — the device applies those
    only after a successful merge.
    """

    entry: object
    args: tuple
    num_blocks: int
    threads_per_block: int
    max_rounds: int = DEFAULT_MAX_ROUNDS
    #: Legacy races-only raise-mode shorthand (per-block monitor built by
    #: the block itself when no config is given).
    detect_races: bool = False
    #: Resolved :class:`~repro.sanitizer.monitor.SanitizerConfig` (None =
    #: not sanitizing) and the report label.
    config: object = None
    label: Optional[str] = None
    #: True when a deadlock truncates the launch instead of raising.
    report_mode: bool = False
    schedule_policy: object = None
    #: Host-side observation hook; forces in-process serial execution.
    tracer: object = None
    #: Host-side accumulator objects (e.g. ``RuntimeCounters``) whose
    #: numeric fields blocks mutate; the parallel engine merges them as
    #: per-block deltas.
    side_state: tuple = ()
    #: Optional fault plan (:class:`repro.faults.FaultPlan`); consulted by
    #: the block scheduler, the sharing space, and the worker pool.
    faults: object = None
    #: Optional absolute :func:`time.monotonic` watchdog deadline; expiry
    #: raises :class:`~repro.errors.LaunchTimeout` (block granularity on
    #: the serial executor, chunk granularity on the pool).
    deadline: Optional[float] = None
    #: Optional worker-pool :class:`~repro.exec.pool.RetryPolicy`.
    retry: object = None
    #: Round-engine preference (see :mod:`repro.gpu.block`): None lets the
    #: block auto-select (fast when hook-free), False forces the
    #: instrumented engine — the differential suite's reference.  Hooks
    #: always force instrumented regardless of this field.
    fastpath: Optional[bool] = None
    #: Resolved round-engine name (``"instrumented"``/``"fast"``/``"jit"``;
    #: None falls back to ``fastpath``).  ``Device.launch`` resolves the
    #: kwarg/env/hook ladder before building the plan.
    engine: Optional[str] = None
    #: Per-launch :class:`repro.jit.stats.JitCounters` when ``engine`` is
    #: ``"jit"``; also rides ``side_state`` so worker deltas merge back.
    jit_stats: object = None
    #: Segmented (batched) grid: one :class:`GridSegment` per coalesced
    #: sub-launch, concatenated in ascending global block id.  When set,
    #: ``entry`` is unused, ``num_blocks`` must equal the segment total,
    #: and hooks (tracer/sanitizer/detect_races/schedule_policy) are
    #: rejected — batched launches are hook-free by construction.
    segments: Optional[Tuple[GridSegment, ...]] = None
    #: Optional :class:`repro.faults.checkpoint.LaunchCheckpoint`.  The
    #: parallel engine merges its completed block records instead of
    #: re-executing those blocks, and harvests newly completed blocks
    #: into it when an attempt dies mid-flight (watchdog timeout, merged
    #: block error) so ``launch(retries=..., resume=True)`` resumes from
    #: where the last attempt got to instead of from zero.
    checkpoint: object = None

    # -- segmented-grid geometry ------------------------------------------
    def segment_spans(self) -> List[Tuple[int, int]]:
        """``(start, end)`` global block-id span per segment."""
        spans = []
        start = 0
        for seg in self.segments or ():
            spans.append((start, start + seg.num_blocks))
            start += seg.num_blocks
        return spans

    def block_binding(self, block_id: int) -> Tuple[int, object, int, int]:
        """``(segment_index, entry, local_block_id, local_num_blocks)``
        for one global block id (identity for unsegmented plans)."""
        if self.segments is None:
            return 0, self.entry, block_id, self.num_blocks
        offset = 0
        for si, seg in enumerate(self.segments):
            if block_id < offset + seg.num_blocks:
                return si, seg.entry, block_id - offset, seg.num_blocks
            offset += seg.num_blocks
        raise LaunchError(
            f"block id {block_id} outside segmented grid of {offset} blocks"
        )

    def validate_segments(self) -> None:
        """Reject plan shapes the segmented executors do not support."""
        if self.segments is None:
            return
        total = sum(s.num_blocks for s in self.segments)
        if total != self.num_blocks:
            raise LaunchError(
                f"segmented plan covers {total} blocks but num_blocks is "
                f"{self.num_blocks}"
            )
        if (self.tracer is not None or self.config is not None
                or self.detect_races or self.schedule_policy is not None):
            raise LaunchError(
                "segmented (batched) launches are hook-free: tracer, "
                "sanitizer, detect_races, and schedule_policy require solo "
                "launches"
            )


@dataclass
class ExecOutcome:
    """What an executor hands back to ``Device.launch`` for composition."""

    blocks: List[BlockCounters]
    shared_used: int
    report: object = None
    cross_block_conflicts: int = 0
    #: Worker-pool recovery stats (:data:`repro.exec.pool.STAT_KEYS`);
    #: None when execution never touched the pool.
    recovery: Optional[dict] = None
    #: Per-segment outcomes for segmented (batched) plans; None otherwise.
    segments: Optional[List[SegmentOutcome]] = None
    #: Checkpoint/resume split (``plan.checkpoint``): blocks merged from
    #: a prior attempt's checkpoint vs blocks executed this attempt.
    blocks_resumed: int = 0
    blocks_replayed: int = 0


def _make_monitor(plan: LaunchPlan):
    if plan.config is None:
        return None
    from repro.sanitizer.monitor import SanitizerMonitor

    return SanitizerMonitor(plan.config, label=plan.label or "kernel")


class SerialExecutor:
    """The reference executor: the classic sequential block loop.

    Byte-for-byte the behaviour ``Device.launch`` always had — one
    shared monitor for the whole launch, blocks run in ascending id
    against live global memory, a report-mode deadlock truncates the
    loop without updating the deadlocked block's shared high-water mark.
    """

    def execute(self, device, plan: LaunchPlan) -> ExecOutcome:
        if plan.segments is not None:
            return self._execute_segments(device, plan)
        monitor = _make_monitor(plan)
        blocks: List[BlockCounters] = []
        shared_used = 0
        for block_id in range(plan.num_blocks):
            if plan.deadline is not None and time.monotonic() >= plan.deadline:
                if plan.faults is not None:
                    plan.faults.counters.timeouts += 1
                raise LaunchTimeout(
                    f"launch watchdog expired after {block_id}/"
                    f"{plan.num_blocks} blocks",
                    blocks_done=block_id,
                    num_blocks=plan.num_blocks,
                    progress=[(i, b.rounds) for i, b in enumerate(blocks)],
                )
            block = ThreadBlock(
                block_id=block_id,
                num_threads=plan.threads_per_block,
                params=device.params,
                gmem=device.gmem,
                entry=plan.entry,
                args=plan.args,
                num_blocks=plan.num_blocks,
                max_rounds=plan.max_rounds,
                tracer=plan.tracer,
                detect_races=plan.detect_races and monitor is None,
                monitor=monitor,
                schedule_policy=plan.schedule_policy,
                faults=plan.faults,
                fastpath=plan.fastpath,
                engine=plan.engine,
                jit_stats=plan.jit_stats,
            )
            try:
                blocks.append(block.run())
            except DeadlockError:
                if not plan.report_mode:
                    raise
                # Report mode: the deadlock finding is already recorded by
                # the analyzer; remaining blocks are skipped because the
                # launch cannot produce trustworthy results past this point.
                blocks.append(block.counters)
                break
            shared_used = max(shared_used, block.shared.used)
        report = monitor.finalize() if monitor is not None else None
        return ExecOutcome(blocks=blocks, shared_used=shared_used, report=report)

    def _execute_segments(self, device, plan: LaunchPlan) -> ExecOutcome:
        """Sequential reference loop for a segmented (batched) grid.

        Each segment runs its blocks in ascending *local* id against
        live global memory — byte-for-byte what a solo launch of that
        segment would do, because segments touch disjoint buffers.  An
        error inside a segment is captured into its
        :class:`SegmentOutcome` (the solo launch would have raised it
        after committing the partial state, which is exactly the state
        this loop leaves behind) and execution continues with the next
        segment.
        """
        plan.validate_segments()
        seg_outs = [SegmentOutcome() for _ in plan.segments]
        done = 0
        for out, seg in zip(seg_outs, plan.segments):
            for local_id in range(seg.num_blocks):
                if plan.deadline is not None and time.monotonic() >= plan.deadline:
                    if plan.faults is not None:
                        plan.faults.counters.timeouts += 1
                    raise LaunchTimeout(
                        f"launch watchdog expired after {done}/"
                        f"{plan.num_blocks} blocks",
                        blocks_done=done,
                        num_blocks=plan.num_blocks,
                    )
                block = ThreadBlock(
                    block_id=local_id,
                    num_threads=plan.threads_per_block,
                    params=device.params,
                    gmem=device.gmem,
                    entry=seg.entry,
                    args=plan.args,
                    num_blocks=seg.num_blocks,
                    max_rounds=plan.max_rounds,
                    faults=plan.faults,
                    fastpath=plan.fastpath,
                    engine=plan.engine,
                    jit_stats=plan.jit_stats,
                )
                try:
                    out.blocks.append(block.run())
                except Exception as err:
                    # The solo launch raises here; the batch demuxes the
                    # error to its request and runs the other segments.
                    out.blocks.append(block.counters)
                    out.error = ErrorCapsule(err)
                    done += seg.num_blocks - local_id
                    break
                out.shared_used = max(out.shared_used, block.shared.used)
                done += 1
        return ExecOutcome(
            blocks=[b for o in seg_outs for b in o.blocks],
            shared_used=max((o.shared_used for o in seg_outs), default=0),
            segments=seg_outs,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SerialExecutor()"


class ParallelExecutor:
    """Block-sharding launch engine with a deterministic merge.

    Parameters
    ----------
    workers:
        Worker count (None = one per CPU, capped at
        :data:`MAX_AUTO_WORKERS`).
    processes:
        True forces forked workers, False forces the in-process isolated
        loop, None picks processes when ``fork`` is available and more
        than one worker is useful.  Both paths run the identical
        snapshot/record/merge machinery — only the transport differs.
    shard_size:
        Blocks per work unit (None = one contiguous shard per worker).
        Exposed so the determinism tests can vary shard boundaries.

    Forked workers inherit the parent by copy-on-write, so kernel entry
    closures and live buffers need no pickling; only
    :class:`~repro.exec.record.BlockRecord` contents travel back.  The
    cost is that *host-side* mutations a kernel makes (appending to a
    Python list, printing) stay in the child — kernels observed that way
    (and ``tracer=`` launches, which the device routes to
    :class:`SerialExecutor`) need an in-process executor.
    """

    #: Consulted by ``Device.launch(resume=True)``: per-block isolated
    #: records make checkpoint/resume sound here (module docstring).
    supports_checkpoint = True

    def __init__(
        self,
        workers: Optional[int] = None,
        processes: Optional[bool] = None,
        shard_size: Optional[int] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if shard_size is not None and shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.workers = workers
        self.processes = processes
        self.shard_size = shard_size

    # ------------------------------------------------------------------
    def execute(self, device, plan: LaunchPlan) -> ExecOutcome:
        if plan.tracer is not None:
            # Closure observation needs the kernel in-process and in the
            # serial interleaving.
            return SerialExecutor().execute(device, plan)
        plan.validate_segments()
        n = plan.num_blocks
        workers = self.workers
        if workers is None:
            workers = min(os.cpu_count() or 1, MAX_AUTO_WORKERS)
        workers = max(1, min(int(workers), n))
        processes = self.processes
        if processes is None:
            processes = workers > 1 and fork_available()

        # The handle watermark separates pre-launch buffers (tracked,
        # merged) from kernel-time allocations (block-local by the model).
        watermark = device.gmem.mark()

        # Checkpoint/resume: blocks a prior attempt completed are merged
        # from their recorded deltas instead of re-executing.  Sound
        # because every block runs against the pre-launch snapshot — the
        # retry ladder's rollback restores exactly the state those
        # records were computed under (see repro.faults.checkpoint).
        ckpt = plan.checkpoint
        resumed: List[BlockRecord] = []
        block_ids: Sequence[int] = range(n)
        if ckpt is not None:
            ckpt.bind(n, plan.threads_per_block)
            done = ckpt.completed_ids()
            if done:
                block_ids = [b for b in range(n) if b not in done]
                resumed = ckpt.take(range(n))

        records: List[BlockRecord] = list(resumed)
        stats: dict = {}
        if block_ids:
            workers = min(workers, len(block_ids))
            size = self.shard_size or -(-len(block_ids) // workers)
            shards = [block_ids[s:s + size]
                      for s in range(0, len(block_ids), size)]

            def run_shard(ids):
                return [self._run_block(device, plan, watermark, b)
                        for b in ids]

            retry = plan.retry if plan.retry is not None else RetryPolicy()
            harvest: Optional[list] = [] if ckpt is not None else None
            try:
                shard_err = None
                for status, payload in fork_map(
                    run_shard,
                    shards,
                    workers=workers,
                    processes=processes,
                    faults=plan.faults,
                    retry=retry,
                    deadline=plan.deadline,
                    stats=stats,
                    partial=harvest,
                ):
                    if status == "err":
                        # Per-block errors are captured inside records; a
                        # shard-level error means the machinery itself
                        # failed.
                        shard_err = shard_err or payload
                        continue
                    records.extend(payload)
                if shard_err is not None:
                    shard_err.reraise()
                outcome = self._merge(device, plan, records)
            except BaseException:
                if ckpt is not None:
                    # Harvest what did complete — the timeout sink's
                    # shards plus any fully collected records — so the
                    # next attempt resumes instead of starting over.
                    for _, payload in harvest or ():
                        ckpt.add(payload)
                    ckpt.add(records)
                raise
        else:
            outcome = self._merge(device, plan, records)
        outcome.blocks_resumed = len(resumed)
        outcome.blocks_replayed = len(records) - len(resumed)
        if any(stats.values()):
            outcome.recovery = stats
        return outcome

    # ------------------------------------------------------------------
    def _run_block(self, device, plan: LaunchPlan, watermark: int, block_id: int) -> BlockRecord:
        """Run one block in isolation against the pre-launch snapshot.

        ``block_id`` is the *global* grid id (the merge key); for
        segmented plans the block executes with its segment's local
        coordinates so lanes observe exactly the solo-launch geometry.
        """
        gmem = device.gmem
        rec = GlobalWriteRecorder(watermark, track_reads=plan.config is not None)
        monitor = _make_monitor(plan)
        side_base = snapshot_numeric(plan.side_state)
        record = BlockRecord(block_id)
        block = None
        _, entry, local_id, local_blocks = plan.block_binding(block_id)
        try:
            block = ThreadBlock(
                block_id=local_id,
                num_threads=plan.threads_per_block,
                params=device.params,
                gmem=gmem,
                entry=entry,
                args=plan.args,
                num_blocks=local_blocks,
                max_rounds=plan.max_rounds,
                tracer=None,
                detect_races=plan.detect_races and monitor is None,
                monitor=monitor,
                schedule_policy=plan.schedule_policy,
                recorder=rec,
                faults=plan.faults,
                fastpath=plan.fastpath,
                engine=plan.engine,
                jit_stats=plan.jit_stats,
            )
            record.counters = block.run()
            record.completed = True
            record.shared_used = int(block.shared.used)
        except BaseException as err:
            record.error = ErrorCapsule(err)
            record.deadlock = isinstance(err, DeadlockError)
            record.counters = block.counters if block is not None else BlockCounters()
        finally:
            record.write_set, record.oplog = rec.extract()
            record.read_cells = rec.read_cells
            rec.undo()
            record.live_allocs = _capture_and_purge(gmem, watermark)
            record.side_deltas = delta_numeric(plan.side_state, side_base)
            restore_numeric(plan.side_state, side_base)
            if monitor is not None:
                record.report = monitor.finalize()
        return record

    # ------------------------------------------------------------------
    def _merge(self, device, plan: LaunchPlan, records: List[BlockRecord]) -> ExecOutcome:
        return merge_records(device, plan, records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelExecutor(workers={self.workers}, "
            f"processes={self.processes}, shard_size={self.shard_size})"
        )


def merge_records(device, plan: LaunchPlan, records: List[BlockRecord]) -> ExecOutcome:
    """Fold per-block records into the serial outcome, ascending id.

    Module-level (rather than a :class:`ParallelExecutor` method) so the
    serve tier's warm-pool lease can feed records produced by persistent
    remote workers through the *identical* merge the in-process engine
    uses — one deterministic-merge implementation for every transport.
    """
    records.sort(key=lambda r: r.block_id)

    if plan.segments is not None:
        return _merge_segments(device, plan, records)

    # Deterministic cutoff: the lowest-id error is the one the serial
    # loop would have hit; nothing past it ever ran serially.
    error_rec: Optional[BlockRecord] = None
    applied = records
    for i, r in enumerate(records):
        if r.error is not None:
            error_rec = r
            applied = records[: i + 1]
            break

    gmem = device.gmem
    if plan.config is not None and _sanitized_cross_block_sharing(applied):
        # The serial launch runs ONE monitor across all blocks, so its
        # happens-before analysis flags cross-block races; per-block
        # monitors cannot see them.  Whenever blocks share a tracked
        # cell in a potentially racing way, re-run serially so the
        # finding set matches ground truth exactly.  (No state was
        # applied yet — the snapshot is intact.)
        return SerialExecutor().execute(device, plan)
    if _apply_records(gmem, applied):
        # Read validation failed: some block observed an atomic old
        # value that cross-block interleaving changes, so its whole
        # execution is suspect.  The rollback restored the pre-launch
        # snapshot; re-execute the ground truth.
        return SerialExecutor().execute(device, plan)
    apply_deltas(plan.side_state, [r.side_deltas for r in applied])

    # An error that serial execution would have raised re-raises here,
    # after the partial state landed — mirroring the serial loop, where
    # every write before the raise is already committed.  A deadlock
    # under a report-mode sanitizer instead truncates the launch.
    if error_rec is not None and not (error_rec.deadlock and plan.report_mode):
        error_rec.error.reraise()

    blocks = [r.counters for r in applied]
    shared_used = max((r.shared_used for r in applied), default=0)
    conflicts = _find_cross_block_conflicts(gmem, applied)

    report = None
    if plan.config is not None:
        report = _merge_reports(plan, applied)
        for finding in conflicts:
            report.add(finding)
    return ExecOutcome(
        blocks=blocks,
        shared_used=shared_used,
        report=report,
        cross_block_conflicts=len(conflicts),
    )


def _merge_segments(device, plan: LaunchPlan, records: List[BlockRecord]) -> ExecOutcome:
    """Segmented merge: per-segment serial cutoff, one global apply pass.

    Records arrive sorted by global block id.  Within each segment the
    serial-cutoff rule applies independently — blocks past the segment's
    lowest-id error never ran in the solo launch, so their records are
    dropped — while *other* segments are untouched (solo launches of
    unrelated requests cannot observe each other's failures).  The
    surviving records then apply in one ascending-global-id pass, which
    equals running the solo launches back-to-back because segments touch
    disjoint buffers.
    """
    spans = plan.segment_spans()
    seg_outs = [SegmentOutcome() for _ in spans]
    applied: List[BlockRecord] = []
    si = 0
    cut = False
    for r in records:
        while r.block_id >= spans[si][1]:
            si += 1
            cut = False
        if cut:
            continue
        out = seg_outs[si]
        applied.append(r)
        out.blocks.append(r.counters)
        out.shared_used = max(out.shared_used, r.shared_used)
        if r.error is not None:
            out.error = r.error
            cut = True

    if _apply_records(device.gmem, applied):
        return SerialExecutor().execute(device, plan)
    apply_deltas(plan.side_state, [r.side_deltas for r in applied])
    conflicts = _find_cross_block_conflicts(device.gmem, applied)
    return ExecOutcome(
        blocks=[r.counters for r in applied],
        shared_used=max((o.shared_used for o in seg_outs), default=0),
        cross_block_conflicts=len(conflicts),
        segments=seg_outs,
    )


class _StaleAtomicRead(Exception):
    """Internal: merge-time read validation failed for one atomic."""


def _sanitized_cross_block_sharing(records: Sequence[BlockRecord]) -> bool:
    """True when blocks share a tracked cell in a way the launch-wide
    serial monitor could flag as a cross-block race: a plain write
    against *any* other block's access, or an atomic against another
    block's plain access.  Read-read and atomic-atomic sharing is
    race-free (and atomic results are still read-validated by
    :func:`_apply_records`)."""
    readers: Dict[Tuple[int, int], set] = {}
    writers: Dict[Tuple[int, int], set] = {}
    atomics: Dict[Tuple[int, int], set] = {}
    for r in records:
        b = r.block_id
        for cell in r.read_cells:
            readers.setdefault(cell, set()).add(b)
        for cell in r.write_set:
            writers.setdefault(cell, set()).add(b)
        for op in r.oplog:
            cell = (op[1], op[2])
            if op[0] == OP_STORE:
                writers.setdefault(cell, set()).add(b)
            else:
                atomics.setdefault(cell, set()).add(b)
    for cell, wb in writers.items():
        others = (
            readers.get(cell, set())
            | wb
            | atomics.get(cell, set())
        )
        if len(wb) > 1 or others - wb:
            return True
    for cell, ab in atomics.items():
        plain = readers.get(cell, set()) | writers.get(cell, set())
        if plain - ab:
            return True
    return False


def _apply_records(gmem, records: Sequence[BlockRecord]) -> bool:
    """Apply merged block effects to live memory; True if rolled back.

    Replays each record's write-set and oplog in ascending block id while
    validating every atomic: :func:`apply_atomic` recomputes the old
    value the *serial* interleaving would have produced, and if that
    differs from the value the block observed under its snapshot, the
    block's subsequent behaviour (control flow, later writes) cannot be
    trusted.  All effects applied so far are then undone — the caller
    falls back to serial execution against the intact pre-launch state.
    """
    undo: List[tuple] = []
    added: List[object] = []
    try:
        for r in records:
            # Columnar apply: group the write-set by buffer (first-seen
            # handle order), then one gather (old values, canonical
            # bounds fault) + one scatter per buffer instead of a Python
            # read/write round-trip per cell.  Cells are unique within a
            # record, so per-buffer grouping cannot reorder conflicting
            # writes.
            by_handle: Dict[int, Tuple[list, list]] = {}
            for (handle, idx), value in r.write_set.items():
                cols = by_handle.get(handle)
                if cols is None:
                    cols = by_handle[handle] = ([], [])
                cols[0].append(idx)
                cols[1].append(value)
            for handle, (idxs, values) in by_handle.items():
                buf = gmem.lookup(handle)
                idx_arr = np.asarray(idxs, dtype=np.int64)
                vals = np.asarray(values, dtype=buf.dtype)
                undo.append((buf, idx_arr, buf.gather(idx_arr)))
                buf.scatter(idx_arr, vals)
            for op in r.oplog:
                buf = gmem.lookup(op[1])
                idx = op[2]
                undo.append((buf, idx, buf.read(idx)))
                if op[0] == OP_STORE:
                    buf.write(idx, op[3])
                else:
                    old = apply_atomic(buf, idx, op[3], op[4])
                    # NaN-safe: anything but a clean match falls back to
                    # serial, which is always correct.
                    if not (old == op[5]):
                        raise _StaleAtomicRead
            for name, size, dtype, pages in r.live_allocs:
                buf = gmem.alloc(name, size, dtype)
                apply_pages(buf, pages)
                added.append(buf)
    except _StaleAtomicRead:
        for buf in added:
            gmem.free(buf)
        for buf, idx, old in reversed(undo):
            buf.data[idx] = old
            buf.mark_dirty_sel(idx)
        return True
    return False


def _capture_and_purge(gmem, watermark: int) -> List[tuple]:
    """Capture kernel-time global allocations still live, then drop them.

    Serial launches leave such allocations (per-team ``dyn_counter``
    scratch, leaked sharing fallbacks) live in global memory; the
    coordinator recreates them from the returned descriptions so
    ``live_bytes`` accounting matches.  Purging them here keeps the
    in-process path's parent state identical to the forked path's.
    """
    survivors = []
    for buf in gmem.allocated_since(watermark):
        if buf.space == "global":
            # Kernel-time allocations start zeroed with a clear bitmap,
            # so their dirty pages are exactly the written content —
            # ship those instead of the whole buffer.
            survivors.append(
                (buf.name, buf.size, buf.dtype, capture_dirty_pages(buf))
            )
            gmem.free(buf)
        else:
            # Shared/local buffers registered for handle travel: forget the
            # handle (the block that owned the memory is gone).
            gmem.drop(buf)
    return survivors


def _find_cross_block_conflicts(gmem, records: Sequence[BlockRecord]) -> List[object]:
    """Flag cells where distinct blocks' non-atomic writes collide.

    Two blocks plainly storing *different* final values to one cell, or
    one block plainly storing a cell another block updates atomically,
    is a cross-block data race the per-block monitors cannot see — and
    the one situation where the merged result is merely *a* legal
    interleaving rather than the serial one.
    """
    plain: Dict[Tuple[int, int], Dict[int, object]] = {}
    atomic: Dict[Tuple[int, int], List[int]] = {}
    for r in records:
        for cell, value in r.write_set.items():
            plain.setdefault(cell, {})[r.block_id] = value
        for op in r.oplog:
            cell = (op[1], op[2])
            if op[0] == OP_STORE:
                plain.setdefault(cell, {})[r.block_id] = op[3]
            else:
                blocks = atomic.setdefault(cell, [])
                if not blocks or blocks[-1] != r.block_id:
                    blocks.append(r.block_id)

    findings = []
    from repro.sanitizer.report import Finding

    for cell in sorted(plain):
        by_block = plain[cell]
        handle, idx = cell
        name = gmem.lookup(handle).name
        writers = sorted(by_block)
        values = [by_block[b] for b in writers]
        if len(writers) > 1 and any(v != values[0] for v in values[1:]):
            findings.append(Finding(
                category="cross-block-write-conflict",
                message=(
                    f"blocks {writers} store conflicting values to "
                    f"{name!r}[{idx}] with no inter-block ordering; the "
                    f"merged result keeps block {writers[-1]}'s value "
                    "(the serial interleaving), but any order is legal"
                ),
                address=(name, idx),
                extra={"blocks": writers},
            ))
        foreign_atomics = [b for b in atomic.get(cell, ()) if b not in by_block]
        if foreign_atomics:
            findings.append(Finding(
                category="cross-block-write-conflict",
                message=(
                    f"block(s) {writers} plainly store {name!r}[{idx}] "
                    f"while block(s) {sorted(set(foreign_atomics))} update "
                    "it atomically; plain stores do not compose with "
                    "cross-block atomics"
                ),
                address=(name, idx),
                extra={"blocks": writers, "atomic_blocks": sorted(set(foreign_atomics))},
            ))
    return findings


def _merge_reports(plan: LaunchPlan, records: Sequence[BlockRecord]):
    """Merge per-block sanitizer reports ascending, re-applying the
    launch-wide ``max_findings`` cap the serial shared monitor enforced."""
    from repro.sanitizer.report import SanitizerReport

    merged = SanitizerReport(plan.label or "kernel")
    cap = plan.config.max_findings
    for r in records:
        rep = r.report
        if rep is None:
            continue
        for finding in rep.findings:
            # The race detector suppresses further race findings once the
            # report is full; other detectors are never capped.
            if finding.category == "data-race" and len(merged.findings) >= cap:
                merged.truncated += 1
            else:
                merged.findings.append(finding)
        merged.notes.extend(rep.notes)
        for key, val in rep.stats.items():
            merged.bump(key, val)
        merged.truncated += rep.truncated
    return merged
