"""Numeric side-state snapshot/delta helpers.

``omp.launch`` threads a :class:`~repro.runtime.state.RuntimeCounters`
through every block's team runtime; blocks increment its integer fields
as they run.  Under the parallel executor those increments happen in
forked children (or must be undone between isolated blocks), so the
engine works with *deltas*: snapshot the object's numeric fields before
a block, diff after, restore, and let the coordinator sum the deltas of
every block that serial execution would have run and apply them to the
parent's live objects.

Only plain ``int``/``float``/NumPy-scalar attributes participate; any
other attribute is ignored.  This is intentionally duck-typed so other
accumulator-style side state can ride along via ``side_state=(...)``.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

_NUMERIC = (int, float, np.integer, np.floating)


def _numeric_fields(obj) -> Dict[str, float]:
    out = {}
    for name, val in vars(obj).items():
        if isinstance(val, bool):
            continue
        if isinstance(val, _NUMERIC):
            out[name] = val
    return out


def snapshot_numeric(objs: Sequence) -> Tuple[Dict[str, float], ...]:
    """Capture every numeric attribute of each side-state object."""
    return tuple(_numeric_fields(obj) for obj in objs)


def delta_numeric(objs: Sequence, base: Tuple[Dict[str, float], ...]):
    """Per-object ``{field: now - base}`` maps, dropping zero deltas."""
    deltas = []
    for obj, snap in zip(objs, base):
        cur = _numeric_fields(obj)
        deltas.append({k: cur[k] - v for k, v in snap.items()
                       if k in cur and cur[k] != v})
    return tuple(deltas)


def restore_numeric(objs: Sequence, base: Tuple[Dict[str, float], ...]) -> None:
    """Reset each object's numeric attributes to the snapshot values."""
    for obj, snap in zip(objs, base):
        for name, val in snap.items():
            setattr(obj, name, val)


def apply_deltas(objs: Sequence, deltas: Sequence[Tuple[Dict[str, float], ...]]) -> None:
    """Add accumulated per-block deltas onto the live side-state objects."""
    for per_block in deltas:
        for obj, delta in zip(objs, per_block):
            for name, inc in delta.items():
                setattr(obj, name, getattr(obj, name) + inc)


# -- dirty-page capture/apply (paged buffer state) ---------------------------
#
# Kernel-time allocations travel between executor and coordinator as
# ``(name, size, dtype, pages)`` where ``pages`` is the buffer's dirty
# pages only.  A fresh allocation starts zeroed with a clear bitmap and
# every mutating path marks its page, so unmarked pages are still zero on
# both sides — copying just the dirty ones reconstructs the buffer
# bit-identically at a fraction of the shipping cost.

def capture_dirty_pages(buf) -> list:
    """``[(page, elements_copy), ...]`` for every dirty page of ``buf``."""
    pages = []
    for page in buf.dirty_page_indices():
        lo, hi = buf.page_span(page)
        pages.append((int(page), buf.data[lo:hi].copy()))
    return pages


def apply_pages(buf, pages) -> None:
    """Copy captured pages into ``buf`` (marking them dirty)."""
    for page, chunk in pages:
        lo, hi = buf.page_span(page)
        buf.data[lo:hi] = chunk
        buf.mark_dirty_span(lo, hi)
