"""Differential execution of one generated program across the matrix.

One :class:`~repro.fuzz.generate.KernelPlan` runs through every *leg* of
the engines × executors × schedules matrix:

========================  ===================================================
leg                       what it pins
========================  ===================================================
``instrumented``          reference round engine, serial executor
``fast``                  fast-path round engine, serial executor
``jit``                   trace-compiling round engine, serial executor
``fast-parallel``         fast engine under the in-process parallel executor
``jit-parallel``          jit engine under the in-process parallel executor
``schedule``              instrumented engine under a seeded
                          :class:`~repro.sanitizer.ShuffleSchedule` (warp and
                          commit order permuted — race-free programs must not
                          notice)
``batch``                 segmented serve batching: the program prepared
                          twice, coalesced into one grid by
                          :func:`repro.serve.run_batch`, both demuxed results
                          checked identical
========================  ===================================================

Every leg's final memory is compared **bit-for-bit** against the serial
numpy oracle and every other leg; counters are compared across legs
after stripping launch-scoped JIT telemetry (``extra["engine"]``,
``extra["jit_*"]``) — the same carve-out the serve batch-equivalence
contract documents, because whether a launch *compiled* is an engine
property, not program semantics.  The schedule leg additionally skips
counter comparison entirely (see :class:`LegOutcome.compare_counters`):
cost accounting is schedule-dependent even when memory is not.  Errors
must agree in type and message
across legs (generated plans do not error; the check exists so an
engine-specific crash is a reported mismatch, not an escape).

Every leg builds a fresh :class:`~repro.gpu.device.Device` and fresh
buffers from the same seeded inputs, so legs cannot contaminate each
other.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fuzz.generate import (
    ARG_NAMES,
    KernelPlan,
    build_program,
    make_inputs,
    oracle,
    plan_from_seed,
)

__all__ = [
    "CampaignResult",
    "LegOutcome",
    "Mismatch",
    "ProgramResult",
    "default_legs",
    "run_campaign",
    "run_leg",
    "run_program",
]

#: Counter keys excluded from cross-leg comparison.  Engine identity and
#: JIT compile/deopt telemetry are launch-scoped (the batch path omits
#: them entirely); cycle/occupancy composition is engine-independent and
#: **is** compared.
_TELEMETRY_KEYS = ("engine",)
_TELEMETRY_PREFIX = "jit_"


def _strip_telemetry(extra: Dict[str, object]) -> Dict[str, object]:
    return {
        k: v for k, v in extra.items()
        if k not in _TELEMETRY_KEYS and not k.startswith(_TELEMETRY_PREFIX)
    }


@dataclass
class LegOutcome:
    """What one leg produced: memory, counters, or an error.

    ``compare_counters`` is False for the schedule-permutation leg:
    permuting warp/commit order legitimately changes *cost accounting*
    (atomic contention retries, issue grouping, float summation order in
    cycle composition) while memory semantics must hold — so that leg
    diffs outputs and errors only.
    """

    leg: str
    outputs: Dict[str, np.ndarray] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    error: Optional[Tuple[str, str]] = None
    compare_counters: bool = True

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class Mismatch:
    """One divergence between two legs (or a leg and the oracle)."""

    seed: int
    leg: str
    against: str
    what: str  # "output:<buf>" | "counter:<key>" | "error"
    detail: str

    def describe(self) -> str:
        return (f"seed {self.seed}: {self.leg} vs {self.against} — "
                f"{self.what}: {self.detail}")


@dataclass
class ProgramResult:
    """Differential verdict for one plan."""

    plan: KernelPlan
    legs: List[LegOutcome] = field(default_factory=list)
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


@dataclass
class CampaignResult:
    """Aggregate verdict of a seeded campaign."""

    programs: int = 0
    failures: List[ProgramResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    stop_reason: str = "exhausted"

    @property
    def ok(self) -> bool:
        return not self.failures

    def describe(self) -> str:
        verdict = "PASS" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (f"fuzz campaign: {self.programs} program(s), {verdict}, "
                f"wall={self.wall_seconds:.1f}s, stop={self.stop_reason}")


# ---------------------------------------------------------------------------
# Leg execution
# ---------------------------------------------------------------------------


def _fresh_device():
    from repro.gpu.device import Device

    return Device()


def _solo_leg(plan: KernelPlan, *, engine: Optional[str], parallel: bool,
              schedule_seed: Optional[int] = None,
              executor=None) -> LegOutcome:
    from repro.core import api as omp

    name = _leg_name(engine, parallel, schedule_seed)
    dev = _fresh_device()
    inputs = make_inputs(plan)
    buffers = {k: dev.from_array(k, v) for k, v in sorted(inputs.items())}
    tree, launch_kwargs = build_program(plan)
    if parallel:
        from repro.exec import ParallelExecutor

        executor = ParallelExecutor(workers=2, processes=False)
    policy = None
    if schedule_seed is not None:
        from repro.sanitizer import ShuffleSchedule

        policy = ShuffleSchedule(schedule_seed)
    try:
        result = omp.launch(
            dev, tree, args=buffers, engine=engine, executor=executor,
            schedule_policy=policy, **launch_kwargs,
        )
    except Exception as err:
        return LegOutcome(leg=name, error=(type(err).__name__, str(err)))
    counters = dict(result.counters.summary())
    counters.update({k: v for k, v in result.counters.extra.items()
                     if isinstance(v, (int, float))})
    return LegOutcome(
        leg=name,
        outputs={k: buffers[k].to_numpy().copy() for k in ARG_NAMES},
        counters=_strip_telemetry(counters),
        compare_counters=policy is None,
    )


def _batch_leg(plan: KernelPlan, engine: str = "fast") -> LegOutcome:
    """Serve-tier leg: the same program prepared twice, run as one
    segmented grid, both demuxed results required identical."""
    from repro.core import api as omp
    from repro.serve import KernelCatalog, prepare, run_batch
    from repro.serve.batch import release

    name = f"batch-{engine}"
    dev = _fresh_device()
    inputs = make_inputs(plan)
    tree, launch_kwargs = build_program(plan)
    try:
        kernel = omp.compile(tree, ARG_NAMES, name=f"fuzz-{plan.seed}")
        catalog = KernelCatalog()
        catalog.register("prog", kernel)
        prepared = [
            prepare(dev, catalog, "prog", inputs,
                    num_teams=launch_kwargs["num_teams"],
                    team_size=launch_kwargs["team_size"],
                    simd_len=launch_kwargs["simd_len"],
                    tag=f"req{i}")
            for i in range(2)
        ]
        outcomes = run_batch(dev, prepared, engine=engine)
        for oc in outcomes:
            oc.raise_for_error()
        first = {k: v.copy() for k, v in outcomes[0].outputs.items()}
        for k in ARG_NAMES:
            if not _bit_equal(first[k], outcomes[1].outputs[k]):
                return LegOutcome(leg=name, error=(
                    "BatchSelfMismatch",
                    f"batched twin requests disagree on {k!r}",
                ))
        counters = dict(outcomes[0].counters.summary())
        counters.update({k: v for k, v in outcomes[0].counters.extra.items()
                         if isinstance(v, (int, float))})
        for p in prepared:
            release(dev, p)
    except Exception as err:
        return LegOutcome(leg=name, error=(type(err).__name__, str(err)))
    return LegOutcome(leg=name, outputs=first,
                      counters=_strip_telemetry(counters))


def _leg_name(engine: Optional[str], parallel: bool,
              schedule_seed: Optional[int]) -> str:
    if schedule_seed is not None:
        return f"schedule-{schedule_seed}"
    base = engine or "auto"
    return f"{base}-parallel" if parallel else base


def default_legs(smoke: bool = False, executor=None,
                 ) -> List[Tuple[str, Callable[[KernelPlan], LegOutcome]]]:
    """The standard matrix.  ``smoke=True`` trims to the cheap core
    (three engines, serial) for per-PR CI.  ``executor`` replaces the
    default executor on the serial engine legs — the test suite passes
    its environment-resolved ``executor`` fixture here so the matrix
    also runs under ``REPRO_EXECUTOR=parallel``/``fork:N`` sweeps."""

    legs: List[Tuple[str, Callable[[KernelPlan], LegOutcome]]] = [
        ("instrumented", lambda p: _solo_leg(p, engine="instrumented",
                                             parallel=False,
                                             executor=executor)),
        ("fast", lambda p: _solo_leg(p, engine="fast", parallel=False,
                                     executor=executor)),
        ("jit", lambda p: _solo_leg(p, engine="jit", parallel=False,
                                    executor=executor)),
    ]
    if not smoke:
        legs += [
            ("fast-parallel", lambda p: _solo_leg(p, engine="fast",
                                                  parallel=True)),
            ("jit-parallel", lambda p: _solo_leg(p, engine="jit",
                                                 parallel=True)),
            ("schedule", lambda p: _solo_leg(p, engine=None, parallel=False,
                                             schedule_seed=p.seed)),
            ("batch", _batch_leg),
        ]
    return legs


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def _bit_equal(a: np.ndarray, b: np.ndarray) -> bool:
    a = np.asarray(a)
    b = np.asarray(b)
    return (a.dtype == b.dtype and a.shape == b.shape
            and bool(np.array_equal(a, b, equal_nan=True)))


def _first_diff(a: np.ndarray, b: np.ndarray) -> str:
    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype != b.dtype or a.shape != b.shape:
        return f"dtype/shape {a.dtype}{a.shape} vs {b.dtype}{b.shape}"
    neq = ~np.isclose(a, b, rtol=0, atol=0, equal_nan=True)
    idx = int(np.argmax(neq))
    return (f"{int(neq.sum())} element(s) differ, first at [{idx}]: "
            f"{a.flat[idx]!r} vs {b.flat[idx]!r}")


def _compare_outputs(seed: int, name_a: str, outs_a: Dict[str, np.ndarray],
                     name_b: str, outs_b: Dict[str, np.ndarray]) -> List[Mismatch]:
    bad = []
    for key in sorted(set(outs_a) | set(outs_b)):
        if key not in outs_a or key not in outs_b:
            bad.append(Mismatch(seed, name_b, name_a, f"output:{key}",
                                "buffer missing on one leg"))
        elif not _bit_equal(outs_a[key], outs_b[key]):
            bad.append(Mismatch(seed, name_b, name_a, f"output:{key}",
                                _first_diff(outs_a[key], outs_b[key])))
    return bad


def _compare_counters(seed: int, ref: LegOutcome, leg: LegOutcome) -> List[Mismatch]:
    bad = []
    keys = set(ref.counters) & set(leg.counters)
    for key in sorted(keys):
        if ref.counters[key] != leg.counters[key]:
            bad.append(Mismatch(
                seed, leg.leg, ref.leg, f"counter:{key}",
                f"{leg.counters[key]!r} vs {ref.counters[key]!r}"))
    return bad


def run_leg(plan: KernelPlan, leg: str) -> LegOutcome:
    """Run one named leg of the default matrix."""
    for name, fn in default_legs(smoke=False):
        if name == leg:
            return fn(plan)
    raise ValueError(f"unknown leg {leg!r}")


def run_program(plan: KernelPlan,
                legs: Optional[Sequence[Tuple[str, Callable]]] = None,
                ) -> ProgramResult:
    """Run one plan through the matrix and diff everything."""
    legs = list(legs if legs is not None else default_legs())
    result = ProgramResult(plan=plan)
    expect = oracle(plan, make_inputs(plan))
    ref: Optional[LegOutcome] = None
    for name, fn in legs:
        outcome = fn(plan)
        result.legs.append(outcome)
        if outcome.ok:
            result.mismatches.extend(_compare_outputs(
                plan.seed, "oracle", expect, outcome.leg, outcome.outputs))
        if ref is None:
            ref = outcome
            continue
        if outcome.ok != ref.ok or (
                not outcome.ok and outcome.error != ref.error):
            result.mismatches.append(Mismatch(
                plan.seed, outcome.leg, ref.leg, "error",
                f"{outcome.error!r} vs {ref.error!r}"))
            continue
        if outcome.ok and ref.compare_counters and outcome.compare_counters:
            result.mismatches.extend(_compare_counters(plan.seed, ref, outcome))
    return result


def run_campaign(count: int, seed0: int, *, smoke: bool = False,
                 legs: Optional[Sequence[Tuple[str, Callable]]] = None,
                 max_seconds: Optional[float] = None,
                 stop_on_failure: bool = False,
                 progress: Optional[Callable[[int, ProgramResult], None]] = None,
                 ) -> CampaignResult:
    """Run ``count`` seeded programs: seeds ``seed0 .. seed0+count-1``."""
    legs = list(legs if legs is not None else default_legs(smoke=smoke))
    started = time.monotonic()
    campaign = CampaignResult()
    for i in range(count):
        if max_seconds is not None and time.monotonic() - started >= max_seconds:
            campaign.stop_reason = "max_seconds"
            break
        plan = plan_from_seed(seed0 + i)
        result = run_program(plan, legs=legs)
        campaign.programs += 1
        if not result.ok:
            campaign.failures.append(result)
            if stop_on_failure:
                campaign.stop_reason = "failure"
                if progress is not None:
                    progress(i, result)
                break
        if progress is not None:
            progress(i, result)
    campaign.wall_seconds = time.monotonic() - started
    return campaign
