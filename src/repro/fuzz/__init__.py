"""repro.fuzz — generative differential testing of the whole stack.

A ``riescue``-style constrained-random kernel fuzzer: every program is a
discrete, seeded *test plan* (:class:`~repro.fuzz.generate.KernelPlan`)
drawn from a closed grammar of valid teams/parallel/simd directive
shapes and race-free leaf-body statements, with expected values computed
by a trivially-serial numpy oracle — so every generated kernel is
self-checking and every failure replays from its integer seed alone.

* :mod:`~repro.fuzz.generate` — plan grammar, directive-tree builder,
  input synthesis, and the serial oracle;
* :mod:`~repro.fuzz.harness` — runs one program through the
  engines × executors × schedules matrix (instrumented/fast/jit,
  serial/parallel, permuted warp order, segmented serve batching) and
  diffs memory, counters, and errors bit-for-bit;
* :mod:`~repro.fuzz.minimize` — shrinks a failing plan by plan-field
  reduction (drop statements, shrink geometry/trips, flatten structure)
  under re-verification;
* :mod:`~repro.fuzz.__main__` — ``python -m repro.fuzz`` CLI: seeded
  campaign, replay-by-seed, minimize-on-failure.

The standing campaign seed is **2023** (the same convention as the
fault-injection campaign, see ``docs/RESILIENCE.md``); CI runs a smoke
slice of the seeded campaign on every PR and the full bounded campaign
nightly (``docs/FUZZING.md``).
"""

from __future__ import annotations

from repro.fuzz.generate import (
    CAMPAIGN_SEED,
    KernelPlan,
    build_program,
    make_inputs,
    oracle,
    plan_from_seed,
)
from repro.fuzz.harness import (
    LegOutcome,
    Mismatch,
    ProgramResult,
    default_legs,
    run_campaign,
    run_leg,
    run_program,
)
from repro.fuzz.minimize import minimize

__all__ = [
    "CAMPAIGN_SEED",
    "KernelPlan",
    "LegOutcome",
    "Mismatch",
    "ProgramResult",
    "build_program",
    "default_legs",
    "make_inputs",
    "minimize",
    "oracle",
    "plan_from_seed",
    "run_campaign",
    "run_leg",
    "run_program",
]
