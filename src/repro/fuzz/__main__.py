"""``python -m repro.fuzz`` — seeded campaigns, replay, minimize.

Every failure is a one-line deterministic repro::

    python -m repro.fuzz campaign --count 1000 --seed 2023
    python -m repro.fuzz replay --seed 2042          # re-run one program
    python -m repro.fuzz replay --plan repro.json    # re-run a saved plan
    python -m repro.fuzz minimize --plan repro.json  # shrink a failure

``campaign`` exits nonzero on any mismatch; with ``--artifacts DIR`` it
writes ``campaign.json`` (exploration statistics + failing seeds) and,
per failure, ``repro-<seed>.json`` — the *minimized* plan plus the
mismatch list — which CI uploads on failure.  ``--smoke`` trims the leg
matrix to the three engines serial-only for the per-PR slice.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.fuzz.generate import (
    CAMPAIGN_SEED,
    plan_from_dict,
    plan_from_seed,
)
from repro.fuzz.harness import default_legs, run_campaign, run_program
from repro.fuzz.minimize import minimize, shrink_summary


def _result_payload(result) -> dict:
    return {
        "seed": result.plan.seed,
        "plan": result.plan.to_dict(),
        "mismatches": [m.describe() for m in result.mismatches],
        "legs": [leg.leg for leg in result.legs],
    }


def _minimized_payload(result, smoke: bool) -> dict:
    legs = default_legs(smoke=smoke)

    def failing(p):
        return not run_program(p, legs=legs).ok

    payload = _result_payload(result)
    try:
        small = minimize(result.plan, failing)
        payload["minimized_plan"] = small.to_dict()
        payload["shrink"] = shrink_summary(result.plan, small)
    except ValueError:
        # Flaky under re-run: report the original plan untouched.
        payload["minimized_plan"] = None
        payload["shrink"] = "failure did not reproduce under minimization"
    return payload


def cmd_campaign(argv) -> int:
    ap = argparse.ArgumentParser(prog="repro.fuzz campaign")
    ap.add_argument("--count", type=int, default=100,
                    help="programs to run (seeds seed..seed+count-1)")
    ap.add_argument("--seed", type=int, default=CAMPAIGN_SEED,
                    help=f"first seed (default {CAMPAIGN_SEED}, the "
                         "documented campaign seed)")
    ap.add_argument("--smoke", action="store_true",
                    help="engine-only serial legs (per-PR CI slice)")
    ap.add_argument("--max-seconds", type=float, default=None,
                    help="wall-clock budget for the campaign")
    ap.add_argument("--stop-on-failure", action="store_true")
    ap.add_argument("--artifacts", default=None,
                    help="directory for campaign.json + repro-<seed>.json")
    ap.add_argument("--progress-every", type=int, default=100)
    args = ap.parse_args(argv)

    def progress(i, result):
        if (i + 1) % args.progress_every == 0 or not result.ok:
            status = "ok" if result.ok else "FAIL"
            print(f"[{i + 1}/{args.count}] seed {result.plan.seed}: {status}",
                  flush=True)

    campaign = run_campaign(
        args.count, args.seed, smoke=args.smoke,
        max_seconds=args.max_seconds, stop_on_failure=args.stop_on_failure,
        progress=progress,
    )
    print(campaign.describe())
    for failure in campaign.failures:
        print(f"  replay: python -m repro.fuzz replay --seed "
              f"{failure.plan.seed}" + (" --smoke" if args.smoke else ""))
        for m in failure.mismatches[:8]:
            print(f"    {m.describe()}")

    if args.artifacts:
        os.makedirs(args.artifacts, exist_ok=True)
        summary = {
            "seed": args.seed,
            "count": args.count,
            "programs": campaign.programs,
            "ok": campaign.ok,
            "wall_seconds": campaign.wall_seconds,
            "stop_reason": campaign.stop_reason,
            "failing_seeds": [f.plan.seed for f in campaign.failures],
        }
        with open(os.path.join(args.artifacts, "campaign.json"), "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
        for failure in campaign.failures:
            payload = _minimized_payload(failure, args.smoke)
            path = os.path.join(
                args.artifacts, f"repro-{failure.plan.seed}.json")
            with open(path, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            print(f"  minimized repro written: {path}")
    return 0 if campaign.ok else 1


def _load_plan(args):
    if args.plan:
        with open(args.plan) as fh:
            data = json.load(fh)
        return plan_from_dict(data.get("minimized_plan") or data.get("plan") or data)
    if args.seed is None:
        raise SystemExit("pass --seed or --plan")
    return plan_from_seed(args.seed)


def cmd_replay(argv) -> int:
    ap = argparse.ArgumentParser(prog="repro.fuzz replay")
    ap.add_argument("--seed", type=int, default=None)
    ap.add_argument("--plan", default=None, help="plan/repro JSON file")
    ap.add_argument("--smoke", action="store_true")
    args = ap.parse_args(argv)
    plan = _load_plan(args)
    print(plan.describe())
    result = run_program(plan, legs=default_legs(smoke=args.smoke))
    if result.ok:
        print(f"PASS across {len(result.legs)} leg(s)")
        return 0
    print(f"FAIL: {len(result.mismatches)} mismatch(es)")
    for m in result.mismatches:
        print(f"  {m.describe()}")
    return 1


def cmd_minimize(argv) -> int:
    ap = argparse.ArgumentParser(prog="repro.fuzz minimize")
    ap.add_argument("--seed", type=int, default=None)
    ap.add_argument("--plan", default=None)
    ap.add_argument("--smoke", action="store_true")
    ap.add_argument("--out", default=None, help="write minimized plan JSON")
    args = ap.parse_args(argv)
    plan = _load_plan(args)
    legs = default_legs(smoke=args.smoke)

    def failing(p):
        return not run_program(p, legs=legs).ok

    if not failing(plan):
        print("plan passes the matrix; nothing to minimize")
        return 0
    small = minimize(plan, failing)
    print(shrink_summary(plan, small))
    print("minimized:", small.describe())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump({"plan": small.to_dict()}, fh, indent=2, sort_keys=True)
        print("written:", args.out)
    return 1  # the input was a real failure


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    commands = {"campaign": cmd_campaign, "replay": cmd_replay,
                "minimize": cmd_minimize}
    if not argv or argv[0] not in commands:
        print(__doc__)
        return 2
    return commands[argv[0]](argv[1:])


if __name__ == "__main__":
    raise SystemExit(main())
