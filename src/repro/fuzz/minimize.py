"""Plan-field shrinking of a failing fuzz program.

``riescue``-style test plans are plain discrete data, so minimization is
*plan-field reduction*, not token-level delta debugging: each pass
proposes a strictly simpler plan (fewer statements, smaller trips,
smaller geometry, flatter structure), re-runs the failure predicate, and
keeps the proposal only if it still fails.  Passes repeat to a fixpoint,
so the result is 1-minimal with respect to the proposal set: no single
remaining simplification preserves the failure.

The predicate is arbitrary (``lambda plan: not run_program(plan).ok`` is
the usual one), so the minimizer works for harness mismatches, injected
bugs, and engine crashes alike.  Because plans cap at 8 drawn statements
and the minimizer only removes them, any repro it emits is ≤ 10
statements by construction.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, List

from repro.fuzz.generate import KernelPlan, total_iterations

__all__ = ["minimize", "simpler_plans"]

#: Shrink targets per field, in preference order (first = simplest).
_TRIP_LADDER = (4, 8, 16, 32, 33, 64, 100, 128)


def _shrunk_values(current: int, ladder=_TRIP_LADDER) -> List[int]:
    return [v for v in ladder if v < current]


def simpler_plans(plan: KernelPlan) -> Iterator[KernelPlan]:
    """Yield candidate simplifications, simplest-first within each axis.

    Geometry invariants are preserved: the ``sync`` structure keeps
    ``outer == num_teams * team_size`` (its cross-lane statements are
    only uniform under that shape), and structure flattening drops the
    cross-lane statements that only ``sync`` may carry.
    """
    stmts = plan.statements
    # 1. Drop one statement at a time (largest index first so stores
    #    that feed the failure tend to survive until truly needed).
    for i in range(len(stmts) - 1, -1, -1):
        if len(stmts) > 1:
            yield replace(plan, statements=stmts[:i] + stmts[i + 1:])
    # 2. Shrink geometry.
    if plan.num_teams > 1:
        yield _with_geometry(plan, num_teams=1)
    if plan.team_size > 32:
        yield _with_geometry(plan, team_size=32)
    if plan.simd_len > 1 and plan.structure != "sync":
        yield replace(plan, simd_len=1)
    # 3. Shrink trip counts.
    if plan.structure == "sync":
        pass  # outer is pinned to num_teams * team_size
    else:
        for v in _shrunk_values(plan.outer):
            yield replace(plan, outer=v)
    if plan.structure == "split":
        for v in _shrunk_values(plan.mid):
            yield replace(plan, mid=v)
    if plan.structure in ("simd", "simd_reduce", "split"):
        for v in _shrunk_values(plan.inner):
            yield replace(plan, inner=v)
    # 4. Flatten the structure (drop statements only "sync" may carry).
    if plan.structure != "flat":
        scalar = tuple(s for s in stmts if s[0] not in (
            "shfl_xor", "vote", "ballot", "syncwarp", "syncthreads"))
        if scalar:
            yield replace(plan, structure="flat", mode="auto",
                          statements=scalar,
                          outer=min(plan.outer, 64))
    # 5. Default the scheduling clauses.
    if plan.schedule != "static_cyclic":
        yield replace(plan, schedule="static_cyclic")
    if plan.chunk != 1:
        yield replace(plan, chunk=1)
    if plan.dist_schedule != "static":
        yield replace(plan, dist_schedule="static")
    if plan.dist_chunk != 1:
        yield replace(plan, dist_chunk=1)
    if plan.mode != "auto" and plan.structure != "sync":
        yield replace(plan, mode="auto")


def _with_geometry(plan: KernelPlan, **kw) -> KernelPlan:
    new = replace(plan, **kw)
    if plan.structure == "sync":
        new = replace(new, outer=new.num_teams * new.team_size)
    return new


def minimize(plan: KernelPlan,
             failing: Callable[[KernelPlan], bool],
             max_checks: int = 400) -> KernelPlan:
    """Shrink ``plan`` while ``failing(plan)`` stays true.

    ``failing`` must already hold for ``plan`` (raises ``ValueError``
    otherwise — minimizing a passing plan silently would hide harness
    bugs).  ``max_checks`` bounds predicate evaluations; the current
    best plan is returned when the budget runs out.
    """
    if not failing(plan):
        raise ValueError(
            "minimize() needs a failing plan; the predicate passed on the "
            "input — nothing to shrink"
        )
    checks = 0
    best = plan
    progress = True
    while progress and checks < max_checks:
        progress = False
        for candidate in simpler_plans(best):
            if checks >= max_checks:
                break
            checks += 1
            try:
                still_failing = failing(candidate)
            except Exception:
                # A candidate that *crashes the checker* is not evidence
                # of the original failure — skip it.
                continue
            if still_failing:
                best = candidate
                progress = True
                break  # restart the pass from the simpler plan
    return best


def shrink_summary(original: KernelPlan, minimized: KernelPlan) -> str:
    return (
        f"minimized seed {original.seed}: "
        f"{len(original.statements)} → {len(minimized.statements)} statements, "
        f"{total_iterations(original)} → {total_iterations(minimized)} iterations, "
        f"structure {original.structure} → {minimized.structure}"
    )
