"""Constrained-random kernel generation from discrete seeded test plans.

The generator never emits an *invalid* program: every plan drawn from
:func:`plan_from_seed` lowers to a well-formed directive tree whose leaf
body is **race-free by construction** — stores index a bijection of the
flattened iteration space, atomics are commutative (add/max only), and
cross-lane operations (shuffles, votes, warp barriers) are emitted only
under the ``sync`` structure, whose geometry guarantees every warp is
full and every lane executes exactly one leaf iteration.  Expected
values therefore exist and are computed by :func:`oracle`, a trivially
serial vectorized interpreter of the same statement list.

Exactness discipline (what makes bit-for-bit diffing sound):

* all values are **integer-valued float64** — inputs are small integers,
  the only arithmetic is multiply-add with small integer coefficients,
  and magnitudes stay far below 2**53, so float addition is exact and
  therefore associative: atomic accumulation order cannot change the
  result;
* every store statement owns a private *slot* of the ``out`` buffer
  (element ``slot * total + f(flat)`` with ``f`` a bijection), so no
  element is ever written by two different iterations — two unslotted
  store statements would race: iteration ``i``'s second store and
  iteration ``j``'s first store could target the same element, making
  the final value depend on iteration interleaving;
* atomics are limited to ``add``/``max`` (commutative) **on disjoint
  cell ranges** — add owns cells 0..1, max owns cells 2..3, because a
  mixed add/max sequence on one cell does not commute across
  iterations; ``exch``/``cas`` are excluded because their result is
  genuinely order-dependent;
* reduction plans combine with ``add`` and finalize by atomically adding
  the region total into one cell, so the expected value is independent
  of how iterations were grouped into teams/groups.

Plans are plain data (:meth:`KernelPlan.to_dict` /
:func:`plan_from_dict`), so a failure replays from its seed *or* its
serialized plan — the minimizer mutates plans directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core import api as omp
from repro.runtime.icv import ExecMode

__all__ = [
    "CAMPAIGN_SEED",
    "ATOMIC_CELLS",
    "KernelPlan",
    "build_program",
    "make_inputs",
    "oracle",
    "plan_from_dict",
    "plan_from_seed",
    "total_iterations",
]

#: The documented standing campaign seed (mirrors the fault campaign's
#: seed-2023 convention — ``python -m repro.faults --seed 2023``).
CAMPAIGN_SEED = 2023

#: Number of atomic accumulator cells in the ``acc`` buffer.
ATOMIC_CELLS = 4

#: Structure shapes the grammar can emit.
STRUCTURES = ("flat", "simd", "simd_reduce", "pf_reduce", "split", "sync")

# Discrete plan-field domains (every field is drawn from a closed set so
# plans serialize exactly and the minimizer can walk toward the smallest
# member of each domain).
_NUM_TEAMS = (1, 2, 3)
_TEAM_SIZES = (32, 64)
_SIMD_LENS = (1, 2, 4, 8)
_SCHEDULES = ("static_cyclic", "dynamic", "guided")
_CHUNKS = (1, 2)
_DIST_SCHEDULES = ("static", "static_cyclic")
_MODES = ("auto", "spmd", "generic")
_FLAT_TRIPS = (33, 64, 100, 128)
_OUTER_TRIPS = (4, 8, 16)
_MID_TRIPS = (8, 16)
_INNER_TRIPS = (4, 8, 16, 17)
_SHUFFLE_DELTAS = (1, 2, 4, 8, 16)

_MODE_MAP = {
    "auto": ExecMode.AUTO,
    "spmd": ExecMode.SPMD,
    "generic": ExecMode.GENERIC,
}


@dataclass(frozen=True)
class KernelPlan:
    """One discrete, seeded, self-checking test program.

    ``statements`` is the leaf-body program over the flattened iteration
    index; ``bug`` injects a deliberate device-side deviation from the
    oracle (used to prove the harness detects and the minimizer shrinks
    real failures — never drawn by :func:`plan_from_seed`).
    """

    seed: int
    structure: str = "flat"
    num_teams: int = 1
    team_size: int = 32
    simd_len: int = 1
    mode: str = "auto"
    schedule: str = "static_cyclic"
    chunk: int = 1
    dist_schedule: str = "static"
    dist_chunk: int = 1
    outer: int = 64
    mid: int = 8
    inner: int = 8
    statements: Tuple[tuple, ...] = field(default_factory=tuple)
    bug: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "structure": self.structure,
            "num_teams": self.num_teams,
            "team_size": self.team_size,
            "simd_len": self.simd_len,
            "mode": self.mode,
            "schedule": self.schedule,
            "chunk": self.chunk,
            "dist_schedule": self.dist_schedule,
            "dist_chunk": self.dist_chunk,
            "outer": self.outer,
            "mid": self.mid,
            "inner": self.inner,
            "statements": [list(s) for s in self.statements],
            "bug": self.bug,
        }

    def describe(self) -> str:
        stmts = ",".join(s[0] for s in self.statements)
        return (
            f"seed={self.seed} {self.structure} teams={self.num_teams} "
            f"tsz={self.team_size} simd={self.simd_len} mode={self.mode} "
            f"trips={self._trips()} stmts=[{stmts}]"
        )

    def _trips(self) -> Tuple[int, ...]:
        if self.structure in ("flat", "pf_reduce", "sync"):
            return (self.outer,)
        if self.structure == "split":
            return (self.outer, self.mid, self.inner)
        return (self.outer, self.inner)


def plan_from_dict(data: Dict[str, object]) -> KernelPlan:
    data = dict(data)
    data["statements"] = tuple(tuple(s) for s in data.get("statements", ()))
    return KernelPlan(**data)


def total_iterations(plan: KernelPlan) -> int:
    total = 1
    for t in plan._trips():
        total *= t
    return total


def plan_from_seed(seed: int) -> KernelPlan:
    """Draw one valid plan.  String-seeded (SHA-512), so the same seed
    yields the same plan in every process and under every
    ``PYTHONHASHSEED``."""
    rng = random.Random(f"repro.fuzz:{seed}")
    structure = rng.choice(STRUCTURES)
    num_teams = rng.choice(_NUM_TEAMS)
    team_size = rng.choice(_TEAM_SIZES)
    plan = KernelPlan(
        seed=seed,
        structure=structure,
        num_teams=num_teams,
        team_size=team_size,
        simd_len=rng.choice(_SIMD_LENS),
        mode=rng.choice(_MODES) if structure in ("flat", "simd") else "auto",
        schedule=rng.choice(_SCHEDULES),
        chunk=rng.choice(_CHUNKS),
        dist_schedule=rng.choice(_DIST_SCHEDULES),
        dist_chunk=rng.choice(_CHUNKS),
        outer=rng.choice(_FLAT_TRIPS if structure in ("flat", "pf_reduce")
                         else _OUTER_TRIPS),
        mid=rng.choice(_MID_TRIPS),
        inner=rng.choice(_INNER_TRIPS),
    )
    if structure == "sync":
        # Exactly one leaf iteration per thread, full warps, SPMD: the
        # geometry under which cross-lane statements are uniform.
        plan = replace(plan, outer=num_teams * team_size, mode="spmd",
                       schedule="static_cyclic", chunk=1,
                       dist_schedule="static", dist_chunk=1, simd_len=1)
    n_stmts = rng.randint(1, 8)
    stmts = []
    for _ in range(n_stmts):
        stmts.append(_draw_statement(rng, plan))
    if not any(s[0] in ("store", "store_rot", "atomic_add", "atomic_max")
               for s in stmts):
        stmts.append(("store", 0))  # every program observes something
    return replace(plan, statements=_assign_store_slots(stmts))


def _assign_store_slots(stmts) -> Tuple[tuple, ...]:
    """Give each store statement a private ``out`` slot (race freedom)."""
    out, slot = [], 0
    for s in stmts:
        if s[0] == "store":
            out.append(("store", slot))
            slot += 1
        elif s[0] == "store_rot":
            out.append(("store_rot", slot, s[-1]))
            slot += 1
        else:
            out.append(tuple(s))
    return tuple(out)


def _draw_statement(rng: random.Random, plan: KernelPlan) -> tuple:
    kinds = ["load", "muladd", "store", "store_rot", "atomic_add",
             "atomic_max", "compute"]
    if plan.structure == "sync":
        kinds += ["shfl_xor", "vote", "ballot", "syncwarp", "syncthreads"]
    kind = rng.choice(kinds)
    if kind == "load":
        return ("load", rng.choice((1, 2, 3, 5)), rng.randrange(8))
    if kind == "muladd":
        return ("muladd", rng.choice((1, 2, 3)), rng.randrange(-2, 6))
    if kind == "store":
        return ("store",)  # slot assigned by _assign_store_slots
    if kind == "store_rot":
        return ("store_rot", rng.randrange(1, 17))
    if kind == "atomic_add":
        # add owns cells 0..1, max owns 2..3: mixed ops on one cell
        # would not commute across iterations.
        return ("atomic_add", rng.randrange(2), rng.choice((3, 5, 7)))
    if kind == "atomic_max":
        return ("atomic_max", 2 + rng.randrange(2), rng.choice((5, 9, 13)))
    if kind == "compute":
        return ("compute", rng.choice(("alu", "fma", "sfu")), rng.randrange(1, 4))
    if kind == "shfl_xor":
        return ("shfl_xor", rng.choice(_SHUFFLE_DELTAS))
    return (kind,)


# ---------------------------------------------------------------------------
# Inputs and oracle
# ---------------------------------------------------------------------------


def store_slots(plan: KernelPlan) -> int:
    """Number of private ``out`` slots the plan's statements use."""
    slots = [s[1] for s in plan.statements if s[0] in ("store", "store_rot")]
    return (max(slots) + 1) if slots else 1


def make_inputs(plan: KernelPlan) -> Dict[str, np.ndarray]:
    """Host-side initial arrays: seeded small-integer float64 data."""
    total = total_iterations(plan)
    rng = np.random.default_rng(plan.seed)
    n_in = max(total, 32)
    return {
        "x": rng.integers(0, 10, size=n_in).astype(np.float64),
        "out": np.zeros(total * store_slots(plan), dtype=np.float64),
        "acc": np.zeros(ATOMIC_CELLS, dtype=np.float64),
        "red": np.zeros(1, dtype=np.float64),
    }


def _is_reduce(plan: KernelPlan) -> bool:
    return plan.structure in ("simd_reduce", "pf_reduce")


def oracle(plan: KernelPlan, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Expected final memory: vectorized serial interpretation.

    Every statement is evaluated for *all* flattened iterations at once
    — legal because the device program is race-free, so per-iteration
    dataflow is independent (shuffles read the deterministic partner
    iteration ``i ^ delta``, see the ``sync`` geometry argument in
    :func:`plan_from_seed`).
    """
    total = total_iterations(plan)
    x = inputs["x"]
    n = len(x)
    out = inputs["out"].copy()
    acc_cells = inputs["acc"].copy()
    red = inputs["red"].copy()
    flat = np.arange(total, dtype=np.int64)
    acc = np.zeros(total, dtype=np.float64)
    for stmt in plan.statements:
        op = stmt[0]
        if op == "load":
            _, stride, offset = stmt
            acc = x[(flat * stride + offset) % n].astype(np.float64)
        elif op == "muladd":
            _, a, b = stmt
            acc = acc * a + b
        elif op == "store":
            out[stmt[1] * total + flat] = acc
        elif op == "store_rot":
            out[stmt[1] * total + (flat + stmt[2]) % total] = acc
        elif op == "atomic_add":
            _, cell, m = stmt
            acc_cells[cell] += float((flat % m + 1).sum())
        elif op == "atomic_max":
            _, cell, m = stmt
            acc_cells[cell] = max(acc_cells[cell], float((flat % m).max()))
        elif op == "shfl_xor":
            acc = acc[flat ^ stmt[1]]
        elif op == "vote":
            acc = acc + 1.0
        elif op == "ballot":
            acc = acc + 32.0
        # compute / syncwarp / syncthreads: no memory effect
    if _is_reduce(plan):
        red[0] += float(acc.sum())
    return {"x": x.copy(), "out": out, "acc": acc_cells, "red": red}


# ---------------------------------------------------------------------------
# Device program
# ---------------------------------------------------------------------------


def _flattener(plan: KernelPlan):
    """Map the directive tree's ``ivs`` tuple to the flat index."""
    if plan.structure == "split":
        mid, inner = plan.mid, plan.inner

        def flatten(ivs):
            i, j, k = ivs
            return (int(i) * mid + int(j)) * inner + int(k)
    elif plan.structure in ("simd", "simd_reduce"):
        inner = plan.inner

        def flatten(ivs):
            i, j = ivs
            return int(i) * inner + int(j)
    else:

        def flatten(ivs):
            return int(ivs[-1])

    return flatten


def _make_body(plan: KernelPlan):
    statements = plan.statements
    flatten = _flattener(plan)
    total = total_iterations(plan)
    n_in = max(total, 32)
    returns_value = _is_reduce(plan)
    bug = plan.bug

    def body(tc, ivs, view):
        flat = flatten(ivs)
        acc = 0.0
        for stmt in statements:
            op = stmt[0]
            if op == "load":
                _, stride, offset = stmt
                acc = yield from tc.load(view["x"], (flat * stride + offset) % n_in)
                acc = float(acc)
            elif op == "muladd":
                _, a, b = stmt
                yield from tc.compute("fma")
                acc = acc * a + b
            elif op == "store":
                if bug == "drop_last" and flat == total - 1:
                    continue  # deliberately injected deviation
                value = acc + 1.0 if bug == "off_by_one" and flat == 0 else acc
                yield from tc.store(view["out"], stmt[1] * total + flat, value)
            elif op == "store_rot":
                yield from tc.store(
                    view["out"], stmt[1] * total + (flat + stmt[2]) % total, acc)
            elif op == "atomic_add":
                _, cell, m = stmt
                yield from tc.atomic_add(view["acc"], cell, float(flat % m + 1))
            elif op == "atomic_max":
                _, cell, m = stmt
                yield from tc.atomic_max(view["acc"], cell, float(flat % m))
            elif op == "compute":
                _, kind, ops = stmt
                yield from tc.compute(kind, ops)
            elif op == "shfl_xor":
                res = yield from tc.shfl_xor(acc, stmt[1])
                acc = float(res)
            elif op == "vote":
                ok = yield from tc.vote_all(True)
                acc = acc + (1.0 if ok else 0.0)
            elif op == "ballot":
                mask = yield from tc.ballot(True)
                acc = acc + float(bin(mask).count("1"))
            elif op == "syncwarp":
                yield from tc.syncwarp()
            elif op == "syncthreads":
                yield from tc.syncthreads()
        if returns_value:
            return float(acc)

    return body


def _reduce_finalize(tc, ivs_outer, view, total):
    yield from tc.atomic_add(view["red"], 0, total)


#: Kernel argument names, in the sorted order ``omp.launch`` binds them.
ARG_NAMES = ("acc", "out", "red", "x")


def build_program(plan: KernelPlan):
    """Lower a plan to its directive tree.

    Returns ``(tree, launch_kwargs)`` — launch with
    ``omp.launch(dev, tree, args=buffers, **launch_kwargs)``.
    """
    body = _make_body(plan)
    mode = _MODE_MAP[plan.mode]
    uses = ARG_NAMES
    if plan.structure in ("flat", "sync"):
        tree = omp.target(omp.teams_distribute_parallel_for(
            omp.loop(plan.outer, body=body, uses=uses),
            mode=mode, schedule=plan.schedule, chunk=plan.chunk,
            dist_schedule=plan.dist_schedule, dist_chunk=plan.dist_chunk,
        ))
    elif plan.structure == "pf_reduce":
        tree = omp.target(omp.teams_distribute_parallel_for(
            omp.loop(plan.outer, body=body, uses=uses),
            schedule=plan.schedule, chunk=plan.chunk,
            dist_schedule=plan.dist_schedule, dist_chunk=plan.dist_chunk,
            reduction=("add", _reduce_finalize),
        ))
    elif plan.structure == "simd":
        tree = omp.target(omp.teams_distribute_parallel_for(
            omp.loop(plan.outer,
                     nested=omp.simd(plan.inner, body=body, uses=uses)),
            mode=mode, schedule=plan.schedule, chunk=plan.chunk,
            dist_schedule=plan.dist_schedule, dist_chunk=plan.dist_chunk,
        ))
    elif plan.structure == "simd_reduce":
        tree = omp.target(omp.teams_distribute_parallel_for(
            omp.loop(plan.outer,
                     nested=omp.simd(plan.inner, body=body, uses=uses,
                                     reduction=("add", _reduce_finalize))),
            schedule=plan.schedule, chunk=plan.chunk,
            dist_schedule=plan.dist_schedule, dist_chunk=plan.dist_chunk,
        ))
    elif plan.structure == "split":
        inner = omp.parallel_for(
            omp.loop(plan.mid,
                     nested=omp.simd(plan.inner, body=body, uses=uses)),
            schedule=plan.schedule, chunk=plan.chunk,
        )
        tree = omp.target(omp.teams_distribute(
            plan.outer, nested=inner, uses=(),
            schedule=plan.dist_schedule, dist_chunk=plan.dist_chunk,
        ))
    else:
        raise ValueError(f"unknown structure {plan.structure!r}")
    launch_kwargs = {
        "num_teams": plan.num_teams,
        "team_size": plan.team_size,
        "simd_len": plan.simd_len,
    }
    return tree, launch_kwargs
