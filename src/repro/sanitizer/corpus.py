"""Seeded-bug corpus: kernels the sanitizer must flag.

Each :class:`CorpusCase` is a small kernel with a deliberately planted
correctness bug and the finding categories the sanitizer must produce
for it.  The corpus is the sanitizer's negative test set — run it with
``python -m repro.sanitizer --corpus`` or via ``tests/sanitizer/``:

* three data races: a **cross-round** global race (the class the old
  round-local checker provably missed), a shared-memory race with a
  missing ``syncwarp``, and an atomic mixed with an unordered plain
  write;
* two barrier-divergence bugs: lanes arriving at textually different
  block barriers, and a warp barrier whose ``simdmask`` names a retired
  lane (stale mask);
* one sharing-space bug: an overflowing staging episode whose global
  fallback allocation is never released (leak);
* one order-dependent kernel with *no* default-schedule symptom — the
  DPOR schedule explorer finds its divergent interleaving
  deterministically from the racing pair (no seed lottery).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.gpu.device import Device
from repro.sanitizer.monitor import SanitizerConfig
from repro.sanitizer.report import SanitizerReport
from repro.sanitizer.schedule import (
    ShuffleSchedule,
    explore_schedules,
    explore_schedules_dpor,
)

#: Sanitize in report mode so a case can carry several findings.
_REPORT = SanitizerConfig(mode="report")


def _executor(workers):
    """Launch executor for corpus devices: parallel when workers is set.

    Corpus kernels are single-block, so this exercises the parallel
    engine's per-block isolation and report merge rather than any real
    fan-out — the point is that findings are identical either way.
    """
    if not workers:
        return None
    from repro.exec import ParallelExecutor

    return ParallelExecutor(workers=workers)


@dataclass
class CaseResult:
    """Outcome of one corpus case: did the sanitizer flag the bug?"""

    name: str
    expect: Tuple[str, ...]
    got: List[str]
    detail: str

    @property
    def caught(self) -> bool:
        return all(cat in self.got for cat in self.expect)

    def describe(self) -> str:
        verdict = "CAUGHT" if self.caught else "MISSED"
        return f"{verdict:7s} {self.name}: expected {list(self.expect)}, got {self.got}"


@dataclass
class CorpusCase:
    """One planted bug and the categories that must be reported for it."""

    name: str
    description: str
    #: Finding categories that must appear (errors or notes).
    expect: Tuple[str, ...]
    run: Callable[[], CaseResult] = field(repr=False, default=None)


def _sanitized(name, expect, kernel, num_blocks, threads, make_args, detail="",
               workers=None):
    """Run ``kernel`` under the report-mode sanitizer and collect categories."""
    dev = Device(executor=_executor(workers))
    args = make_args(dev)
    kc = dev.launch(kernel, num_blocks=num_blocks, threads_per_block=threads,
                    args=args, sanitize=_REPORT)
    report: SanitizerReport = kc.sanitizer
    return CaseResult(name=name, expect=expect, got=report.categories(),
                      detail=detail or report.text())


# ---------------------------------------------------------------------------
# Data races
# ---------------------------------------------------------------------------


def _cross_round_race(workers=None) -> CaseResult:
    """t0 stores a[0] in round 0; t32 (warp 1) stores a[0] in round 1.

    The conflicting accesses are posted in *different* scheduling rounds,
    so the old round-local ``_check_races`` never compared them.
    """

    def kernel(tc, a):
        if tc.tid == 0:
            yield from tc.store(a, 0, 1.0)
        elif tc.tid == 32:
            yield from tc.compute("alu")  # skew the store into round 1
            yield from tc.store(a, 0, 2.0)
        else:
            yield from tc.compute("alu")

    return _sanitized("cross-round-race", ("data-race",), kernel,
                      1, 64, lambda dev: (dev.alloc("a", 4, np.float64),),
                      workers=workers)


def _shared_missing_syncwarp(workers=None) -> CaseResult:
    """Lane 0 writes shared memory; siblings read it with no syncwarp."""
    cell: Dict[str, object] = {}

    def kernel(tc, out):
        if "sh" not in cell:
            cell["sh"] = tc.shared_alloc("sh", 1, np.float64)
        sh = cell["sh"]
        if tc.tid == 0:
            yield from tc.store(sh, 0, 3.0)
        else:
            # BUG: no tc.syncwarp() between the producer's store and this
            # read — the broadcast value is unordered with the write.
            v = yield from tc.load(sh, 0)
            yield from tc.store(out, tc.tid, v)

    return _sanitized("shared-missing-syncwarp", ("data-race",), kernel,
                      1, 32, lambda dev: (dev.alloc("out", 32, np.float64),),
                      workers=workers)


def _atomic_mixed_race(workers=None) -> CaseResult:
    """An atomicAdd and a plain store touch one element, unordered."""

    def kernel(tc, a):
        if tc.tid == 0:
            yield from tc.atomic_add(a, 0, 1.0)
        elif tc.tid == 1:
            yield from tc.compute("alu")
            # BUG: plain store to an element other lanes update atomically.
            yield from tc.store(a, 0, 5.0)
        else:
            yield from tc.compute("alu")

    return _sanitized("atomic-mixed-race", ("data-race",), kernel,
                      1, 32, lambda dev: (dev.alloc("a", 1, np.float64),),
                      workers=workers)


# ---------------------------------------------------------------------------
# Barrier divergence
# ---------------------------------------------------------------------------


def _divergent_block_barriers(workers=None) -> CaseResult:
    """Halves of a block arrive at textually different block barriers."""

    def kernel(tc, a):
        if tc.tid < 16:
            yield from tc.syncthreads(bar_id=0)  # site A
        else:
            yield from tc.syncthreads(bar_id=1)  # site B — never both release
        yield from tc.store(a, tc.tid, 1.0)

    return _sanitized("divergent-block-barriers",
                      ("barrier-divergence", "deadlock"), kernel,
                      1, 32, lambda dev: (dev.alloc("a", 32, np.float64),),
                      workers=workers)


def _stale_simdmask(workers=None) -> CaseResult:
    """A warp barrier mask names a lane that already retired."""

    def kernel(tc, a):
        if tc.tid == 0:
            # BUG: retires without reaching the barrier its siblings'
            # full-warp mask names — the group can never converge.
            yield from tc.store(a, 0, 1.0)
            return
        yield from tc.compute("alu")
        yield from tc.syncwarp()

    return _sanitized("stale-simdmask", ("stale-mask", "deadlock"), kernel,
                      1, 32, lambda dev: (dev.alloc("a", 4, np.float64),),
                      workers=workers)


# ---------------------------------------------------------------------------
# Sharing-space misuse
# ---------------------------------------------------------------------------


def _sharing_leak(workers=None) -> CaseResult:
    """An overflowing staging episode is never released (leaked fallback)."""
    from repro.runtime.icv import ExecMode, LaunchConfig
    from repro.runtime.sharing import SharingSpace
    from repro.runtime.state import RuntimeCounters

    dev = Device(executor=_executor(workers))
    cfg = LaunchConfig(
        num_teams=1, team_size=32, simd_len=8,
        teams_mode=ExecMode.SPMD, parallel_mode=ExecMode.SPMD,
        sharing_bytes=64, params=dev.params,  # 8 slots / 4 groups = 2 each
    )
    rc = RuntimeCounters()

    def kernel(tc):
        if tc.tid == 0:
            space = SharingSpace(tc.block.shared, cfg, dev.gmem, rc)
            # 5 slots overflow the 2-slot group slice -> global fallback...
            yield from space.stage_simd_args(tc, 0, list(range(5)))
            # ...BUG: and end_simd_sharing is never called -> leak.
        else:
            yield from tc.compute("alu")

    kc = dev.launch(kernel, num_blocks=1, threads_per_block=32,
                    sanitize=_REPORT)
    report = kc.sanitizer
    return CaseResult(name="sharing-leak",
                      expect=("sharing-leak", "sharing-fallback"),
                      got=report.categories(), detail=report.text())


# ---------------------------------------------------------------------------
# Order dependence (schedule explorer)
# ---------------------------------------------------------------------------


def order_dependent_run(policy):
    """Explorer target: the final value of ``a[0]`` is whichever warp's
    store commits last, so it depends on the (normally fixed) warp
    resolution order.  Under the default schedule the result is stable
    and plausible — only a permuted schedule exposes the bug."""
    dev = Device()
    a = dev.alloc("a", 1, np.float64)

    def kernel(tc, a):
        yield from tc.store(a, 0, float(tc.tid // 32))

    dev.launch(kernel, num_blocks=1, threads_per_block=64, args=(a,),
               schedule_policy=policy)
    return {"a": dev.to_numpy(a)}


def _order_dependent(workers=None) -> CaseResult:
    """Directed DPOR regression (promoted from blind seed sampling).

    The explorer must find the divergent interleaving *deterministically*
    — no seed lottery: the race detector reports the warp-0/warp-1 store
    pair on ``a[0]``, the backtracking point reverses exactly that pair,
    and the reversed schedule flips the result.  ``workers`` is accepted
    for CLI symmetry; directed exploration is sequential.
    """
    result = explore_schedules_dpor(order_dependent_run, workers=workers)
    got = result.report.categories() if result.order_dependent else []
    detail = result.text()
    if result.divergent_backtrack is not None:
        detail += "\n  " + result.divergent_backtrack.describe()
    return CaseResult(name="order-dependent",
                      expect=("schedule-divergence",), got=got,
                      detail=detail)


# ---------------------------------------------------------------------------
# The corpus
# ---------------------------------------------------------------------------

CASES: List[CorpusCase] = [
    CorpusCase("cross-round-race",
               "global-memory race across scheduling rounds",
               ("data-race",), _cross_round_race),
    CorpusCase("shared-missing-syncwarp",
               "shared-memory broadcast read with no syncwarp",
               ("data-race",), _shared_missing_syncwarp),
    CorpusCase("atomic-mixed-race",
               "plain store unordered with another lane's atomic",
               ("data-race",), _atomic_mixed_race),
    CorpusCase("divergent-block-barriers",
               "half the block at bar 0, half at bar 1",
               ("barrier-divergence", "deadlock"), _divergent_block_barriers),
    CorpusCase("stale-simdmask",
               "warp barrier mask naming a retired lane",
               ("stale-mask", "deadlock"), _stale_simdmask),
    CorpusCase("sharing-leak",
               "overflowing sharing episode never released",
               ("sharing-leak", "sharing-fallback"), _sharing_leak),
    CorpusCase("order-dependent",
               "output decided by warp commit order (explorer-only)",
               ("schedule-divergence",), _order_dependent),
]


def by_name(name: str) -> CorpusCase:
    for case in CASES:
        if case.name == name:
            return case
    raise KeyError(f"no corpus case named {name!r}; "
                   f"have {[c.name for c in CASES]}")


def run_all(workers=None) -> List[CaseResult]:
    """Run every corpus case; each result says whether the bug was caught.

    ``workers`` routes every case through the parallel launch engine
    (and the schedule explorer's seed fan-out) — the corpus doubles as a
    differential fixture for the executors.
    """
    return [case.run(workers=workers) for case in CASES]
