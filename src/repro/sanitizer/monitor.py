"""The sanitizer monitor: the block scheduler's instrumentation client.

:class:`SanitizerMonitor` composes the individual detectors and plugs
into the hook surface :class:`repro.gpu.block.ThreadBlock` exposes when a
``monitor`` is attached:

========================  ==================================================
Hook                      Fired
========================  ==================================================
``on_block_start(block)``     before the block's first round
``on_event(block, r, lane, ev)``  every posted event
``on_retire(block, r, lane)``     a lane's generator returned
``on_release(block, r, kind, key, tids)``  a barrier/shuffle group released
``on_deadlock(block, r)``     no-progress round, before DeadlockError
``on_sharing(block, kind, ...)``  sharing-space staging episodes
``on_block_end(block)``       after the block ran to completion
========================  ==================================================

All hooks are cheap no-ops when no monitor is attached — the sanitizer
is strictly zero-cost when disabled (asserted by the ablation bench).

Event *sites* (``file.py:lineno``) are recovered from the suspended
generator: after ``gen.send`` returns, the ``gi_yieldfrom`` chain ends
at the ``tc`` helper that yielded the event; the deepest frame *outside*
the helper module is the textual site of the access or barrier — which
is how "lanes arrived at textually different barriers" is literal.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.errors import DataRaceError
from repro.gpu import thread as _thread_mod
from repro.sanitizer.barriers import BarrierAnalyzer
from repro.sanitizer.races import RaceDetector
from repro.sanitizer.report import SanitizerReport
from repro.sanitizer.sharing_audit import SharingAuditor

#: Helper-module filename skipped when resolving textual event sites.
_HELPER_FILE = _thread_mod.__file__


class SanitizerConfig:
    """What to check and how to respond.

    ``mode`` is ``"raise"`` (first data race raises a
    :class:`~repro.errors.DataRaceError`, matching the legacy
    ``detect_races=True`` contract) or ``"report"`` (collect findings;
    deadlocks are folded into the report by the caller).
    """

    __slots__ = ("races", "barriers", "sharing", "mode", "max_findings")

    def __init__(
        self,
        races: bool = True,
        barriers: bool = True,
        sharing: bool = True,
        mode: str = "raise",
        max_findings: int = 64,
    ) -> None:
        if mode not in ("raise", "report"):
            raise ValueError(f"sanitizer mode must be 'raise' or 'report', got {mode!r}")
        self.races = races
        self.barriers = barriers
        self.sharing = sharing
        self.mode = mode
        self.max_findings = max_findings

    @staticmethod
    def coerce(value) -> "SanitizerConfig":
        """Accept ``True``/``"raise"``/``"report"``/config instances."""
        if isinstance(value, SanitizerConfig):
            return value
        if value is True or value == "raise":
            return SanitizerConfig(mode="raise")
        if value == "report":
            return SanitizerConfig(mode="report")
        raise ValueError(f"unrecognized sanitize= value {value!r}")


def yield_site(gen) -> str:
    """``file.py:lineno`` of the innermost non-helper suspended frame."""
    best = None
    g = gen
    while g is not None:
        frame = getattr(g, "gi_frame", None)
        if frame is None:
            break
        if frame.f_code.co_filename != _HELPER_FILE:
            best = frame
        g = getattr(g, "gi_yieldfrom", None)
    if best is None:
        return "<unknown site>"
    return f"{os.path.basename(best.f_code.co_filename)}:{best.f_lineno}"


class SanitizerMonitor:
    """Composed detector set attached to one launch."""

    def __init__(self, config: Optional[SanitizerConfig] = None, label: str = "kernel") -> None:
        self.config = config or SanitizerConfig()
        self.report = SanitizerReport(label)
        self.races = RaceDetector(self.report, self.config.max_findings) if self.config.races else None
        self.barriers = BarrierAnalyzer(self.report) if self.config.barriers else None
        self.sharing = SharingAuditor(self.report) if self.config.sharing else None

    # -- scheduler hooks ---------------------------------------------------
    def on_block_start(self, block) -> None:
        self.report.bump("blocks_observed")

    def on_event(self, block, rnd: int, lane, ev) -> None:
        site = yield_site(lane.gen)
        if self.races is not None:
            before = len(self.report.findings)
            self.races.on_event(block.block_id, rnd, lane.tid, ev, site,
                                warp=lane.warp_id)
            if self.config.mode == "raise" and len(self.report.findings) > before:
                f = self.report.findings[-1]
                raise DataRaceError(
                    f.message,
                    block_id=f.block,
                    buffer=f.address[0] if f.address else None,
                    index=f.address[1] if f.address else None,
                    round=f.round,
                    sites=f.sites,
                )
        if self.barriers is not None:
            self.barriers.on_event(block, rnd, lane, ev, site)

    def on_retire(self, block, rnd: int, lane) -> None:
        if self.barriers is not None:
            self.barriers.on_retire(block, rnd, lane)

    def on_release(self, block, rnd: int, kind: str, key, tids: List[int]) -> None:
        if self.races is not None:
            self.races.on_release(block.block_id, tids)
        if self.barriers is not None:
            self.barriers.on_release(block.block_id, rnd, kind, tids)

    def on_deadlock(self, block, rnd: int) -> str:
        if self.barriers is not None:
            return self.barriers.on_deadlock(block, rnd)
        return ""

    def on_sharing(self, block, kind: str, space, group: int, nslots: int,
                   capacity: int, rnd: int) -> None:
        if self.sharing is not None:
            self.sharing.on_sharing(block, kind, space, group, nslots, capacity, rnd)

    def on_block_end(self, block) -> None:
        if self.sharing is not None:
            self.sharing.on_block_end(block)

    # -- lifecycle ---------------------------------------------------------
    def finalize(self) -> SanitizerReport:
        return self.report
