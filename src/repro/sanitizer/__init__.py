"""repro.sanitizer — a correctness sanitizer for the simulated GPU.

A ``compute-sanitizer``-style toolbox layered on the SIMT simulator's
monitor hooks (:mod:`repro.gpu.block`):

* :mod:`~repro.sanitizer.races` — vector-clock happens-before data-race
  detection over global *and* shared memory, across scheduling rounds
  (the old round-local checker provably missed cross-round races);
* :mod:`~repro.sanitizer.barriers` — barrier-divergence and deadlock
  analysis with block/warp/lane/round provenance;
* :mod:`~repro.sanitizer.sharing_audit` — variable-sharing-space audit
  (global fallbacks, over-reads, leaked overflow allocations);
* :mod:`~repro.sanitizer.schedule` — seeded exploration of legal warp /
  commit orderings with deterministic replay-by-seed.

Three ways in:

1. per launch: ``device.launch(..., sanitize="report")`` or
   ``omp.launch(..., check="report")`` → ``counters.sanitizer`` /
   ``result.sanitizer`` holds the :class:`SanitizerReport`;
2. process-wide: :func:`activate` (or the :func:`session` context
   manager) makes every subsequent launch report into one
   :class:`SanitizerSession` — this is how the CLI sanitizes an
   unmodified example script;
3. CLI: ``python -m repro.sanitizer path/to/example.py`` or
   ``python -m repro.sanitizer --corpus`` (see
   :mod:`repro.sanitizer.__main__`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.gpu import device as _device_mod
from repro.sanitizer.monitor import SanitizerConfig, SanitizerMonitor
from repro.sanitizer.report import Finding, SanitizerReport
from repro.sanitizer.schedule import (
    BacktrackPoint,
    BoundedPreemptionSchedule,
    DirectedSchedule,
    DporResult,
    ExplorationResult,
    LoopController,
    RunStats,
    ShuffleSchedule,
    explore_schedules,
    explore_schedules_dpor,
    replay_directed,
    replay_schedule,
    strip_launch_telemetry,
)

__all__ = [
    "BacktrackPoint",
    "BoundedPreemptionSchedule",
    "DirectedSchedule",
    "DporResult",
    "ExplorationResult",
    "Finding",
    "LoopController",
    "RunStats",
    "SanitizerConfig",
    "SanitizerMonitor",
    "SanitizerReport",
    "SanitizerSession",
    "ShuffleSchedule",
    "activate",
    "deactivate",
    "explore_schedules",
    "explore_schedules_dpor",
    "replay_directed",
    "replay_schedule",
    "session",
    "strip_launch_telemetry",
]


class SanitizerSession:
    """Collects the reports of every launch run while it is active.

    Launches sanitized through a session always run in ``report`` mode —
    the point of a session is to observe an application end-to-end, not
    to abort it at the first finding.
    """

    def __init__(self, config: Optional[SanitizerConfig] = None,
                 label: str = "session") -> None:
        if config is None:
            config = SanitizerConfig(mode="report")
        elif config.mode != "report":
            config = SanitizerConfig(
                races=config.races, barriers=config.barriers,
                sharing=config.sharing, mode="report",
                max_findings=config.max_findings,
            )
        self.config = config
        self.label = label
        self.reports: List[SanitizerReport] = []

    # -- device-side interface ---------------------------------------------
    def make_monitor(self, entry) -> SanitizerMonitor:
        """Build the monitor for one launch (called by ``Device.launch``)."""
        name = getattr(entry, "__qualname__", None) or repr(entry)
        return SanitizerMonitor(self.config, label=name)

    def add(self, report: SanitizerReport) -> None:
        self.reports.append(report)

    # -- queries -----------------------------------------------------------
    @property
    def clean(self) -> bool:
        return all(r.clean for r in self.reports)

    def merged(self) -> SanitizerReport:
        """One report aggregating every sanitized launch."""
        out = SanitizerReport(self.label)
        for r in self.reports:
            out.merge(r)
        return out

    def text(self) -> str:
        lines = [
            f"==== sanitizer session: {self.label} — "
            f"{len(self.reports)} launch(es) sanitized ===="
        ]
        if not self.reports:
            lines.append("no kernel launches observed")
            return "\n".join(lines)
        for r in self.reports:
            lines.append(r.text())
        merged = self.merged()
        verdict = "CLEAN" if merged.clean else f"{len(merged.findings)} finding(s)"
        lines.append(f"==== session verdict: {verdict} ====")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "clean": self.clean,
            "launches": [r.to_dict() for r in self.reports],
        }


def activate(config: Optional[SanitizerConfig] = None,
             label: str = "session") -> SanitizerSession:
    """Install a process-wide session; every later launch reports into it."""
    sess = SanitizerSession(config, label=label)
    _device_mod.set_global_sanitizer(sess)
    return sess


def deactivate() -> None:
    """Remove the process-wide session installed by :func:`activate`."""
    _device_mod.set_global_sanitizer(None)


class session:
    """Context manager form of :func:`activate`/:func:`deactivate`::

        with sanitizer.session() as sess:
            omp.launch(dev, prog, ...)
        assert sess.clean, sess.text()
    """

    def __init__(self, config: Optional[SanitizerConfig] = None,
                 label: str = "session") -> None:
        self._config = config
        self._label = label
        self.session: Optional[SanitizerSession] = None

    def __enter__(self) -> SanitizerSession:
        self.session = activate(self._config, label=self._label)
        return self.session

    def __exit__(self, *exc) -> None:
        deactivate()
