"""Schedule exploration: seeded sampling and DPOR over warp/commit order.

The block scheduler is deterministic: warps resolve in ascending id and
side effects commit in lane order, so every launch is one — legal but
fixed — interleaving.  Order-dependent bugs (racy accumulations, missing
barriers) can therefore produce stable, plausible-looking results.  Two
explorers expose them:

* :func:`explore_schedules` — ``simsched``-style random sampling: a
  :class:`ShuffleSchedule` re-permutes, per scheduling round, (a) the
  order in which warps' side effects resolve and (b) the commit order of
  events within each warp — both drawn from a seeded PRNG, so **every
  schedule is replayable from its integer seed alone**.

* :func:`explore_schedules_dpor` — dynamic partial-order reduction: each
  run executes under the happens-before sanitizer, racing event pairs
  are extracted from the vector-clock race detector's findings, and each
  same-round pair spawns one *backtracking point* — a
  :class:`DirectedSchedule` that reverses exactly that pair.  Only
  schedules whose directive sets differ are executed (equivalent
  interleavings are pruned), so the explorer covers every inequivalent
  warp-order/commit-order neighbourhood of the race graph in far fewer
  runs than blind sampling — and deterministically, with no seed
  lottery.  Kernels whose race graph exceeds the preemption budget fall
  back to seeded :class:`BoundedPreemptionSchedule` sampling.  Budgets
  and statistics follow ``simsched``'s ``LoopController``/``RunStats``
  shape.

Every schedule — sampled, directed, or bounded-preemption — is
replayable from its integer seed or directive tuple alone
(:func:`replay_schedule`, :func:`replay_directed`).

Output diffing knows one documented carve-out: launch-scoped JIT
telemetry (``extra["engine"]``, ``extra["jit_*"]``) is excluded from
divergence comparison, matching the serve tier's batch-equivalence
contract — a policy-carrying run is a hooked launch and never compiles,
while its baseline may.
"""

from __future__ import annotations

import hashlib
import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sanitizer.report import Finding, SanitizerReport


class ShuffleSchedule:
    """Seeded schedule policy consumed by the block scheduler.

    ``warp_order(block, round, n)`` permutes the order in which the
    round's warps resolve; ``commit_order(block, round, warp, n)``
    permutes side-effect application within one warp's posts.  The policy
    is *stateless*: each permutation is drawn from a PRNG seeded by
    ``(seed, block, round, warp)`` alone, never by call order.  That
    keeps a run replayable from the integer seed — and, because a
    block's schedule no longer depends on which blocks ran before it,
    one policy object yields identical schedules whether the blocks
    execute serially or sharded across the parallel executor's workers.
    (String seeding hashes via SHA-512, so permutations are stable
    across processes and ``PYTHONHASHSEED`` values.)
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def _perm(self, n: int, *key) -> Sequence[int]:
        order = list(range(n))
        rng = random.Random(":".join(str(k) for k in (self.seed,) + key))
        rng.shuffle(order)
        return order

    def warp_order(self, block_id: int, rnd: int, n: int) -> Sequence[int]:
        return self._perm(n, "w", block_id, rnd)

    def commit_order(self, block_id: int, rnd: int, warp_id: int, n: int) -> Sequence[int]:
        return self._perm(n, "c", block_id, rnd, warp_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShuffleSchedule(seed={self.seed})"


@dataclass
class OutputDiff:
    """One output array that changed under a permuted schedule.

    ``seed`` is the replay handle of the schedule that produced the
    divergence: an integer for sampled :class:`ShuffleSchedule` /
    :class:`BoundedPreemptionSchedule` runs, a directive-tuple string
    for :class:`DirectedSchedule` backtracking runs.
    """

    seed: object
    name: str
    n_mismatch: int
    max_abs_diff: float

    def describe(self) -> str:
        return (
            f"seed {self.seed}: output {self.name!r} differs at "
            f"{self.n_mismatch} element(s), max |Δ| = {self.max_abs_diff:g}"
        )


@dataclass
class RunStats:
    """Exploration statistics, in the spirit of ``simsched``'s ``RunStats``.

    ``runs`` counts every kernel execution including the baseline;
    ``pruned_equivalent`` counts candidate schedules skipped because an
    equivalent directive set already ran (the partial-order reduction),
    ``pruned_budget`` those dropped for exceeding the preemption budget.
    """

    runs: int = 0
    directed_runs: int = 0
    fallback_runs: int = 0
    candidates: int = 0
    pruned_equivalent: int = 0
    pruned_budget: int = 0
    racing_pairs: int = 0
    cross_round_pairs: int = 0
    backtrack_points: int = 0
    distinct_outcomes: int = 0
    wall_seconds: float = 0.0
    stop_reason: str = "exhausted"

    def describe(self) -> str:
        return (
            f"runs={self.runs} (directed={self.directed_runs}, "
            f"fallback={self.fallback_runs}), "
            f"candidates={self.candidates}, "
            f"pruned={self.pruned_equivalent}+{self.pruned_budget} "
            f"(equivalent+budget), racing_pairs={self.racing_pairs} "
            f"({self.cross_round_pairs} cross-round), "
            f"backtracks={self.backtrack_points}, "
            f"distinct_outcomes={self.distinct_outcomes}, "
            f"wall={self.wall_seconds:.3f}s, stop={self.stop_reason}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "runs": self.runs,
            "directed_runs": self.directed_runs,
            "fallback_runs": self.fallback_runs,
            "candidates": self.candidates,
            "pruned_equivalent": self.pruned_equivalent,
            "pruned_budget": self.pruned_budget,
            "racing_pairs": self.racing_pairs,
            "cross_round_pairs": self.cross_round_pairs,
            "backtrack_points": self.backtrack_points,
            "distinct_outcomes": self.distinct_outcomes,
            "wall_seconds": self.wall_seconds,
            "stop_reason": self.stop_reason,
        }


@dataclass
class LoopController:
    """Exploration budget, in the spirit of ``simsched``'s ``LoopController``.

    ``max_runs``/``max_seconds`` bound the loop; with
    ``stop_on_first_divergence`` (the default) exploration ends at the
    first divergent schedule — the minimized repro — instead of mapping
    the whole outcome space.
    """

    max_runs: Optional[int] = None
    max_seconds: Optional[float] = None
    stop_on_first_divergence: bool = True

    def should_stop(self, stats: RunStats, started: float,
                    divergent: bool) -> Optional[str]:
        """Return the stop reason, or None to keep exploring."""
        if divergent and self.stop_on_first_divergence:
            return "divergence"
        if self.max_runs is not None and stats.runs >= self.max_runs:
            return "max_runs"
        if (self.max_seconds is not None
                and time.monotonic() - started >= self.max_seconds):
            return "max_seconds"
        return None


@dataclass
class ExplorationResult:
    """Outcome of an N-schedule fuzz loop over one kernel."""

    schedules_run: int
    baseline: Dict[str, np.ndarray]
    diffs: List[OutputDiff] = field(default_factory=list)
    #: Seeds whose run raised (e.g. a DeadlockError only some orders hit).
    errored: List[tuple] = field(default_factory=list)
    report: SanitizerReport = field(default_factory=lambda: SanitizerReport("explore"))
    #: Exploration statistics (runs, wall time, stop reason).
    stats: RunStats = field(default_factory=RunStats)

    @property
    def divergent_seeds(self) -> List[int]:
        seeds: List[int] = []
        for d in self.diffs:
            if d.seed not in seeds:
                seeds.append(d.seed)
        for seed, _ in self.errored:
            if seed not in seeds:
                seeds.append(seed)
        return seeds

    @property
    def reproduced(self) -> Optional[int]:
        """First seed demonstrating order dependence (None if stable)."""
        seeds = self.divergent_seeds
        return seeds[0] if seeds else None

    @property
    def order_dependent(self) -> bool:
        return bool(self.divergent_seeds)

    def text(self) -> str:
        lines = [f"==== schedule exploration: {self.schedules_run} schedule(s) ===="]
        if not self.order_dependent:
            lines.append("outputs stable under every explored schedule")
        else:
            lines.append(
                f"ORDER DEPENDENCE: {len(self.divergent_seeds)} divergent "
                f"seed(s); replay with seed {self.reproduced}"
            )
            for d in self.diffs:
                lines.append("  " + d.describe())
            for seed, err in self.errored:
                lines.append(f"  seed {seed}: raised {err}")
        return "\n".join(lines)


#: ``kc.extra`` keys excluded from divergence comparison: launch-scoped
#: JIT telemetry cannot be attributed across engine downgrades (a run
#: carrying a schedule policy is a hooked launch and never compiles,
#: while its hook-free baseline may) — the same carve-out the serve
#: tier's batch-equivalence tests document for batched counters.
_TELEMETRY_KEYS = ("engine",)
_TELEMETRY_PREFIX = "jit_"


def strip_launch_telemetry(extra: Dict) -> Dict:
    """Drop launch-scoped JIT telemetry keys from a counters ``extra`` dict."""
    return {
        k: v
        for k, v in extra.items()
        if k not in _TELEMETRY_KEYS and not str(k).startswith(_TELEMETRY_PREFIX)
    }


def _diff_one(seed, name: str, base, got) -> Optional[OutputDiff]:
    """Diff one named output; dicts diff key-wise under the telemetry
    carve-out, everything else compares as arrays, bit-for-bit."""
    if isinstance(base, dict) or isinstance(got, dict):
        base_d = strip_launch_telemetry(dict(base or {}))
        got_d = strip_launch_telemetry(dict(got or {}))
        bad = [k for k in set(base_d) | set(got_d)
               if not np.array_equal(base_d.get(k), got_d.get(k))]
        if not bad:
            return None
        delta = 0.0
        for k in bad:
            try:
                delta = max(delta, float(abs(
                    np.float64(got_d.get(k, 0.0)) - np.float64(base_d.get(k, 0.0))
                )))
            except (TypeError, ValueError):
                pass  # non-numeric entry: counted, no magnitude
        return OutputDiff(seed, name, len(bad), delta)
    base = np.asarray(base)
    got = np.asarray(got)
    mism = ~np.isclose(got, base, rtol=0.0, atol=0.0, equal_nan=True)
    n = int(np.count_nonzero(mism))
    if not n:
        return None
    delta = float(np.max(np.abs(got[mism] - base[mism])))
    return OutputDiff(seed, name, n, delta)


def _diff_outputs(
    seed, baseline: Dict[str, np.ndarray], outputs: Dict[str, np.ndarray]
) -> List[OutputDiff]:
    diffs = []
    for name in sorted(baseline):
        diff = _diff_one(seed, name, baseline[name], outputs.get(name))
        if diff is not None:
            diffs.append(diff)
    return diffs


def explore_schedules(
    run: Callable[[Optional[ShuffleSchedule]], Dict[str, np.ndarray]],
    schedules: int = 16,
    base_seed: int = 1,
    stop_on_divergence: bool = True,
    workers: Optional[int] = None,
    controller: Optional[LoopController] = None,
) -> ExplorationResult:
    """Fuzz a kernel across ``schedules`` seeded warp/commit orderings.

    ``run(policy)`` must build a *fresh* device + buffers, launch with
    ``schedule_policy=policy`` (None = default order), and return a dict
    of named output arrays (entries that are plain dicts — e.g.
    ``kc.extra`` — diff key-wise, under the launch-scoped JIT telemetry
    carve-out).  Each divergence is reported with the seed that
    reproduces it deterministically via :func:`replay_schedule`.

    ``workers`` > 1 fans the seeds out over forked worker processes
    (seeds are independent by construction); results are then folded in
    seed order with the exact serial semantics — same ``schedules_run``
    count, same first divergence, same early stop.  Speculative runs
    past the stopping point are simply discarded.

    ``controller`` bounds the loop (``max_runs``/``max_seconds``); its
    ``stop_on_first_divergence`` is ignored here in favour of the legacy
    ``stop_on_divergence`` flag.
    """
    started = time.monotonic()
    result = ExplorationResult(schedules_run=0, baseline=run(None))
    stats = result.stats
    stats.runs = 1  # the baseline
    report = result.report
    seeds = [base_seed + i for i in range(schedules)]

    def run_seed(seed):
        """-> ("ok", outputs) or ("raised", (type name, message))."""
        try:
            return "ok", run(ShuffleSchedule(seed))
        except Exception as err:  # deadlocks/races only some orders reach
            return "raised", (type(err).__name__, str(err))

    completed = None
    if workers is not None and workers > 1 and len(seeds) > 1:
        from repro.exec.pool import fork_map

        completed = []
        for status, payload in fork_map(run_seed, seeds, workers=workers):
            if status == "err":  # infrastructure failure, not a kernel error
                payload.reraise()
            completed.append(payload)
    for i, seed in enumerate(seeds):
        if controller is not None:
            reason = controller.should_stop(stats, started, divergent=False)
            if reason is not None:
                stats.stop_reason = reason
                break
        result.schedules_run += 1
        stats.runs += 1
        status, payload = completed[i] if completed is not None else run_seed(seed)
        if status == "raised":
            err_type, err_msg = payload
            result.errored.append((seed, f"{err_type}: {err_msg}"))
            report.add(Finding(
                category="schedule-divergence",
                message=(
                    f"schedule seed {seed} raised {err_type} while "
                    f"the default schedule completed: {err_msg}"
                ),
                extra={"seed": seed},
            ))
            if stop_on_divergence:
                break
            continue
        outputs = payload
        diffs = _diff_outputs(seed, result.baseline, outputs)
        if diffs:
            result.diffs.extend(diffs)
            for d in diffs:
                report.add(Finding(
                    category="schedule-divergence",
                    message=(
                        "kernel output depends on warp/commit order: "
                        + d.describe()
                        + f" — replay deterministically with seed {d.seed}"
                    ),
                    address=(d.name, 0),
                    extra={"seed": d.seed, "max_abs_diff": d.max_abs_diff},
                ))
            if stop_on_divergence:
                break
    if result.order_dependent and stop_on_divergence:
        stats.stop_reason = "divergence"
    stats.wall_seconds = time.monotonic() - started
    report.stats["schedules_run"] = float(result.schedules_run)
    return result


def replay_schedule(
    run: Callable[[Optional[ShuffleSchedule]], Dict[str, np.ndarray]], seed: int
) -> Dict[str, np.ndarray]:
    """Re-run one explored schedule by seed (deterministic repro)."""
    return run(ShuffleSchedule(seed))


# ---------------------------------------------------------------------------
# Dynamic partial-order reduction
# ---------------------------------------------------------------------------


class DirectedSchedule:
    """Backtracking schedule: default order plus explicit reversals.

    A directive is one of

    * ``("warp", block, round, w_first, w_second)`` — in that round,
      resolve warp ``w_second``'s side effects *before* warp
      ``w_first``'s (reversing one cross-warp racing pair);
    * ``("commit", block, round, warp)`` — reverse the commit order of
      that warp's posts (reversing every intra-warp pair of the round).

    Every other round keeps the scheduler's default ascending order, so
    a directed schedule *is* its directive tuple: stateless, hashable,
    picklable, and replayable with :func:`replay_directed` — no seed,
    no PRNG.  Two schedules with the same directive set are the same
    interleaving of conflicting events (a Mazurkiewicz-trace
    equivalence class under the round-local independence relation),
    which is exactly what the explorer's pruning keys on.
    """

    def __init__(self, directives: Sequence[tuple] = ()) -> None:
        self.directives: Tuple[tuple, ...] = tuple(
            sorted({tuple(d) for d in directives})
        )

    # -- policy interface (what the block scheduler calls) -----------------
    def warp_order(self, block_id: int, rnd: int, n: int) -> Sequence[int]:
        order = list(range(n))
        for d in self.directives:
            if d[0] == "warp" and d[1] == block_id and d[2] == rnd:
                w_first, w_second = d[3], d[4]
                if w_first < n and w_second < n and w_first != w_second:
                    order.remove(w_second)
                    order.insert(order.index(w_first), w_second)
        return order

    def commit_order(self, block_id: int, rnd: int, warp_id: int,
                     n: int) -> Sequence[int]:
        for d in self.directives:
            if d[0] == "commit" and d[1] == block_id and d[2] == rnd \
                    and d[3] == warp_id:
                return list(range(n - 1, -1, -1))
        return list(range(n))

    # -- identity ----------------------------------------------------------
    @property
    def key(self) -> Tuple[tuple, ...]:
        return self.directives

    def extended(self, directive: tuple) -> "DirectedSchedule":
        return DirectedSchedule(self.directives + (tuple(directive),))

    def to_spec(self) -> List[list]:
        """JSON-serializable replay spec (a list of directive lists)."""
        return [list(d) for d in self.directives]

    @staticmethod
    def from_spec(spec: Sequence[Sequence]) -> "DirectedSchedule":
        return DirectedSchedule(tuple(tuple(d) for d in spec))

    def __repr__(self) -> str:
        return f"DirectedSchedule({list(self.directives)!r})"


class BoundedPreemptionSchedule:
    """Seeded schedule perturbing at most ``budget`` rounds per block.

    The fallback for kernels whose race graph is too large for directed
    backtracking: instead of permuting *every* round (a
    :class:`ShuffleSchedule`), only ``budget`` pseudo-randomly chosen
    rounds in ``[0, horizon)`` are permuted — the schedule-space
    analogue of preemption-bounded model checking, where most divergent
    behaviours need only a few ill-placed context switches.  Stateless
    and replayable from ``(seed, budget, horizon)`` alone; the same
    SHA-512 string seeding as :class:`ShuffleSchedule` keeps it stable
    across processes and ``PYTHONHASHSEED`` values.
    """

    def __init__(self, seed: int, budget: int = 4, horizon: int = 64) -> None:
        self.seed = int(seed)
        self.budget = int(budget)
        self.horizon = int(horizon)

    def _preempted(self, block_id: int, rnd: int) -> bool:
        if rnd >= self.horizon:
            return False
        rng = random.Random(f"{self.seed}:pb:{block_id}")
        k = min(self.budget, self.horizon)
        return rnd in rng.sample(range(self.horizon), k)

    def _perm(self, n: int, *key) -> List[int]:
        order = list(range(n))
        rng = random.Random(":".join(str(k) for k in (self.seed,) + key))
        rng.shuffle(order)
        return order

    def warp_order(self, block_id: int, rnd: int, n: int) -> Sequence[int]:
        if not self._preempted(block_id, rnd):
            return list(range(n))
        return self._perm(n, "w", block_id, rnd)

    def commit_order(self, block_id: int, rnd: int, warp_id: int,
                     n: int) -> Sequence[int]:
        if not self._preempted(block_id, rnd):
            return list(range(n))
        return self._perm(n, "c", block_id, rnd, warp_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BoundedPreemptionSchedule(seed={self.seed}, "
                f"budget={self.budget}, horizon={self.horizon})")


def _pair_label(address, first: Dict, second: Dict) -> str:
    """Human-readable name of one racing pair."""
    buf, idx = address if address else ("?", 0)
    return (
        f"t{second.get('tid')} {second.get('kind')} vs "
        f"t{first.get('tid')} {first.get('kind')} on {buf!r}[{idx}] "
        f"(block {second.get('block')}, round {first.get('round')}"
        + ("" if first.get("round") == second.get("round")
           else f"->{second.get('round')}")
        + ")"
    )


@dataclass
class BacktrackPoint:
    """One racing pair and the directed schedule that reverses it."""

    schedule: DirectedSchedule
    directive: tuple
    address: Optional[Tuple[str, int]]
    first: Dict[str, object]
    second: Dict[str, object]
    sites: Tuple[str, ...] = ()

    def pair_label(self) -> str:
        return _pair_label(self.address, self.first, self.second)

    def describe(self) -> str:
        kind = "commit order" if self.directive[0] == "commit" else "warp order"
        return (
            f"reverse {kind} for racing pair {self.pair_label()} "
            f"via {self.schedule.to_spec()}"
        )


@dataclass
class DporResult:
    """Outcome of a DPOR exploration over one kernel."""

    baseline: Dict[str, np.ndarray]
    stats: RunStats = field(default_factory=RunStats)
    diffs: List[OutputDiff] = field(default_factory=list)
    #: Schedules whose run raised: ``(replay_spec, "ErrType: msg")``.
    errored: List[tuple] = field(default_factory=list)
    #: Every backtracking point generated (executed or pruned).
    backtracks: List[BacktrackPoint] = field(default_factory=list)
    #: The backtracking point whose schedule first diverged (None when
    #: the divergence came from the bounded-preemption fallback or the
    #: kernel is schedule-stable).
    divergent_backtrack: Optional[BacktrackPoint] = None
    #: Replay spec of the first divergent schedule: a directive list for
    #: directed runs, an int seed for fallback runs, None when stable.
    divergent_spec: Optional[object] = None
    report: SanitizerReport = field(
        default_factory=lambda: SanitizerReport("dpor"))

    @property
    def order_dependent(self) -> bool:
        return bool(self.diffs or self.errored)

    @property
    def reproduced(self) -> Optional[object]:
        """Replay spec of the first divergence (None if stable)."""
        return self.divergent_spec

    def text(self) -> str:
        lines = [f"==== DPOR exploration: {self.stats.describe()} ===="]
        if not self.order_dependent:
            lines.append(
                "outputs stable under every inequivalent explored schedule")
        else:
            lines.append(
                f"ORDER DEPENDENCE: replay with schedule "
                f"{self.divergent_spec!r}"
            )
            if self.divergent_backtrack is not None:
                lines.append("  backtracking point: "
                             + self.divergent_backtrack.describe())
            for d in self.diffs:
                lines.append("  " + d.describe())
            for spec, err in self.errored:
                lines.append(f"  schedule {spec!r}: raised {err}")
        return "\n".join(lines)


def _outcome_signature(status: str, payload) -> tuple:
    """Hashable signature of one run's outcome (for distinct counting)."""
    if status == "raised":
        return ("raised",) + tuple(payload)
    parts = []
    for name in sorted(payload):
        value = payload[name]
        if isinstance(value, dict):
            stripped = strip_launch_telemetry(value)
            parts.append((name, tuple(sorted(
                (k, repr(v)) for k, v in stripped.items()))))
        else:
            arr = np.asarray(value)
            parts.append((name, hashlib.sha1(
                arr.tobytes() + str(arr.shape).encode()).hexdigest()))
    return ("ok", tuple(parts))


def _nonrace_categories(reports) -> Tuple[str, ...]:
    """Finding categories of one run, minus the data races.

    Races are the *premise* of the exploration (every run under the
    report-mode session re-reports them), but any other category —
    deadlock, barrier-divergence, stale-mask — is an observable outcome:
    under the report-mode session those launches complete with findings
    instead of raising, so output diffing alone would miss a schedule
    that deadlocks while the default order finishes clean.
    """
    cats = set()
    for report in reports:
        for f in report.findings:
            if f.category != "data-race":
                cats.add(f.category)
    return tuple(sorted(cats))


def _finding_delta_msg(reports, baseline_cats) -> str:
    """Describe the findings a reversed schedule added over the baseline."""
    msgs = []
    for report in reports:
        for f in report.findings:
            if f.category != "data-race" and f.category not in baseline_cats:
                msgs.append(f"{f.category}: {f.message}")
    return "; ".join(msgs[:3]) if msgs else "baseline findings vanished"


def _extract_pairs(reports) -> List[tuple]:
    """Racing pairs from the vector-clock detector's findings."""
    pairs = []
    for report in reports:
        for f in report.findings:
            if f.category != "data-race":
                continue
            first = f.extra.get("first")
            second = f.extra.get("second")
            if not first or not second:
                continue
            pairs.append((f.address, first, second, tuple(f.sites)))
    return pairs


def _pair_key(address, first: Dict, second: Dict) -> tuple:
    return (
        tuple(address) if address else None,
        (first.get("block"), first.get("tid"), first.get("kind")),
        (second.get("block"), second.get("tid"), second.get("kind")),
    )


def explore_schedules_dpor(
    run: Callable[[Optional[object]], Dict[str, np.ndarray]],
    controller: Optional[LoopController] = None,
    preemption_budget: int = 4,
    fallback_schedules: int = 16,
    fallback_seed: int = 1,
    fallback_horizon: int = 64,
    workers: Optional[int] = None,
) -> DporResult:
    """Systematic order-dependence search by dynamic partial-order reduction.

    Each run executes under the happens-before sanitizer (a process-wide
    report-mode session is installed around the ``run`` callback, and
    restored afterwards).  The vector-clock race detector's findings are
    the dynamic race graph: every same-round racing pair yields one
    backtracking point — a :class:`DirectedSchedule` extending the
    current schedule with the directive that reverses exactly that pair.
    Directive sets are canonical, so schedules that would replay an
    already-executed interleaving of conflicting events are pruned
    (``stats.pruned_equivalent``) rather than run: the explorer executes
    only inequivalent warp-order/commit-order schedules.

    Directed schedules carry at most ``preemption_budget`` directives;
    candidates beyond the budget are counted in ``stats.pruned_budget``.
    When the race graph needs more than the budget allows — budget
    prunes happened, or racing pairs span rounds (cross-round pairs are
    ordered by the lockstep round structure and cannot be reversed by a
    round-local directive; only a control-flow change reached through
    earlier perturbation can move them) — the explorer falls back to
    ``fallback_schedules`` seeded :class:`BoundedPreemptionSchedule`
    runs, each perturbing at most ``preemption_budget`` rounds.

    ``run(policy)`` has the :func:`explore_schedules` contract.  The
    baseline runs under an empty :class:`DirectedSchedule` (identical to
    the default order).  ``workers`` is accepted for CLI symmetry with
    :func:`explore_schedules` but ignored: directed exploration is
    inherently sequential (each run's races seed the next candidates).

    Every divergence is replayable from ``result.divergent_spec`` alone:
    a directive list (:func:`replay_directed`) or a fallback integer
    seed (:func:`replay_schedule` with a
    :class:`BoundedPreemptionSchedule`).
    """
    del workers  # directed runs are sequential by construction
    from repro.gpu import device as _device_mod
    from repro import sanitizer as _san

    controller = controller or LoopController()
    started = time.monotonic()
    result = DporResult(baseline={})
    stats = result.stats
    report = result.report

    def observed_run(policy):
        """Run under a fresh report-mode session; restore the previous one."""
        prev = _device_mod._GLOBAL_SANITIZER
        sess = _san.SanitizerSession(label="dpor")
        _device_mod.set_global_sanitizer(sess)
        try:
            try:
                return ("ok", run(policy)), sess.reports
            except Exception as err:
                return ("raised", (type(err).__name__, str(err))), sess.reports
        finally:
            _device_mod.set_global_sanitizer(prev)

    executed: Dict[tuple, tuple] = {}
    queued: set = set()
    points_by_key: Dict[tuple, BacktrackPoint] = {}
    seen_pairs: set = set()
    signatures: set = set()
    queue: deque = deque([DirectedSchedule()])
    queued.add(())
    divergent = False

    def record_divergence(spec, point, diffs, error) -> None:
        nonlocal divergent
        divergent = True
        if result.divergent_spec is None:
            result.divergent_spec = spec
            result.divergent_backtrack = point
        label = "racing pair " + point.pair_label() if point is not None \
            else "bounded-preemption schedule"
        if error is not None:
            err_type, err_msg = error
            result.errored.append((spec, f"{err_type}: {err_msg}"))
            report.add(Finding(
                category="schedule-divergence",
                message=(
                    f"schedule reversing {label} raised {err_type} while the "
                    f"default schedule completed: {err_msg} — replay "
                    f"deterministically with schedule {spec!r}"
                ),
                extra={"schedule": spec},
            ))
            return
        result.diffs.extend(diffs)
        for d in diffs:
            report.add(Finding(
                category="schedule-divergence",
                message=(
                    "kernel output depends on warp/commit order: reversing "
                    f"{label} changes the result — " + d.describe()
                    + f" — replay deterministically with schedule {spec!r}"
                ),
                address=(d.name, 0),
                extra={"schedule": spec, "max_abs_diff": d.max_abs_diff,
                       **({"pair": point.pair_label()} if point else {})},
            ))

    def ingest_pairs(sched: DirectedSchedule, reports) -> None:
        """Turn a run's racing pairs into backtracking candidates."""
        for address, first, second, sites in _extract_pairs(reports):
            pkey = _pair_key(address, first, second)
            if pkey not in seen_pairs:
                seen_pairs.add(pkey)
                stats.racing_pairs += 1
                if first.get("round") != second.get("round"):
                    stats.cross_round_pairs += 1
            if (first.get("round") != second.get("round")
                    or first.get("block") != second.get("block")
                    or first.get("warp") is None
                    or second.get("warp") is None):
                continue  # not reversible by a round-local directive
            block, rnd = second.get("block"), second.get("round")
            if first["warp"] != second["warp"]:
                directive = ("warp", block, rnd, first["warp"], second["warp"])
            else:
                directive = ("commit", block, rnd, first["warp"])
            if directive in sched.directives:
                continue  # this run already reverses the pair
            stats.candidates += 1
            new = sched.extended(directive)
            if len(new.directives) > preemption_budget:
                stats.pruned_budget += 1
                continue
            if new.key in executed or new.key in queued:
                stats.pruned_equivalent += 1
                continue
            point = BacktrackPoint(
                schedule=new, directive=directive, address=address,
                first=dict(first), second=dict(second), sites=sites,
            )
            result.backtracks.append(point)
            stats.backtrack_points += 1
            points_by_key[new.key] = point
            queued.add(new.key)
            queue.append(new)

    # -- directed exploration ---------------------------------------------
    baseline_status = None
    baseline_cats: Tuple[str, ...] = ()
    while queue:
        reason = controller.should_stop(stats, started, divergent)
        if reason is not None:
            stats.stop_reason = reason
            break
        sched = queue.popleft()
        queued.discard(sched.key)
        (status, payload), reports = observed_run(sched)
        cats = _nonrace_categories(reports)
        stats.runs += 1
        stats.directed_runs += 1
        sig = _outcome_signature(status, payload if status == "ok" else payload)
        sig = sig + (cats,)
        executed[sched.key] = sig
        signatures.add(sig)
        if stats.runs == 1:
            baseline_status = (status, payload)
            baseline_cats = cats
            if status == "ok":
                result.baseline = payload
            else:
                # The default order itself raises; divergence below means
                # *different* outcomes, so keep the error as baseline.
                result.baseline = {}
        else:
            point = points_by_key.get(sched.key)
            spec = sched.to_spec()
            if status == "raised":
                if baseline_status[0] != "raised" or \
                        tuple(baseline_status[1]) != tuple(payload):
                    record_divergence(spec, point, [], payload)
            elif baseline_status[0] == "ok":
                diffs = _diff_outputs(repr(spec), result.baseline, payload)
                if diffs:
                    record_divergence(spec, point, diffs, None)
                elif cats != baseline_cats:
                    # The report-mode session converts e.g. a deadlock into
                    # findings on a *completed* launch: a finding-set delta
                    # is an outcome divergence even when memory agrees.
                    record_divergence(spec, point, [], (
                        "sanitizer", _finding_delta_msg(reports, baseline_cats)))
            else:
                # Baseline raised but this schedule completed.
                record_divergence(spec, point, [], None)
                report.add(Finding(
                    category="schedule-divergence",
                    message=(
                        "default schedule raises but a reversed schedule "
                        f"completes — replay with schedule {spec!r}"
                    ),
                    extra={"schedule": spec},
                ))
        ingest_pairs(sched, reports)
    else:
        if divergent and controller.stop_on_first_divergence:
            stats.stop_reason = "divergence"

    # -- bounded-preemption fallback ---------------------------------------
    need_fallback = (
        fallback_schedules > 0
        and (stats.pruned_budget > 0 or stats.cross_round_pairs > 0)
        and not (divergent and controller.stop_on_first_divergence)
    )
    if need_fallback and baseline_status is not None \
            and baseline_status[0] == "ok":
        for i in range(fallback_schedules):
            reason = controller.should_stop(stats, started, divergent)
            if reason is not None:
                stats.stop_reason = reason
                break
            seed = fallback_seed + i
            policy = BoundedPreemptionSchedule(
                seed, budget=preemption_budget, horizon=fallback_horizon)
            (status, payload), reports = observed_run(policy)
            cats = _nonrace_categories(reports)
            stats.runs += 1
            stats.fallback_runs += 1
            sig = _outcome_signature(status, payload) + (cats,)
            signatures.add(sig)
            if status == "raised":
                record_divergence(seed, None, [], payload)
            else:
                diffs = _diff_outputs(seed, result.baseline, payload)
                if diffs:
                    record_divergence(seed, None, diffs, None)
                elif cats != baseline_cats:
                    record_divergence(seed, None, [], (
                        "sanitizer", _finding_delta_msg(reports, baseline_cats)))
            ingest_pairs(DirectedSchedule(), reports)
        else:
            if divergent and controller.stop_on_first_divergence:
                stats.stop_reason = "divergence"

    stats.distinct_outcomes = len(signatures)
    stats.wall_seconds = time.monotonic() - started
    for key, value in stats.to_dict().items():
        if isinstance(value, (int, float)):
            report.stats[f"dpor_{key}"] = float(value)
    return result


def replay_directed(
    run: Callable[[Optional[object]], Dict[str, np.ndarray]],
    spec: Sequence[Sequence],
) -> Dict[str, np.ndarray]:
    """Re-run one directed schedule from its directive spec alone."""
    return run(DirectedSchedule.from_spec(spec))
