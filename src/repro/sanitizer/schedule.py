"""Schedule exploration: seeded permutations of warp issue and commit order.

The block scheduler is deterministic: warps resolve in ascending id and
side effects commit in lane order, so every launch is one — legal but
fixed — interleaving.  Order-dependent bugs (racy accumulations, missing
barriers) can therefore produce stable, plausible-looking results.  In
the spirit of ``simsched``'s random-scheduling exploration, a
:class:`ShuffleSchedule` re-permutes, per scheduling round, (a) the
order in which warps' side effects resolve and (b) the commit order of
events within each warp — both drawn from a seeded PRNG, so **every
schedule is replayable from its integer seed alone**.

:func:`explore_schedules` is the fuzz loop: run a kernel once under the
default schedule, then under N seeded schedules, diffing the outputs
(and optionally the sanitizer findings) after each run.  A divergent
seed is a minimized, deterministic repro of an order dependence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.sanitizer.report import Finding, SanitizerReport


class ShuffleSchedule:
    """Seeded schedule policy consumed by the block scheduler.

    ``warp_order(block, round, n)`` permutes the order in which the
    round's warps resolve; ``commit_order(block, round, warp, n)``
    permutes side-effect application within one warp's posts.  The policy
    is *stateless*: each permutation is drawn from a PRNG seeded by
    ``(seed, block, round, warp)`` alone, never by call order.  That
    keeps a run replayable from the integer seed — and, because a
    block's schedule no longer depends on which blocks ran before it,
    one policy object yields identical schedules whether the blocks
    execute serially or sharded across the parallel executor's workers.
    (String seeding hashes via SHA-512, so permutations are stable
    across processes and ``PYTHONHASHSEED`` values.)
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def _perm(self, n: int, *key) -> Sequence[int]:
        order = list(range(n))
        rng = random.Random(":".join(str(k) for k in (self.seed,) + key))
        rng.shuffle(order)
        return order

    def warp_order(self, block_id: int, rnd: int, n: int) -> Sequence[int]:
        return self._perm(n, "w", block_id, rnd)

    def commit_order(self, block_id: int, rnd: int, warp_id: int, n: int) -> Sequence[int]:
        return self._perm(n, "c", block_id, rnd, warp_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShuffleSchedule(seed={self.seed})"


@dataclass
class OutputDiff:
    """One output array that changed under a permuted schedule."""

    seed: int
    name: str
    n_mismatch: int
    max_abs_diff: float

    def describe(self) -> str:
        return (
            f"seed {self.seed}: output {self.name!r} differs at "
            f"{self.n_mismatch} element(s), max |Δ| = {self.max_abs_diff:g}"
        )


@dataclass
class ExplorationResult:
    """Outcome of an N-schedule fuzz loop over one kernel."""

    schedules_run: int
    baseline: Dict[str, np.ndarray]
    diffs: List[OutputDiff] = field(default_factory=list)
    #: Seeds whose run raised (e.g. a DeadlockError only some orders hit).
    errored: List[tuple] = field(default_factory=list)
    report: SanitizerReport = field(default_factory=lambda: SanitizerReport("explore"))

    @property
    def divergent_seeds(self) -> List[int]:
        seeds: List[int] = []
        for d in self.diffs:
            if d.seed not in seeds:
                seeds.append(d.seed)
        for seed, _ in self.errored:
            if seed not in seeds:
                seeds.append(seed)
        return seeds

    @property
    def reproduced(self) -> Optional[int]:
        """First seed demonstrating order dependence (None if stable)."""
        seeds = self.divergent_seeds
        return seeds[0] if seeds else None

    @property
    def order_dependent(self) -> bool:
        return bool(self.divergent_seeds)

    def text(self) -> str:
        lines = [f"==== schedule exploration: {self.schedules_run} schedule(s) ===="]
        if not self.order_dependent:
            lines.append("outputs stable under every explored schedule")
        else:
            lines.append(
                f"ORDER DEPENDENCE: {len(self.divergent_seeds)} divergent "
                f"seed(s); replay with seed {self.reproduced}"
            )
            for d in self.diffs:
                lines.append("  " + d.describe())
            for seed, err in self.errored:
                lines.append(f"  seed {seed}: raised {err}")
        return "\n".join(lines)


def _diff_outputs(
    seed: int, baseline: Dict[str, np.ndarray], outputs: Dict[str, np.ndarray]
) -> List[OutputDiff]:
    diffs = []
    for name in sorted(baseline):
        base = np.asarray(baseline[name])
        got = np.asarray(outputs.get(name))
        mism = ~np.isclose(got, base, rtol=0.0, atol=0.0, equal_nan=True)
        n = int(np.count_nonzero(mism))
        if n:
            delta = float(np.max(np.abs(got[mism] - base[mism])))
            diffs.append(OutputDiff(seed, name, n, delta))
    return diffs


def explore_schedules(
    run: Callable[[Optional[ShuffleSchedule]], Dict[str, np.ndarray]],
    schedules: int = 16,
    base_seed: int = 1,
    stop_on_divergence: bool = True,
    workers: Optional[int] = None,
) -> ExplorationResult:
    """Fuzz a kernel across ``schedules`` seeded warp/commit orderings.

    ``run(policy)`` must build a *fresh* device + buffers, launch with
    ``schedule_policy=policy`` (None = default order), and return a dict
    of named output arrays.  Each divergence is reported with the seed
    that reproduces it deterministically via :func:`replay_schedule`.

    ``workers`` > 1 fans the seeds out over forked worker processes
    (seeds are independent by construction); results are then folded in
    seed order with the exact serial semantics — same ``schedules_run``
    count, same first divergence, same early stop.  Speculative runs
    past the stopping point are simply discarded.
    """
    result = ExplorationResult(schedules_run=0, baseline=run(None))
    report = result.report
    seeds = [base_seed + i for i in range(schedules)]

    def run_seed(seed):
        """-> ("ok", outputs) or ("raised", (type name, message))."""
        try:
            return "ok", run(ShuffleSchedule(seed))
        except Exception as err:  # deadlocks/races only some orders reach
            return "raised", (type(err).__name__, str(err))

    completed = None
    if workers is not None and workers > 1 and len(seeds) > 1:
        from repro.exec.pool import fork_map

        completed = []
        for status, payload in fork_map(run_seed, seeds, workers=workers):
            if status == "err":  # infrastructure failure, not a kernel error
                payload.reraise()
            completed.append(payload)
    for i, seed in enumerate(seeds):
        result.schedules_run += 1
        status, payload = completed[i] if completed is not None else run_seed(seed)
        if status == "raised":
            err_type, err_msg = payload
            result.errored.append((seed, f"{err_type}: {err_msg}"))
            report.add(Finding(
                category="schedule-divergence",
                message=(
                    f"schedule seed {seed} raised {err_type} while "
                    f"the default schedule completed: {err_msg}"
                ),
                extra={"seed": seed},
            ))
            if stop_on_divergence:
                break
            continue
        outputs = payload
        diffs = _diff_outputs(seed, result.baseline, outputs)
        if diffs:
            result.diffs.extend(diffs)
            for d in diffs:
                report.add(Finding(
                    category="schedule-divergence",
                    message=(
                        "kernel output depends on warp/commit order: "
                        + d.describe()
                        + f" — replay deterministically with seed {d.seed}"
                    ),
                    address=(d.name, 0),
                    extra={"seed": d.seed, "max_abs_diff": d.max_abs_diff},
                ))
            if stop_on_divergence:
                break
    report.stats["schedules_run"] = float(result.schedules_run)
    return result


def replay_schedule(
    run: Callable[[Optional[ShuffleSchedule]], Dict[str, np.ndarray]], seed: int
) -> Dict[str, np.ndarray]:
    """Re-run one explored schedule by seed (deterministic repro)."""
    return run(ShuffleSchedule(seed))
