"""Barrier-divergence, stale-mask, and deadlock analysis.

The block scheduler already detects *that* a block is stuck (no lane
advanced, no barrier released).  This analyzer explains *why*, with
block/warp/lane/round provenance and the textual barrier sites involved:

* **Barrier divergence** — lanes of one block waiting at textually
  different block barriers (or different ``(bar_id, count)`` keys), or
  live lanes that never arrived at the barrier their siblings wait on.
* **Stale ``simdmask``** — a warp barrier/shuffle mask that names a lane
  which already retired (or is waiting on a different key): the group
  can never converge.  This is flagged *eagerly* at lane retirement, not
  just post-mortem, because ``_mask_converged`` can provably never
  succeed once a named lane is gone.
* **Worker state-machine lockups** — anything else (e.g. a SIMD main
  thread exiting without posting the null-function termination signal)
  falls out as a deadlock finding whose per-lane wait sites point into
  the state machine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gpu.events import T_SHUFFLE, T_SYNCBLOCK, T_SYNCWARP, T_VOTE
from repro.gpu.thread import DONE, STATE_NAMES, WAIT_BLOCK, WAIT_SHFL, WAIT_WARP
from repro.sanitizer.report import Finding, SanitizerReport

_SYNC_TAGS = (T_SYNCWARP, T_SYNCBLOCK, T_SHUFFLE, T_VOTE)


class BarrierAnalyzer:
    """Tracks synchronization arrivals and explains convergence failures."""

    def __init__(self, report: SanitizerReport) -> None:
        self.report = report
        #: Last sync-event site per (block, tid): (site, round, tag).
        self._last_sync: Dict[Tuple[int, int], Tuple[str, int, int]] = {}
        self._stale_reported: set = set()

    # -- event feed --------------------------------------------------------
    def on_event(self, block, rnd: int, lane, ev, site: str) -> None:
        if ev.tag not in _SYNC_TAGS:
            return
        self._last_sync[(block.block_id, lane.tid)] = (site, rnd, ev.tag)
        self.report.bump("barrier_arrivals")
        if ev.tag != T_SYNCBLOCK:
            # Masked warp-level sync: a mask naming an already-retired
            # lane can never converge — flag it at arrival time.
            for other in block._warps[lane.warp_id]:
                if other.state == DONE and (ev.mask >> other.lane_id) & 1:
                    self._stale(block, rnd, lane, ev.mask, other, site)

    def on_release(self, block_id: int, rnd: int, kind: str, tids: List[int]) -> None:
        self.report.bump(f"releases_{kind}")

    def _site_of(self, block_id: int, tid: int) -> str:
        rec = self._last_sync.get((block_id, tid))
        return rec[0] if rec else "<unknown site>"

    # -- eager stale-mask detection ---------------------------------------
    def _stale(self, block, rnd: int, waiter, mask: int, retired,
               site: Optional[str] = None) -> None:
        dedup = (block.block_id, waiter.tid, mask)
        if dedup in self._stale_reported:
            return
        self._stale_reported.add(dedup)
        site = site or self._site_of(block.block_id, waiter.tid)
        self.report.add(Finding(
            category="stale-mask",
            message=(
                f"simd group synchronizes with a stale mask: t{waiter.tid} "
                f"(warp {waiter.warp_id}, lane {waiter.lane_id}) waits on "
                f"mask {mask:#x} at {site}, "
                f"but lane {retired.lane_id} (t{retired.tid}) named by the "
                f"mask already retired — the group can never converge"
            ),
            block=block.block_id,
            warp=waiter.warp_id,
            lane=waiter.lane_id,
            tid=waiter.tid,
            round=rnd,
            sites=(site,),
            extra={"mask": mask, "retired_tid": retired.tid},
        ))

    def on_retire(self, block, rnd: int, lane) -> None:
        """A lane retired: any group waiting on a mask naming it is stuck."""
        warp_lanes = block._warps[lane.warp_id]
        for waiter in warp_lanes:
            if waiter.state not in (WAIT_WARP, WAIT_SHFL):
                continue
            mask = waiter.wait_key if waiter.state == WAIT_WARP else waiter.wait_key[0]
            if (mask >> lane.lane_id) & 1:
                self._stale(block, rnd, waiter, mask, lane)

    # -- post-mortem deadlock analysis -------------------------------------
    def on_deadlock(self, block, rnd: int) -> str:
        """Explain a no-progress round; returns text for the raised error."""
        block_id = block.block_id
        waiting = [l for l in block.lanes if l.state not in (DONE,)]
        lines: List[str] = []

        # 1. Block-barrier divergence: different keys or different sites.
        by_key: Dict[tuple, List] = {}
        for lane in waiting:
            if lane.state == WAIT_BLOCK:
                by_key.setdefault(lane.wait_key, []).append(lane)
        absent = [l for l in waiting if l.state != WAIT_BLOCK]
        if by_key:
            sites = {}
            for key, lanes in by_key.items():
                for lane in lanes:
                    sites.setdefault(self._site_of(block_id, lane.tid), []).append(lane)
            if len(by_key) > 1 or len(sites) > 1 or absent:
                arrived = "; ".join(
                    f"{site} <- lanes {sorted(l.tid for l in lanes)}"
                    for site, lanes in sorted(sites.items())
                )
                missing = ""
                if absent:
                    missing = (
                        "; never arrived: "
                        + ", ".join(
                            f"t{l.tid} ({STATE_NAMES[l.state]} at "
                            f"{self._site_of(block_id, l.tid)})"
                            for l in absent
                        )
                    )
                some = by_key and next(iter(by_key.values()))[0]
                self.report.add(Finding(
                    category="barrier-divergence",
                    message=(
                        f"lanes of block {block_id} arrived at textually "
                        f"different barriers: {arrived}{missing}"
                    ),
                    block=block_id,
                    warp=some.warp_id if some else None,
                    round=rnd,
                    sites=tuple(sorted(sites)),
                    extra={"barrier_keys": [list(map(repr, by_key))]},
                ))
                lines.append("barrier divergence across block-barrier sites")

        # 2. Warp-level convergence failures (mask mismatch / stale lanes).
        for warp_lanes in block._warps:
            masked: Dict[int, List] = {}
            for lane in warp_lanes:
                if lane.state == WAIT_WARP:
                    masked.setdefault(lane.wait_key, []).append(lane)
                elif lane.state == WAIT_SHFL:
                    masked.setdefault(lane.wait_key[0], []).append(lane)
            for mask, lanes in masked.items():
                blockers = []
                for other in warp_lanes:
                    if not (mask >> other.lane_id) & 1:
                        continue
                    if other.state == DONE:
                        blockers.append(f"lane {other.lane_id} retired")
                    elif other not in lanes:
                        blockers.append(
                            f"lane {other.lane_id} at {STATE_NAMES[other.state]} "
                            f"({self._site_of(block_id, other.tid)})"
                        )
                if not blockers:
                    continue
                first = lanes[0]
                self.report.add(Finding(
                    category="barrier-divergence",
                    message=(
                        f"warp {first.warp_id} of block {block_id}: lanes "
                        f"{sorted(l.lane_id for l in lanes)} wait on mask "
                        f"{mask:#x} at {self._site_of(block_id, first.tid)} "
                        f"but {'; '.join(blockers)}"
                    ),
                    block=block_id,
                    warp=first.warp_id,
                    lane=first.lane_id,
                    tid=first.tid,
                    round=rnd,
                    sites=(self._site_of(block_id, first.tid),),
                    extra={"mask": mask},
                ))
                lines.append(f"warp {first.warp_id} mask {mask:#x} cannot converge")

        # 3. Always record the lockup itself with per-lane provenance.
        detail = "; ".join(
            f"t{l.tid} (warp {l.warp_id}, lane {l.lane_id}) "
            f"{STATE_NAMES[l.state]} at {self._site_of(block_id, l.tid)}"
            for l in waiting
        )
        self.report.add(Finding(
            category="deadlock",
            message=(
                f"block {block_id} deadlocked in round {rnd}: no lane can "
                f"make progress — {detail}"
            ),
            block=block_id,
            round=rnd,
            sites=tuple(
                sorted({self._site_of(block_id, l.tid) for l in waiting})
            ),
        ))
        lines.append(f"{len(waiting)} lane(s) stuck")
        return "sanitizer: " + "; ".join(lines) if lines else ""
