"""Structured sanitizer output: findings and the per-launch report.

Every detector (:mod:`repro.sanitizer.races`,
:mod:`repro.sanitizer.barriers`, :mod:`repro.sanitizer.sharing_audit`)
emits :class:`Finding` records into one :class:`SanitizerReport`.  The
report renders as text (``compute-sanitizer``-style, one block per
finding with full provenance) and as JSON for machine consumption — CI
jobs diff the JSON, the schedule explorer diffs reports across seeds.

Severities
==========

``error``
    A correctness bug: a data race, a divergent/deadlocked barrier, a
    leaked sharing-space allocation.  Errors make a report non-clean.
``warning``
    Suspicious but not provably wrong (reserved; no current detector
    emits one on well-formed programs).
``note``
    Informational observations (e.g. sharing-space global fallbacks),
    kept out of :attr:`SanitizerReport.findings` accounting so a clean
    kernel that legitimately overflows its sharing slice stays clean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

SEVERITIES = ("error", "warning", "note")


@dataclass
class Finding:
    """One sanitizer observation with full provenance."""

    #: Detector category, e.g. ``data-race``, ``barrier-divergence``,
    #: ``stale-mask``, ``deadlock``, ``sharing-leak``, ``sharing-overread``,
    #: ``sharing-fallback``, ``schedule-divergence``.
    category: str
    message: str
    severity: str = "error"
    block: Optional[int] = None
    warp: Optional[int] = None
    lane: Optional[int] = None
    tid: Optional[int] = None
    round: Optional[int] = None
    #: ``(buffer_name, element_index)`` for memory findings.
    address: Optional[Tuple[str, int]] = None
    #: Source sites involved (``file.py:lineno``), conflicting pair first.
    sites: Tuple[str, ...] = ()
    extra: Dict[str, object] = field(default_factory=dict)

    def where(self) -> str:
        parts = []
        if self.block is not None:
            parts.append(f"block {self.block}")
        if self.warp is not None:
            parts.append(f"warp {self.warp}")
        if self.lane is not None:
            parts.append(f"lane {self.lane}")
        if self.tid is not None:
            parts.append(f"t{self.tid}")
        if self.round is not None:
            parts.append(f"round {self.round}")
        return ", ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "category": self.category,
            "severity": self.severity,
            "message": self.message,
        }
        for key in ("block", "warp", "lane", "tid", "round"):
            val = getattr(self, key)
            if val is not None:
                out[key] = val
        if self.address is not None:
            out["address"] = {"buffer": self.address[0], "index": self.address[1]}
        if self.sites:
            out["sites"] = list(self.sites)
        if self.extra:
            out["extra"] = dict(self.extra)
        return out

    def render(self) -> str:
        head = f"[{self.severity}] {self.category}"
        where = self.where()
        if where:
            head += f" ({where})"
        lines = [head, f"  {self.message}"]
        if self.address is not None:
            lines.append(f"  address: {self.address[0]!r}[{self.address[1]}]")
        for site in self.sites:
            lines.append(f"  site: {site}")
        return "\n".join(lines)


class SanitizerReport:
    """All findings and statistics one sanitized launch produced."""

    def __init__(self, label: str = "kernel") -> None:
        self.label = label
        self.findings: List[Finding] = []
        #: Informational observations (severity ``note``); never affect
        #: cleanliness.
        self.notes: List[Finding] = []
        #: Detector statistics (accesses checked, barriers observed, ...).
        self.stats: Dict[str, float] = {}
        self.truncated = 0

    # -- recording ---------------------------------------------------------
    def add(self, finding: Finding) -> None:
        if finding.severity == "note":
            self.notes.append(finding)
        else:
            self.findings.append(finding)

    def bump(self, stat: str, amount: float = 1) -> None:
        self.stats[stat] = self.stats.get(stat, 0) + amount

    # -- queries -----------------------------------------------------------
    @property
    def clean(self) -> bool:
        """True when no error/warning findings were recorded."""
        return not self.findings

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def by_category(self, category: str) -> List[Finding]:
        return [f for f in self.findings + self.notes if f.category == category]

    def categories(self) -> List[str]:
        seen: List[str] = []
        for f in self.findings + self.notes:
            if f.category not in seen:
                seen.append(f.category)
        return seen

    def merge(self, other: "SanitizerReport") -> None:
        self.findings.extend(other.findings)
        self.notes.extend(other.notes)
        for key, val in other.stats.items():
            self.bump(key, val)
        self.truncated += other.truncated

    # -- rendering ---------------------------------------------------------
    def text(self) -> str:
        lines = [f"==== sanitizer report: {self.label} ===="]
        if self.clean:
            lines.append("no errors detected")
        else:
            lines.append(f"{len(self.findings)} finding(s)")
            for f in self.findings:
                lines.append(f.render())
        for note in self.notes:
            lines.append(note.render())
        if self.truncated:
            lines.append(f"({self.truncated} further finding(s) suppressed)")
        if self.stats:
            stat_line = ", ".join(
                f"{k}={int(v) if float(v).is_integer() else v}"
                for k, v in sorted(self.stats.items())
            )
            lines.append(f"stats: {stat_line}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "clean": self.clean,
            "findings": [f.to_dict() for f in self.findings],
            "notes": [f.to_dict() for f in self.notes],
            "stats": dict(self.stats),
            "truncated": self.truncated,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "clean" if self.clean else f"{len(self.findings)} findings"
        return f"SanitizerReport({self.label!r}, {state})"
