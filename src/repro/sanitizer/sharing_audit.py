"""Sharing-space auditor: slice overflows, fallbacks, leaks, over-reads.

Hooks into :class:`repro.runtime.sharing.SharingSpace` (which notifies
the block's attached monitor on every staging episode) and reports, per
launch:

* **global fallbacks** (``note`` severity — a legitimate, measured cost
  the A1 ablation sweeps, not a bug) with the overflow size vs the
  per-group slice capacity;
* **over-reads** — a fetch of more argument slots than the group staged
  (reads of stale neighbouring slots would silently corrupt arguments);
* **leaked overflow allocations** — a sharing episode whose global
  buffer was never released by ``end_simd_sharing``/``end_team_sharing``
  when the block finished (device-side memory leak, once per launch slot).

Statistics land in :attr:`SanitizerReport.stats`: staged episodes, peak
slots staged, fallback count, and slice utilization.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sanitizer.report import Finding, SanitizerReport


class SharingAuditor:
    """Audits variable-sharing-space discipline per launch."""

    def __init__(self, report: SanitizerReport) -> None:
        self.report = report
        #: Live SharingSpace objects seen this block (audited at block end).
        self._spaces: Dict[int, object] = {}
        #: Slots staged per (space, group); -1 marks team-level staging.
        self._staged: Dict[Tuple[int, int], int] = {}
        self._peak_slots = 0

    # -- staging notifications (called via the block monitor) --------------
    def on_sharing(self, block, kind: str, space, group: int, nslots: int,
                   capacity: int, rnd: int) -> None:
        self._spaces[id(space)] = space
        bid = block.block_id
        if kind in ("stage_simd", "stage_team"):
            self._staged[(id(space), group)] = nslots
            self._peak_slots = max(self._peak_slots, nslots)
            self.report.bump("sharing_staged_episodes")
            self.report.stats["sharing_peak_slots"] = float(self._peak_slots)
            if capacity:
                util = nslots / capacity
                self.report.stats["sharing_peak_utilization"] = max(
                    self.report.stats.get("sharing_peak_utilization", 0.0), util
                )
            if nslots > capacity:
                self.report.bump("sharing_fallbacks")
                scope = "team" if group < 0 else f"group {group}"
                self.report.add(Finding(
                    category="sharing-fallback",
                    severity="note",
                    message=(
                        f"block {bid} {scope}: {nslots} argument slot(s) "
                        f"overflowed the {capacity}-slot sharing slice; fell "
                        f"back to a global-memory allocation"
                    ),
                    block=bid,
                    round=rnd,
                    extra={"slots": nslots, "capacity": capacity},
                ))
        elif kind in ("fetch_simd", "fetch_team"):
            staged = self._staged.get((id(space), group))
            self.report.bump("sharing_fetches")
            if staged is not None and nslots > staged:
                scope = "team" if group < 0 else f"group {group}"
                self.report.add(Finding(
                    category="sharing-overread",
                    message=(
                        f"block {bid} {scope}: fetched {nslots} argument "
                        f"slot(s) but only {staged} were staged — the extra "
                        f"slots read stale sharing-space contents"
                    ),
                    block=bid,
                    round=rnd,
                    extra={"fetched": nslots, "staged": staged},
                ))
        elif kind in ("end_simd", "end_team"):
            self._staged.pop((id(space), group), None)
            self.report.bump("sharing_releases")

    # -- end-of-block leak audit -------------------------------------------
    def on_block_end(self, block) -> None:
        bid = block.block_id
        for space in self._spaces.values():
            for group, gbuf in sorted(getattr(space, "_group_overflow", {}).items()):
                self.report.add(Finding(
                    category="sharing-leak",
                    message=(
                        f"block {bid} group {group}: sharing-space overflow "
                        f"allocation {gbuf.name!r} ({gbuf.nbytes} bytes) was "
                        f"never released — end_simd_sharing missing for this "
                        f"sharing episode"
                    ),
                    block=bid,
                    address=(gbuf.name, 0),
                    extra={"group": group, "bytes": gbuf.nbytes},
                ))
            team_buf = getattr(space, "_team_overflow", None)
            if team_buf is not None:
                self.report.add(Finding(
                    category="sharing-leak",
                    message=(
                        f"block {bid}: team-level overflow allocation "
                        f"{team_buf.name!r} ({team_buf.nbytes} bytes) was "
                        f"never released — end_team_sharing missing"
                    ),
                    block=bid,
                    address=(team_buf.name, 0),
                    extra={"bytes": team_buf.nbytes},
                ))
        self._spaces.clear()
        self._staged.clear()
