"""Vector-clock happens-before data-race detection (FastTrack-style).

The detector replaces the old round-local check in
``ThreadBlock._check_races``, which compared only accesses posted in the
*same* scheduling round: two conflicting accesses in different rounds
with no intervening barrier were never compared, so e.g. a store in
round 0 of warp 0 racing a store in round 3 of warp 1 went unreported.
Here every access is checked against per-element shadow state under the
full happens-before order, so cross-round races are caught.

Happens-before model
====================

* program order within one lane;
* a released barrier group — block-wide ``syncthreads``, *named counted*
  block barriers, warp ``syncwarp(mask)`` barriers (the paper's SIMD
  group barriers over ``simdmask``), and shuffle/vote groups (they are
  ``__*_sync`` operations) — joins the clocks of every released lane;
* atomics on one location behave acquire/release *for that location*:
  each atomic joins the location's atomic clock into the lane and
  publishes the lane's clock back.  This orders idioms like
  claim-with-``atomicAdd``-then-write and is deliberately more lenient
  than relaxed hardware atomics (documented in ``docs/SANITIZER.md``).

A race is a **plain write** conflicting with any other lane's access —
plain write, plain read, or atomic — that is not ordered by
happens-before.  Atomic-vs-atomic contention and atomic-write vs plain
read are treated as synchronized, matching the simulator's established
race semantics.  Lane-``local`` buffers are private by construction and
not tracked.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gpu.events import T_ATOMIC, T_LOAD, T_STORE
from repro.sanitizer.clocks import (
    Clock,
    LaneKey,
    epoch_hb,
    fresh_clock,
    join_into,
    joined,
    tick,
)
from repro.sanitizer.report import Finding, SanitizerReport

#: Access kinds recorded in shadow cells.
READ, WRITE, ATOMIC = "read", "write", "atomic"


class Access:
    """One recorded access epoch with provenance."""

    __slots__ = ("key", "clock", "round", "site", "kind", "warp")

    def __init__(self, key: LaneKey, clock: int, rnd: int, site: str, kind: str,
                 warp: Optional[int] = None):
        self.key = key
        self.clock = clock
        self.round = rnd
        self.site = site
        self.kind = kind
        #: Warp id of the accessing lane (schedule-exploration provenance:
        #: the DPOR explorer reverses racing pairs by warp/commit order).
        self.warp = warp

    def describe(self) -> str:
        block, tid = self.key
        return f"block {block} t{tid} {self.kind} (round {self.round}, {self.site})"


class _Cell:
    """Shadow state of one buffer element."""

    __slots__ = ("write", "reads", "atomics", "avc")

    def __init__(self) -> None:
        self.write: Optional[Access] = None
        self.reads: Dict[LaneKey, Access] = {}
        self.atomics: Dict[LaneKey, Access] = {}
        #: The location's atomic release clock (acquire/release edges).
        self.avc: Clock = {}


class RaceDetector:
    """Happens-before race detector over global and shared memory."""

    def __init__(self, report: SanitizerReport, max_findings: int = 64) -> None:
        self.report = report
        self.max_findings = max_findings
        self._clocks: Dict[LaneKey, Clock] = {}
        self._shadow: Dict[Tuple[int, int], _Cell] = {}
        #: Strong refs so freed buffers cannot recycle their ``id()``.
        self._buffers: Dict[int, object] = {}
        self._reported: set = set()

    # -- lane bookkeeping --------------------------------------------------
    def clock_of(self, key: LaneKey) -> Clock:
        clock = self._clocks.get(key)
        if clock is None:
            clock = fresh_clock(key)
            self._clocks[key] = clock
        return clock

    def on_release(self, block_id: int, tids: List[int]) -> None:
        """A barrier/shuffle/vote group released: join participants' clocks."""
        keys = [(block_id, tid) for tid in tids]
        merged = joined(self.clock_of(k) for k in keys)
        for key in keys:
            clock = dict(merged)
            tick(clock, key)
            self._clocks[key] = clock

    # -- access processing -------------------------------------------------
    def on_event(self, block_id: int, rnd: int, tid: int, ev, site: str,
                 warp: Optional[int] = None) -> None:
        tag = ev.tag
        if tag == T_LOAD:
            if ev.buf.space == "local":
                return
            for idx in ev.idxs:
                self._access(block_id, rnd, tid, ev.buf, int(idx), READ, site, warp)
        elif tag == T_STORE:
            if ev.buf.space == "local":
                return
            for idx in ev.idxs:
                self._access(block_id, rnd, tid, ev.buf, int(idx), WRITE, site, warp)
        elif tag == T_ATOMIC:
            if ev.buf.space == "local":
                return
            self._access(block_id, rnd, tid, ev.buf, int(ev.idx), ATOMIC, site, warp)

    def _cell(self, buf, idx: int) -> _Cell:
        self._buffers[id(buf)] = buf
        cell = self._shadow.get((id(buf), idx))
        if cell is None:
            cell = _Cell()
            self._shadow[(id(buf), idx)] = cell
        return cell

    def _access(
        self, block_id: int, rnd: int, tid: int, buf, idx: int, kind: str,
        site: str, warp: Optional[int] = None,
    ) -> None:
        key = (block_id, tid)
        clock = self.clock_of(key)
        cell = self._cell(buf, idx)
        self.report.bump("race_checked_accesses")
        me = Access(key, clock.get(key, 0), rnd, site, kind, warp)

        if kind == ATOMIC:
            # Acquire the location's atomic clock, then check against any
            # unordered plain write (a write racing an atomic is a race).
            join_into(clock, cell.avc)
            w = cell.write
            if w is not None and w.key != key and not epoch_hb(w.key, w.clock, clock):
                self._report(buf, idx, w, me)
            cell.atomics[key] = me
            # Release: publish this lane's clock on the location.
            join_into(cell.avc, clock)
            return

        if kind == READ:
            w = cell.write
            if w is not None and w.key != key and not epoch_hb(w.key, w.clock, clock):
                self._report(buf, idx, w, me)
            cell.reads[key] = me
            return

        # Plain write: conflicts with everything unordered.
        w = cell.write
        if w is not None and w.key != key and not epoch_hb(w.key, w.clock, clock):
            self._report(buf, idx, w, me)
        for other in cell.reads.values():
            if other.key != key and not epoch_hb(other.key, other.clock, clock):
                self._report(buf, idx, other, me)
        for other in cell.atomics.values():
            if other.key != key and not epoch_hb(other.key, other.clock, clock):
                self._report(buf, idx, other, me)
        cell.write = me
        cell.reads.clear()
        cell.atomics.clear()

    # -- reporting ---------------------------------------------------------
    def _report(self, buf, idx: int, first: Access, second: Access) -> None:
        # Unordered pair key: the same two conflicting (lane, kind) parties
        # are one bug however many times their accesses interleave.
        pair = tuple(sorted(((first.key, first.kind), (second.key, second.kind))))
        dedup = (id(buf), idx, pair)
        if dedup in self._reported:
            return
        self._reported.add(dedup)
        if len(self.report.findings) >= self.max_findings:
            self.report.truncated += 1
            return
        block, tid = second.key
        message = (
            f"data race in block {block} on {buf.name!r}[{idx}]: "
            f"{second.describe()} conflicts with {first.describe()}"
        )
        finding = Finding(
            category="data-race",
            message=message,
            block=block,
            tid=tid,
            round=second.round,
            address=(buf.name, idx),
            sites=(second.site, first.site),
            extra={
                "first": {"block": first.key[0], "tid": first.key[1],
                          "kind": first.kind, "round": first.round,
                          "warp": first.warp},
                "second": {"block": block, "tid": tid,
                           "kind": second.kind, "round": second.round,
                           "warp": second.warp},
            },
        )
        self.report.add(finding)
