"""Vector clocks for the happens-before race detector.

Clocks are plain ``dict`` maps from a *lane key* — ``(block_id, tid)`` —
to an integer epoch.  The sparse representation matters: a block has up
to 1,056 lanes but synchronization cliques (SIMD groups, warps) are much
smaller, and most lanes only ever accumulate entries for lanes they
actually synchronized with.

The component for a key that is absent is 0, so ``{}`` is the bottom
clock.  Blocks cannot synchronize with one another, which the detector
exploits: clocks of lanes in different blocks only ever join through
per-location atomic clocks (see :mod:`repro.sanitizer.races`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

#: A lane's identity across the whole grid.
LaneKey = Tuple[int, int]  # (block_id, tid)

Clock = Dict[LaneKey, int]


def fresh_clock(key: LaneKey) -> Clock:
    """Initial clock of a lane: epoch 1 of itself, nothing else."""
    return {key: 1}


def join_into(dst: Clock, src: Clock) -> None:
    """``dst := dst ⊔ src`` (component-wise max), in place."""
    for key, t in src.items():
        if dst.get(key, 0) < t:
            dst[key] = t


def joined(clocks: Iterable[Clock]) -> Clock:
    """Least upper bound of several clocks (a new dict)."""
    out: Clock = {}
    for clock in clocks:
        join_into(out, clock)
    return out


def tick(clock: Clock, key: LaneKey) -> None:
    """Advance ``key``'s own component (a release increments the epoch)."""
    clock[key] = clock.get(key, 0) + 1


def epoch_hb(key: LaneKey, t: int, clock: Clock) -> bool:
    """True when epoch ``(key, t)`` happens-before (or is) ``clock``."""
    return t <= clock.get(key, 0)
