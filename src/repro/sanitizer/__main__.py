"""CLI: sanitize an application script or run the seeded-bug corpus.

Usage::

    python -m repro.sanitizer examples/quickstart.py   # sanitize a script
    python -m repro.sanitizer quickstart               # resolve by example name
    python -m repro.sanitizer --corpus                 # full negative corpus
    python -m repro.sanitizer --corpus stale-simdmask  # one case
    python -m repro.sanitizer --list                   # what can be run

The script form works ``compute-sanitizer``-style: a process-wide
:class:`~repro.sanitizer.SanitizerSession` is activated, the unmodified
script runs under ``runpy``, and every kernel launch it performs is
sanitized in report mode.  Exit status is 0 when every report is clean
(corpus: when every planted bug is caught), 1 otherwise.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import os
import runpy
import sys


def _resolve_script(target: str) -> str:
    """Accept a path, or a bare example name like ``quickstart``."""
    if os.path.exists(target):
        return target
    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))))
    for candidate in (
        os.path.join(root, "examples", target),
        os.path.join(root, "examples", target + ".py"),
    ):
        if os.path.exists(candidate):
            return candidate
    raise SystemExit(f"error: no such script or example: {target!r}")


def _run_script(path: str, as_json: bool, quiet: bool, workers=None) -> int:
    from repro import sanitizer

    if workers:
        from repro.exec import ParallelExecutor, set_default_executor

        set_default_executor(ParallelExecutor(workers=workers))
    sess = sanitizer.activate(label=os.path.basename(path))
    try:
        stdout = io.StringIO() if quiet else sys.stdout
        with contextlib.redirect_stdout(stdout):
            runpy.run_path(path, run_name="__main__")
    finally:
        sanitizer.deactivate()
        if workers:
            from repro.exec import set_default_executor

            set_default_executor(None)
    if as_json:
        print(json.dumps(sess.to_dict(), indent=2, sort_keys=True))
    else:
        print(sess.text())
    return 0 if sess.clean else 1


def _run_corpus(name, as_json: bool, workers=None) -> int:
    from repro.sanitizer import corpus

    if name:
        try:
            cases = [corpus.by_name(name)]
        except KeyError as exc:
            raise SystemExit(f"error: {exc.args[0]}")
    else:
        cases = corpus.CASES
    results = [case.run(workers=workers) for case in cases]
    if as_json:
        print(json.dumps(
            [{"name": r.name, "caught": r.caught,
              "expect": list(r.expect), "got": r.got} for r in results],
            indent=2, sort_keys=True))
    else:
        for r in results:
            print(r.describe())
        caught = sum(r.caught for r in results)
        print(f"corpus: {caught}/{len(results)} planted bug(s) caught")
    return 0 if all(r.caught for r in results) else 1


def _list_targets() -> int:
    from repro.sanitizer import corpus

    root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))))
    exdir = os.path.join(root, "examples")
    print("examples (run with: python -m repro.sanitizer <name>):")
    if os.path.isdir(exdir):
        for fn in sorted(os.listdir(exdir)):
            if fn.endswith(".py"):
                print(f"  {fn[:-3]}")
    print("corpus cases (run with: python -m repro.sanitizer --corpus <name>):")
    for case in corpus.CASES:
        print(f"  {case.name:26s} {case.description}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sanitizer",
        description="GPU correctness sanitizer for repro applications",
    )
    parser.add_argument("target", nargs="?",
                        help="script path or example name to sanitize")
    parser.add_argument("--corpus", nargs="?", const="", metavar="CASE",
                        default=None,
                        help="run the seeded-bug corpus (optionally one case)")
    parser.add_argument("--list", action="store_true",
                        help="list runnable examples and corpus cases")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the target script's own stdout")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="run launches through the parallel block "
                             "executor (and fan schedule exploration out "
                             "over N worker processes)")
    args = parser.parse_args(argv)

    if args.list:
        return _list_targets()
    if args.corpus is not None:
        return _run_corpus(args.corpus or None, args.json, workers=args.workers)
    if not args.target:
        parser.error("give a script/example to sanitize, --corpus, or --list")
    return _run_script(_resolve_script(args.target), args.json, args.quiet,
                       workers=args.workers)


if __name__ == "__main__":
    sys.exit(main())
