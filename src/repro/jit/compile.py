"""Warp trace recording and script compilation.

:func:`compile_block` drives one vectorized generator per warp
(:class:`~repro.jit.vector.VecThreadCtx`) to completion, translating
every yielded event into one precomputed *script step*.  All stability
guards fire here — before a single architectural side effect commits —
so a :class:`~repro.jit.vector.JitAbort` always leaves the block's
scalar lane generators untouched at round zero, and the fallback
interpreter replays the block from scratch, bit-identically.

Soundness of dry-run loads
==========================

Loads gather their data *at compile time*, assuming memory still holds
its pre-block values.  Two guards make that assumption exact:

* **dependence** — a warp never reads a cell it wrote earlier in its
  own trace (and a single store never writes the same cell twice);
* **isolation** — after all warps trace, no warp's read set may
  intersect another warp's write set (write/write overlap is fine:
  consumption commits in the same ascending (round, warp) order the
  interpreters use).

Script steps
============

``('C', cycles)``
    one converged compute issue; ``cycles`` is the precomputed
    ``op_cost[kind] * max(ops)`` charge.
``('L', npos, nelem, secs, transactions)``
    one load issue; ``secs``/``transactions`` precompute the sector
    footprint exactly as :meth:`ThreadBlock._account_memory_fast`
    would (the L1 hit/miss split stays dynamic at consumption).
``('S', npos, nelem, secs, transactions, buf, commits)``
    one store issue; ``commits`` is a per-position list of
    ``(selector, values)`` ready for bulk assignment.
``('F', buf, prefix, bad_idx)``
    an out-of-bounds access: commit the elementwise ``prefix`` (the
    lane-major writes that precede the fault), then raise the
    canonical :class:`~repro.errors.MemoryFault`.  Always terminal.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.events import T_COMPUTE, T_LOAD, T_STORE
from repro.jit.vector import JitAbort, LaneVec, VecThreadCtx


class WarpScript:
    """One warp's fully resolved event script."""

    __slots__ = ("steps", "nlanes")

    def __init__(self, steps, nlanes: int) -> None:
        self.steps = steps
        self.nlanes = nlanes


class _BufTrack:
    """Per-buffer read/write footprints, by warp, for the guard checks."""

    __slots__ = ("buf", "reads", "writes")

    def __init__(self, buf) -> None:
        self.buf = buf
        self.reads: dict = {}  # warp id -> bool mask
        self.writes: dict = {}


def _mask_for(slot: dict, w: int, size: int) -> np.ndarray:
    m = slot.get(w)
    if m is None:
        m = slot[w] = np.zeros(size, dtype=bool)
    return m


def _norm_index(val, nlanes: int):
    """One index position -> ``('a', a0, stride)`` exact affine or
    ``('v', int64 array)``, applying the scalar engines' ``int()``
    truncation to non-integer payloads."""
    if isinstance(val, LaneVec):
        if val.arr is None:
            return ("a", val.a0, val.stride)
        arr = val.arr
        if arr.dtype != np.int64:
            arr = arr.astype(np.int64)
        return ("v", arr)
    if isinstance(val, (bool, int, np.integer, float, np.floating)):
        return ("a", int(val), 0)
    raise JitAbort("event", f"unsupported index payload {type(val).__name__}")


def _values_of(sel, nlanes: int) -> np.ndarray:
    """Materialized per-lane index values for a normalized selector."""
    if sel[0] == "a":
        return sel[1] + sel[2] * np.arange(nlanes, dtype=np.int64)
    return sel[1]


def _run_bounds(sel, nlanes: int):
    """``(first, last)`` when the selector's per-lane indices form the
    unit-stride ascending run :meth:`ThreadBlock._consec_run` detects
    (single lanes always qualify), else ``None``.  Runs are detected *by
    value*, exactly like the scalar engine — a materialized index array
    that happens to ascend by one takes the same formula."""
    if sel[0] == "a":
        if sel[2] == 1 or nlanes == 1:
            return sel[1], sel[1] + sel[2] * (nlanes - 1)
        return None
    arr = sel[1]
    first = int(arr[0])
    if nlanes == 1:
        return first, first
    last = int(arr[-1])
    if last - first == nlanes - 1 and (np.diff(arr) == 1).all():
        return first, last
    return None


def _sector_footprint(selectors, nlanes: int, buf, params):
    """``(secs, transactions)`` — exact mirror of the fast engine's
    ``_account_memory_fast`` for a converged, lockstep, global-space
    issue group."""
    sb = params.sector_bytes
    isz = buf.itemsize
    base = buf.base
    npos = len(selectors)
    if npos == 0:
        return (), 0
    if npos == 1:
        run = _run_bounds(selectors[0], nlanes)
        if run is not None:
            s0 = (base + run[0] * isz) // sb
            s1 = (base + run[1] * isz + (isz - 1)) // sb
            return range(s0, s1 + 1), s1 - s0 + 1
        vals = _values_of(selectors[0], nlanes)
        lo = (base + vals * isz) // sb
        if sb % isz == 0 and base % isz == 0:
            secs = np.unique(lo).tolist()
        else:
            hi = (base + vals * isz + (isz - 1)) // sb
            secs = np.unique(np.concatenate((lo, hi))).tolist()
        return secs, len(secs)
    aligned = sb % isz == 0 and base % isz == 0
    mat = np.stack([_values_of(s, nlanes) for s in selectors])  # (npos, nlanes)
    lo = (base + mat * isz) // sb
    if aligned:
        transactions = 0
        for k in range(npos):
            transactions += np.unique(lo[k]).size
        secs = np.unique(lo).tolist()
    else:
        hi = (base + mat * isz + (isz - 1)) // sb
        transactions = 0
        for k in range(npos):
            transactions += np.unique(np.concatenate((lo[k], hi[k]))).size
        secs = np.unique(np.concatenate((lo.ravel(), hi.ravel()))).tolist()
    return secs, transactions


def _first_oob(selectors, nlanes: int, size: int):
    """First out-of-bounds ``(lane, pos, idx)`` in the lane-major order
    the scalar side-effect pass walks, or ``None``.  Affine selectors
    are monotone, so two endpoint checks decide the common case."""
    bad = None
    for pos, sel in enumerate(selectors):
        if sel[0] == "a":
            a0, s = sel[1], sel[2]
            last = a0 + s * (nlanes - 1)
            if 0 <= a0 < size and 0 <= last < size:
                continue
            lane = 0
            while 0 <= a0 + s * lane < size:
                lane += 1
            idx = a0 + s * lane
        else:
            vals = sel[1]
            invalid = (vals < 0) | (vals >= size)
            if not invalid.any():
                continue
            lane = int(np.argmax(invalid))
            idx = int(vals[lane])
        if bad is None or lane < bad[0] or (lane == bad[0] and pos < bad[1]):
            bad = (lane, pos, idx)
    return bad


def _check_distinct(selectors, nlanes: int) -> None:
    """Dependence guard: a single store may not write one cell twice
    (the scalar engines commit duplicates in lane order; a bulk
    assignment cannot).  Affine strided positions are distinct by
    construction, so only materialized or multi-position index sets pay
    for a uniqueness pass."""
    npos = len(selectors)
    if npos == 0:
        return
    if npos == 1:
        sel = selectors[0]
        if sel[0] == "a":
            if sel[2] != 0 or nlanes == 1:
                return
        elif nlanes == 1 or np.unique(sel[1]).size == nlanes:
            return
        raise JitAbort("dependence", "store writes a cell twice")
    all_idx = np.concatenate([_values_of(s, nlanes) for s in selectors])
    if np.unique(all_idx).size != nlanes * npos:
        raise JitAbort("dependence", "store writes a cell twice")


def _materialize_value(v, nlanes: int) -> np.ndarray:
    if isinstance(v, LaneVec):
        return v.materialize()
    return np.full(nlanes, v)


def _selector_obj(sel, nlanes: int):
    """Commit/bookkeeping selector: a slice for unit-stride affine runs,
    else the materialized index array."""
    if sel[0] == "a" and sel[2] == 1:
        return slice(sel[1], sel[1] + nlanes)
    return _values_of(sel, nlanes)


def compile_block(block):
    """Trace every warp of ``block``; returns a list of
    :class:`WarpScript` or raises :class:`JitAbort` at the first failing
    warp (nothing committed either way)."""
    params = block.params
    op_cost = block._op_cost
    max_rounds = block.max_rounds
    ws = params.warp_size
    sb = params.sector_bytes
    track: dict = {}  # id(buf) -> _BufTrack
    scripts = []
    for w in range(block.num_warps):
        nlanes = min(ws, block.num_threads - w * ws)
        vtc = VecThreadCtx(
            w,
            nlanes,
            ws,
            block.block_id,
            block.num_blocks,
            block.num_threads,
        )
        gen = block._entry(vtc, *block._args)
        steps: list = []
        send = gen.send
        append = steps.append
        cost_of = op_cost.get
        track_get = track.get
        reply = None
        while True:
            try:
                ev = send(reply)
            except StopIteration:
                break
            reply = None
            tag = getattr(ev, "tag", -1)
            if tag == T_COMPUTE:
                ops = ev.ops
                if isinstance(ops, LaneVec):
                    ops = ops.materialize().max()
                append(("C", cost_of(ev.kind, 1.0) * ops))
            elif tag == T_LOAD or tag == T_STORE:
                buf = ev.buf
                if buf.space != "global":
                    raise JitAbort("event", f"{buf.space}-space access")
                idxs = ev.idxs
                iv = idxs[0] if len(idxs) == 1 else None
                if (
                    iv is not None
                    and iv.__class__ is LaneVec
                    and iv.arr is None
                    and iv.stride == 1
                    and 0 <= iv.a0
                    and iv.a0 + nlanes <= buf.size
                ):
                    # Fused fast path: one affine unit-stride in-bounds
                    # position — the coalesced-stream shape.  Semantically
                    # identical to the general path below, with the run
                    # sector formula, slice selector, and distinctness
                    # (stride 1) all resolved inline.
                    a0 = iv.a0
                    sobj = slice(a0, a0 + nlanes)
                    base = buf.base
                    isz = buf.itemsize
                    s0 = (base + a0 * isz) // sb
                    s1 = (base + (a0 + nlanes - 1) * isz + (isz - 1)) // sb
                    key = id(buf)
                    t = track_get(key)
                    if t is None:
                        t = track[key] = _BufTrack(buf)
                    if tag == T_LOAD:
                        own = t.writes.get(w)
                        if own is not None and own[sobj].any():
                            raise JitAbort(
                                "dependence", "load overlaps own earlier store"
                            )
                        rmask = t.reads.get(w)
                        if rmask is None:
                            rmask = t.reads[w] = np.zeros(buf.size, dtype=bool)
                        rmask[sobj] = True
                        reply = (LaneVec.from_array(buf.data[sobj].copy()),)
                        append(("L", 1, nlanes, range(s0, s1 + 1), s1 - s0 + 1))
                    else:
                        values = ev.values
                        if len(values) != 1:
                            raise JitAbort("error", "store arity mismatch")
                        va = _materialize_value(values[0], nlanes)
                        wmask = t.writes.get(w)
                        if wmask is None:
                            wmask = t.writes[w] = np.zeros(buf.size, dtype=bool)
                        wmask[sobj] = True
                        append(
                            ("S", 1, nlanes, range(s0, s1 + 1), s1 - s0 + 1,
                             buf, [(sobj, va)])
                        )
                    if len(steps) > max_rounds:
                        raise JitAbort("error", "trace exceeds max_rounds")
                    continue
                selectors = [_norm_index(i, nlanes) for i in idxs]
                npos = len(selectors)
                bad = _first_oob(selectors, nlanes, buf.size)
                key = id(buf)
                t = track_get(key)
                if t is None:
                    t = track[key] = _BufTrack(buf)
                if tag == T_LOAD:
                    if bad is not None:
                        append(("F", buf, (), bad[2]))
                        break  # terminal: the fault ends this warp's trace
                    own_writes = t.writes.get(w)
                    rmask = _mask_for(t.reads, w, buf.size)
                    out = []
                    for sel in selectors:
                        sobj = _selector_obj(sel, nlanes)
                        if own_writes is not None and own_writes[sobj].any():
                            raise JitAbort(
                                "dependence", "load overlaps own earlier store"
                            )
                        rmask[sobj] = True
                        out.append(LaneVec.from_array(buf.gather(sobj)))
                    secs, transactions = _sector_footprint(
                        selectors, nlanes, buf, params
                    )
                    append(("L", npos, nlanes * npos, secs, transactions))
                    reply = tuple(out)
                else:
                    values = ev.values
                    if len(values) != npos:
                        raise JitAbort("error", "store arity mismatch")
                    _check_distinct(selectors, nlanes)
                    val_arrs = [_materialize_value(v, nlanes) for v in values]
                    wmask = _mask_for(t.writes, w, buf.size)
                    if bad is not None:
                        bl, bp, bidx = bad
                        vals_by_pos = [_values_of(s, nlanes) for s in selectors]
                        prefix = []
                        for lane in range(bl + 1):
                            pmax = npos if lane < bl else bp
                            for pos in range(pmax):
                                i = int(vals_by_pos[pos][lane])
                                prefix.append((i, val_arrs[pos][lane]))
                                wmask[i] = True
                        append(("F", buf, prefix, bidx))
                        break
                    commits = []
                    for sel, va in zip(selectors, val_arrs):
                        sobj = _selector_obj(sel, nlanes)
                        wmask[sobj] = True
                        commits.append((sobj, va))
                    secs, transactions = _sector_footprint(
                        selectors, nlanes, buf, params
                    )
                    append(
                        ("S", npos, nlanes * npos, secs, transactions, buf, commits)
                    )
            else:
                raise JitAbort("event", f"unsupported event {type(ev).__name__}")
            if len(steps) > max_rounds:
                # The interpreter would raise its canonical runaway-loop
                # SimulationError; let it.
                raise JitAbort("error", "trace exceeds max_rounds")
        scripts.append(WarpScript(steps, nlanes))
    # Cross-warp isolation: no warp may have read a cell any *other* warp
    # writes (at any round) — dry-run gathers assumed pre-block values.
    for t in track.values():
        if not t.writes or not t.reads:
            continue
        total = np.zeros(t.buf.size, dtype=np.int32)
        for m in t.writes.values():
            total += m
        for w, rmask in t.reads.items():
            own = t.writes.get(w)
            others = (total - own) > 0 if own is not None else total > 0
            if (rmask & others).any():
                raise JitAbort("isolation", "cross-warp read/write overlap")
    return scripts
