"""Trace-compiled warp engine: the JIT tier above the round interpreters.

The block scheduler (:mod:`repro.gpu.block`) owns two interpreter
engines — instrumented and fast — that both pay one Python generator
step per lane per event.  This package adds a third tier: it re-runs a
warp's kernel as a *single vectorized generator* over all lanes at once
(:mod:`repro.jit.vector`), records the resulting event trace into a
per-warp script (:mod:`repro.jit.compile`), and then consumes the
script with batched NumPy loads/stores and O(1) per-step accounting
(:mod:`repro.jit.engine`) — one script step per warp per round instead
of 32 (or 64) generator steps.

The tier is *sound by construction*: compilation happens before any
architectural side effect is committed, every stability guard
(divergence, unsupported events, address dependences, cross-warp
overlap) aborts compilation while the block's scalar lane generators
are still untouched at round zero, and a failed compile simply falls
back to the fast interpreter.  ``docs/PERF.md`` documents the guard
ladder; ``tests/gpu/test_fastpath_equiv.py`` holds the three-engine
differential proof obligation.

Engine selection
================

:func:`default_engine` resolves the process-wide engine preference from
the ``REPRO_ENGINE`` environment variable (re-read at each call, like
``repro.exec.default_executor``):

========================  ==================================================
``REPRO_ENGINE``          Meaning
========================  ==================================================
unset / ``auto``          fast interpreter when hook-free (today's default)
``instrumented``          always the instrumented reference engine
``fast``                  the fast interpreter (hooks force instrumented)
``jit``                   trace-compile stable warps; deopt to fast
========================  ==================================================

``Device.launch(engine=...)`` overrides the environment per launch; the
legacy ``fastpath=`` flag maps onto ``fast``/``instrumented``.
"""

from __future__ import annotations

import os

from repro.jit.stats import GLOBAL_STATS, JitCounters, snapshot, reset

#: Environment variable naming the round-engine preference.
ENGINE_ENV = "REPRO_ENGINE"

#: Valid engine preference names.
ENGINES = ("auto", "instrumented", "fast", "jit")


def coerce_engine(spec: str) -> str:
    """Validate an engine preference name; returns the canonical string."""
    name = str(spec).strip().lower()
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {spec!r}: expected one of {', '.join(ENGINES)}"
        )
    return name


def default_engine() -> str:
    """The process-wide engine preference (``REPRO_ENGINE``, else ``auto``).

    Re-reads the environment on every call so tests and harnesses can
    flip the variable between launches, mirroring
    :func:`repro.exec.default_executor`.
    """
    spec = os.environ.get(ENGINE_ENV, "").strip()
    if not spec:
        return "auto"
    return coerce_engine(spec)


__all__ = [
    "ENGINE_ENV",
    "ENGINES",
    "GLOBAL_STATS",
    "JitCounters",
    "coerce_engine",
    "default_engine",
    "reset",
    "snapshot",
]
