"""JIT tier statistics: per-launch counters and process-global totals.

Two layers of observability, with deliberately different scopes:

* :class:`JitCounters` — per-launch, deterministic, merged back from
  parallel workers through the same numeric side-state protocol as
  fault counters (``repro.exec.state``).  These surface in
  ``kc.extra`` (``jit_warps_compiled``, ``jit_deopt_<reason>``) and
  must be identical across executors, so they only count facts that
  are a pure function of the launch (which blocks compiled, why the
  others deopted) — never cache temperature.
* :data:`GLOBAL_STATS` — process-global, *advisory* totals including
  trace-cache hits/misses.  Cache temperature depends on process
  history and worker reuse, so it is reported only through
  :func:`snapshot` (bench JSON, ad-hoc diagnostics), never through
  ``kc.extra``.
"""

from __future__ import annotations

#: Deoptimization reasons, in guard-ladder order (see docs/PERF.md).
#: ``hook`` is decided before tracing (attached tracer/monitor/schedule
#: hooks or active fault plans); the rest are compile-time guards.
DEOPT_REASONS = (
    "hook",
    "divergence",
    "event",
    "alloc",
    "dependence",
    "isolation",
    "error",
)


class JitCounters:
    """Per-launch JIT telemetry.

    Plain ``int`` attributes only: parallel executors snapshot/delta/merge
    these through :mod:`repro.exec.state`, which walks ``vars(obj)`` for
    numeric fields.
    """

    def __init__(self) -> None:
        self.blocks_compiled = 0
        self.warps_compiled = 0
        self.deopt_hook = 0
        self.deopt_divergence = 0
        self.deopt_event = 0
        self.deopt_alloc = 0
        self.deopt_dependence = 0
        self.deopt_isolation = 0
        self.deopt_error = 0

    def note_compiled(self, num_warps: int) -> None:
        self.blocks_compiled += 1
        self.warps_compiled += num_warps

    def note_deopt(self, reason: str) -> None:
        if reason not in DEOPT_REASONS:  # pragma: no cover - internal misuse
            raise ValueError(f"unknown deopt reason {reason!r}")
        setattr(self, "deopt_" + reason, getattr(self, "deopt_" + reason) + 1)

    def extra_items(self):
        """``kc.extra`` entries for this launch (floats, stable key order)."""
        items = [("jit_warps_compiled", float(self.warps_compiled))]
        for reason in DEOPT_REASONS:
            n = getattr(self, "deopt_" + reason)
            if n:
                items.append((f"jit_deopt_{reason}", float(n)))
        return items


class _GlobalStats:
    """Process-global JIT totals (advisory; includes cache temperature)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.trace_cache_hits = 0
        self.trace_cache_misses = 0
        self.blocks_compiled = 0
        self.warps_compiled = 0
        self.deopts = {r: 0 for r in DEOPT_REASONS}

    def snapshot(self) -> dict:
        return {
            "trace_cache_hits": self.trace_cache_hits,
            "trace_cache_misses": self.trace_cache_misses,
            "blocks_compiled": self.blocks_compiled,
            "warps_compiled": self.warps_compiled,
            "deopts": dict(self.deopts),
        }


GLOBAL_STATS = _GlobalStats()


def snapshot() -> dict:
    """A copy of the process-global JIT totals (for bench JSON etc.)."""
    return GLOBAL_STATS.snapshot()


def reset() -> None:
    """Zero the process-global JIT totals."""
    GLOBAL_STATS.reset()
