"""Vectorized lane values and the whole-warp thread context.

The JIT tier re-runs a kernel generator once *per warp* instead of once
per lane, binding every lane-varying quantity (``tid``, ``lane_id``,
loaded values, accumulators) to a :class:`LaneVec` — a lazy vector of
one value per lane.  Python-level control flow in the kernel then acts
on all lanes at once; anywhere the lanes would disagree about which
branch to take, a :class:`BoolProbe` raises :class:`JitAbort` and the
warp falls back to the scalar interpreter before any side effect has
been committed.

Exactness contract
==================

The scalar engines compute with Python ints (arbitrary precision) and
Python floats (IEEE doubles).  :class:`LaneVec` keeps *affine integer*
values — ``a0 + stride * lane`` — as Python ints, so induction
arithmetic is exact; only non-affine results materialize to NumPy
arrays (``int64``/``float64``), whose elementwise ``+ - * / // %`` match
CPython's semantics bit-for-bit for in-range values.  An ``int64``
overflow *would* diverge from Python bignums — kernels indexing beyond
2**63 are out of scope for the JIT and are caught by the differential
suite, not silently tolerated (see docs/PERF.md).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.events import Compute, Load, Store
from repro.gpu.thread import full_mask


class JitAbort(Exception):
    """Compilation guard failure: fall back to the interpreter.

    ``reason`` is one of :data:`repro.jit.stats.DEOPT_REASONS` (minus
    ``hook``, which is decided before tracing starts).
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.reason = reason


class BoolProbe:
    """A per-lane predicate that must be uniform to steer control flow.

    ``uniform`` is ``True``/``False`` when every lane agrees, ``None``
    when they diverge; branching on a divergent probe aborts the
    compile.  (``and``/``or``/``not``/``if``/``while`` all funnel
    through ``__bool__``, so kernel control flow needs no rewriting.)
    """

    __slots__ = ("uniform",)

    def __init__(self, uniform) -> None:
        self.uniform = uniform

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "BoolProbe":
        if arr.all():
            return cls(True)
        if not arr.any():
            return cls(False)
        return cls(None)

    @classmethod
    def from_endpoints(cls, first: bool, last: bool) -> "BoolProbe":
        """Probe for a *monotone* predicate over a monotone lane sequence:
        equal endpoints imply uniformity."""
        if first == last:
            return cls(bool(first))
        return cls(None)

    def __bool__(self) -> bool:
        if self.uniform is None:
            raise JitAbort("divergence", "lanes diverge at a branch")
        return self.uniform

    def __invert__(self) -> "BoolProbe":
        return BoolProbe(None if self.uniform is None else not self.uniform)


def _scalar_of(x):
    """``(tag, value)`` when ``x`` acts as one scalar across all lanes.

    tag 'i' → exact int, 'f' → float, None → not scalar (or unknown
    type: let the caller materialize / fail).
    """
    if isinstance(x, bool):
        return ("i", int(x))
    if isinstance(x, int):
        return ("i", x)
    if isinstance(x, float):
        return ("f", x)
    if isinstance(x, np.integer):
        return ("i", int(x))
    if isinstance(x, np.floating):
        return ("f", float(x))
    if isinstance(x, LaneVec) and x.arr is None and x.stride == 0:
        return ("i", x.a0)
    return None


class LaneVec:
    """One value per lane of a warp, affine where possible.

    Either ``arr`` is ``None`` and the lane values are the exact Python
    ints ``a0 + stride * lane_index``, or ``arr`` is a NumPy array of
    length ``n`` holding materialized per-lane values.
    """

    __slots__ = ("n", "a0", "stride", "arr")

    #: Refuse NumPy's mixed-operand ufunc protocol so ``ndarray <op>
    #: LaneVec`` defers to our reflected dunders instead of building an
    #: object array.
    __array_ufunc__ = None

    def __init__(self, n: int, a0: int = 0, stride: int = 0, arr=None) -> None:
        self.n = n
        self.a0 = a0
        self.stride = stride
        self.arr = arr

    @classmethod
    def affine(cls, a0: int, stride: int, n: int) -> "LaneVec":
        return cls(n, a0, stride, None)

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "LaneVec":
        return cls(len(arr), 0, 0, arr)

    # -- materialization ----------------------------------------------------
    def materialize(self) -> np.ndarray:
        """Per-lane values as an ndarray (int64 for affine forms)."""
        if self.arr is not None:
            return self.arr
        return self.a0 + self.stride * np.arange(self.n, dtype=np.int64)

    # Affine forms materialize fresh each use (warp-sized arrays are cheap)
    # rather than caching: caching would demote the exact affine form and
    # make guard behaviour depend on operation order.
    _vals = materialize

    # -- uniform-collapse protocol -----------------------------------------
    def _uniform(self):
        """The single scalar value when all lanes agree, else JitAbort."""
        if self.arr is None:
            if self.stride == 0:
                return self.a0
            raise JitAbort("divergence", "lane-varying value used as a scalar")
        first = self.arr[0]
        if (self.arr == first).all():
            return first.item()
        raise JitAbort("divergence", "lane-varying value used as a scalar")

    def __bool__(self) -> bool:
        return bool(self._uniform())

    def __int__(self) -> int:
        return int(self._uniform())

    def __index__(self) -> int:
        v = self._uniform()
        if not isinstance(v, int):
            raise TypeError(f"cannot use {type(v).__name__} lanes as an index")
        return v

    def __float__(self) -> float:
        return float(self._uniform())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.arr is None:
            return f"LaneVec(affine {self.a0}+{self.stride}*lane, n={self.n})"
        return f"LaneVec(arr={self.arr!r})"

    # -- arithmetic ---------------------------------------------------------
    def __add__(self, other):
        # Exact-type fast paths for the two overwhelmingly common operand
        # kinds before the general coercion chain.
        tp = other.__class__
        if tp is int:
            if self.arr is None:
                return LaneVec.affine(self.a0 + other, self.stride, self.n)
            return LaneVec.from_array(self.arr + other)
        if tp is float:
            return LaneVec.from_array(self._vals() + other)
        if tp is LaneVec:
            if self.arr is None and other.arr is None:
                return LaneVec.affine(
                    self.a0 + other.a0, self.stride + other.stride, self.n
                )
            return LaneVec.from_array(self._vals() + other._vals())
        s = _scalar_of(other)
        if s is not None:
            tag, v = s
            if tag == "i" and self.arr is None:
                return LaneVec.affine(self.a0 + v, self.stride, self.n)
            return LaneVec.from_array(self._vals() + v)
        if isinstance(other, LaneVec):
            if self.arr is None and other.arr is None:
                return LaneVec.affine(
                    self.a0 + other.a0, self.stride + other.stride, self.n
                )
            return LaneVec.from_array(self._vals() + other._vals())
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        s = _scalar_of(other)
        if s is not None:
            tag, v = s
            if tag == "i" and self.arr is None:
                return LaneVec.affine(self.a0 - v, self.stride, self.n)
            return LaneVec.from_array(self._vals() - v)
        if isinstance(other, LaneVec):
            if self.arr is None and other.arr is None:
                return LaneVec.affine(
                    self.a0 - other.a0, self.stride - other.stride, self.n
                )
            return LaneVec.from_array(self._vals() - other._vals())
        return NotImplemented

    def __rsub__(self, other):
        s = _scalar_of(other)
        if s is not None:
            tag, v = s
            if tag == "i" and self.arr is None:
                return LaneVec.affine(v - self.a0, -self.stride, self.n)
            return LaneVec.from_array(v - self._vals())
        return NotImplemented

    def __mul__(self, other):
        tp = other.__class__
        if tp is int:
            if self.arr is None:
                return LaneVec.affine(self.a0 * other, self.stride * other, self.n)
            return LaneVec.from_array(self.arr * other)
        if tp is float:
            return LaneVec.from_array(self._vals() * other)
        s = _scalar_of(other)
        if s is not None:
            tag, v = s
            if tag == "i" and self.arr is None:
                return LaneVec.affine(self.a0 * v, self.stride * v, self.n)
            return LaneVec.from_array(self._vals() * v)
        if isinstance(other, LaneVec):
            return LaneVec.from_array(self._vals() * other._vals())
        return NotImplemented

    __rmul__ = __mul__

    def _numeric(self, other, op):
        """Materialized binary op against a scalar or another LaneVec."""
        s = _scalar_of(other)
        if s is not None:
            return LaneVec.from_array(op(self._vals(), s[1]))
        if isinstance(other, LaneVec):
            return LaneVec.from_array(op(self._vals(), other._vals()))
        return NotImplemented

    def _rnumeric(self, other, op):
        s = _scalar_of(other)
        if s is not None:
            return LaneVec.from_array(op(s[1], self._vals()))
        return NotImplemented

    def __truediv__(self, other):
        return self._numeric(other, lambda a, b: a / b)

    def __rtruediv__(self, other):
        return self._rnumeric(other, lambda a, b: a / b)

    def __floordiv__(self, other):
        return self._numeric(other, lambda a, b: a // b)

    def __rfloordiv__(self, other):
        return self._rnumeric(other, lambda a, b: a // b)

    def __mod__(self, other):
        return self._numeric(other, lambda a, b: a % b)

    def __rmod__(self, other):
        return self._rnumeric(other, lambda a, b: a % b)

    def __pow__(self, other):
        return self._numeric(other, lambda a, b: a**b)

    def __rpow__(self, other):
        return self._rnumeric(other, lambda a, b: a**b)

    def __neg__(self):
        if self.arr is None:
            return LaneVec.affine(-self.a0, -self.stride, self.n)
        return LaneVec.from_array(-self.arr)

    def __pos__(self):
        return self

    def __abs__(self):
        return LaneVec.from_array(np.abs(self._vals()))

    # -- comparisons ---------------------------------------------------------
    def _compare(self, other, op, swapped: bool = False) -> "BoolProbe":
        s = _scalar_of(other)
        if s is not None and self.arr is None:
            # Affine lanes are monotone in lane index, and every threshold
            # predicate against one scalar is monotone in the lane value —
            # two endpoint evaluations decide uniformity exactly.
            lo = self.a0
            hi = self.a0 + self.stride * (self.n - 1)
            if swapped:
                return BoolProbe.from_endpoints(op(s[1], lo), op(s[1], hi))
            return BoolProbe.from_endpoints(op(lo, s[1]), op(hi, s[1]))
        if s is not None:
            a, b = (s[1], self._vals()) if swapped else (self._vals(), s[1])
            return BoolProbe.from_array(op(a, b))
        if isinstance(other, LaneVec):
            a, b = (other._vals(), self._vals()) if swapped else (self._vals(), other._vals())
            return BoolProbe.from_array(op(a, b))
        return NotImplemented

    def _compare_eq(self, other, negate: bool) -> "BoolProbe":
        s = _scalar_of(other)
        if s is not None and self.arr is None and self.stride != 0:
            # A strictly monotone sequence equals one scalar in at most one
            # lane: uniform only when no lane matches (or n == 1).
            delta = s[1] - self.a0
            hits = (
                isinstance(delta, int)
                and delta % self.stride == 0
                and 0 <= delta // self.stride < self.n
            )
            if not hits:
                return BoolProbe(negate)
            if self.n == 1:
                return BoolProbe(not negate)
            return BoolProbe(None)
        if s is not None:
            arr = self._vals() == s[1]
            return BoolProbe.from_array(arr != negate)
        if isinstance(other, LaneVec):
            arr = self._vals() == other._vals()
            return BoolProbe.from_array(arr != negate)
        return NotImplemented

    def __lt__(self, other):
        return self._compare(other, lambda a, b: a < b)

    def __le__(self, other):
        return self._compare(other, lambda a, b: a <= b)

    def __gt__(self, other):
        return self._compare(other, lambda a, b: a > b)

    def __ge__(self, other):
        return self._compare(other, lambda a, b: a >= b)

    def __eq__(self, other):  # type: ignore[override]
        return self._compare_eq(other, negate=False)

    def __ne__(self, other):  # type: ignore[override]
        return self._compare_eq(other, negate=True)

    # Defining __eq__ clears __hash__; LaneVecs must never be dict keys
    # (an attempt raises TypeError, which aborts the compile).
    __hash__ = None  # type: ignore[assignment]


def _unsupported(reason: str, what: str):
    """A generator helper that aborts compilation on its first step."""
    raise JitAbort(reason, what)
    yield  # pragma: no cover - unreachable, marks this as a generator


class VecThreadCtx:
    """A :class:`~repro.gpu.thread.ThreadCtx` stand-in covering a whole warp.

    Mirrors the scalar context's attribute/method surface exactly, but
    ``tid``/``lane_id``/``global_tid`` are affine :class:`LaneVec`\\ s and
    the memory helpers yield events whose index/value payloads may be
    LaneVecs.  Everything the JIT cannot vectorize — atomics, barriers,
    shuffles, votes, allocations, device asserts — raises
    :class:`JitAbort` before any side effect, sending the warp back to
    the interpreter.
    """

    __slots__ = (
        "tid",
        "lane_id",
        "warp_id",
        "block_id",
        "num_blocks",
        "block_dim",
        "warp_size",
        "block",
        "rt",
    )

    def __init__(
        self,
        warp_id: int,
        nlanes: int,
        warp_size: int,
        block_id: int,
        num_blocks: int,
        block_dim: int,
    ) -> None:
        base = warp_id * warp_size
        self.tid = LaneVec.affine(base, 1, nlanes)
        self.lane_id = LaneVec.affine(0, 1, nlanes)
        self.warp_id = warp_id
        self.block_id = block_id
        self.num_blocks = num_blocks
        self.block_dim = block_dim
        self.warp_size = warp_size
        #: Unlike the scalar context there is no owning-block backdoor:
        #: any access through it is un-vectorizable and must abort, which
        #: an AttributeError on None achieves.
        self.block = None
        self.rt = None

    @property
    def global_tid(self):
        base = self.block_id * self.block_dim
        t = self.tid
        return LaneVec.affine(base + t.a0, t.stride, t.n)

    def warp_mask(self) -> int:
        return full_mask(self.warp_size)

    # -- vectorized events ---------------------------------------------------
    def load(self, buf, idx):
        res = yield Load(buf, (idx,))
        return res[0]

    def load_vec(self, buf, idxs):
        res = yield Load(buf, tuple(idxs))
        return list(res)

    def store(self, buf, idx, value):
        yield Store(buf, (idx,), (value,))

    def store_vec(self, buf, idxs, values):
        yield Store(buf, tuple(idxs), tuple(values))

    def compute(self, kind: str = "alu", ops=1):
        # Not interned: ``ops`` may be a LaneVec, and intern keys must
        # stay hashable.  Compute() computes the same interned sig.
        yield Compute(kind, ops)

    # -- un-vectorizable events: abort before any side effect ----------------
    def atomic_add(self, buf, idx, value):
        return _unsupported("event", "atomic")

    atomic_max = atomic_min = atomic_exch = atomic_add

    def atomic_cas(self, buf, idx, compare, value):
        return _unsupported("event", "atomic")

    def syncwarp(self, mask=None):
        return _unsupported("event", "syncwarp")

    def syncthreads(self, bar_id: int = 0, count=None):
        return _unsupported("event", "syncthreads")

    def shfl(self, value, src, mask=None):
        return _unsupported("event", "shuffle")

    shfl_up = shfl_down = shfl_xor = shfl

    def vote_any(self, predicate, mask=None):
        return _unsupported("event", "vote")

    vote_all = ballot = vote_any

    def device_assert(self, condition, message: str = "device assertion failed"):
        return _unsupported("event", "device_assert")

    def alloca(self, name: str, size: int, dtype):
        raise JitAbort("alloc", "alloca")

    def shared_alloc(self, name: str, size: int, dtype):
        raise JitAbort("alloc", "shared_alloc")
