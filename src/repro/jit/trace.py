"""Trace cache: memoized stability verdicts per (kernel, block shape).

What is cached — and, deliberately, what is *not*
=================================================

A compiled warp script embeds concrete data: gathered load values, the
store values computed from them, precomputed sector lists.  Those are
valid only for the exact memory contents at compile time, so **scripts
are never reused across launches** — every launch re-traces.  What *is*
stable across launches is the **verdict**: whether this kernel code, at
this block shape, traces cleanly or deopts (and why).  Negative
verdicts are the valuable half: a kernel that aborts on, say, an atomic
will abort the same way every launch, and replaying the recorded reason
skips the doomed dry-run entirely.

The key is ``(kernel code object, block_id, num_blocks, block_dim,
warp_size)``.  Keying by *code object* (not function object) means
repeated launches of a re-created closure hit; including ``block_id``
keeps per-launch ``kc.extra`` deopt counts executor-independent (a
serial run and a forked worker see the same per-block verdict
history for a given launch sequence).

Staleness is sound by construction: a stale *negative* verdict only
costs speed (the warp falls back to the bit-identical interpreter); a
positive verdict is re-validated by the fresh trace every launch.  One
observable wrinkle, documented in docs/PERF.md: if the same code object
is relaunched with a *different closure* whose deopt reason differs,
the replayed ``jit_deopt_<reason>`` label reflects the first-seen
reason.  Directed tests that assert specific reasons use distinct
kernel definitions for exactly this reason.
"""

from __future__ import annotations

import threading

_CACHE_CAP = 4096

_MISS = object()


class TraceCache:
    """Bounded FIFO map from trace key to stability verdict.

    A verdict is ``None`` (compiled cleanly) or a deopt reason string.
    Thread-safe: the serve tier runs launches from multiple threads, and
    the FIFO trim in :meth:`store` is a compound read-modify-write that
    would corrupt the dict under interleaving without the lock.
    """

    __slots__ = ("cap", "_entries", "_lock")

    def __init__(self, cap: int = _CACHE_CAP) -> None:
        self.cap = cap
        self._entries: dict = {}
        self._lock = threading.Lock()

    def lookup(self, key):
        """``(verdict, found)`` — ``found`` distinguishes a miss from a
        cached-compiled verdict."""
        with self._lock:
            v = self._entries.get(key, _MISS)
        if v is _MISS:
            return None, False
        return v, True

    def store(self, key, verdict) -> None:
        with self._lock:
            entries = self._entries
            if key not in entries and len(entries) >= self.cap:
                # FIFO trim: drop the oldest entry (insertion-ordered dict).
                entries.pop(next(iter(entries)))
            entries[key] = verdict

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-global cache shared by all devices (forked workers inherit a
#: copy-on-write snapshot; divergent temperature across processes is why
#: hit/miss counts live in GLOBAL_STATS, never in ``kc.extra``).
TRACE_CACHE = TraceCache()


def trace_key(entry, block_id: int, num_blocks: int, block_dim: int, warp_size: int):
    """Cache key for one block's trace; ``None`` if ``entry`` is unkeyable."""
    code = getattr(entry, "__code__", entry)
    try:
        hash(code)
    except TypeError:
        return None
    return (code, block_id, num_blocks, block_dim, warp_size)
