"""Scripted consumption: run a compiled block and keep every counter honest.

:func:`try_run_jit` is the third round engine
(:meth:`repro.gpu.block.ThreadBlock.run` dispatches to it when the
block's engine is ``"jit"``).  It checks the trace cache, compiles the
block (:mod:`repro.jit.compile`), and on success *consumes* the warp
scripts: one precomputed step per warp per round, in the exact
ascending ``(round, warp)`` order — and therefore the exact L1-cache
evolution, counter stream, store commit order, and fault position — the
interpreters produce.  On any guard failure it returns ``None`` with
zero side effects committed, and the caller falls back to the fast
interpreter, which replays the block from round zero ("replay from the
last round boundary" is trivially exact because compilation commits
nothing).
"""

from __future__ import annotations

from repro.gpu.memory import PAGE_SHIFT
from repro.jit.compile import compile_block
from repro.jit.stats import GLOBAL_STATS
from repro.jit.trace import TRACE_CACHE, trace_key
from repro.jit.vector import JitAbort


def try_run_jit(block):
    """Attempt JIT execution of ``block``.

    Returns the block's :class:`~repro.gpu.counters.BlockCounters` on
    success, or ``None`` (having committed nothing) when the block must
    deoptimize to the interpreter.  Canonical kernel errors — memory
    faults with their partial commits — raise exactly as the
    interpreters would.
    """
    stats = getattr(block, "jit_stats", None)
    g = GLOBAL_STATS
    key = trace_key(
        block._entry,
        block.block_id,
        block.num_blocks,
        block.num_threads,
        block.params.warp_size,
    )
    if key is None:
        verdict, found = None, False
    else:
        verdict, found = TRACE_CACHE.lookup(key)
    if found:
        g.trace_cache_hits += 1
    else:
        g.trace_cache_misses += 1
    if found and verdict is not None:
        # Known-unstable trace: replay the recorded deopt without
        # re-running the doomed dry-run.
        if stats is not None:
            stats.note_deopt(verdict)
        g.deopts[verdict] += 1
        return None
    try:
        scripts = compile_block(block)
    except JitAbort as abort:
        reason = abort.reason
    except Exception:
        # Any unexpected failure mid-trace is a guard by definition:
        # nothing was committed, and the interpreter will reproduce the
        # kernel's canonical behaviour (including its exceptions).
        reason = "error"
    else:
        if key is not None:
            TRACE_CACHE.store(key, None)
        if stats is not None:
            stats.note_compiled(block.num_warps)
        g.blocks_compiled += 1
        g.warps_compiled += block.num_warps
        return _consume(block, scripts)
    if key is not None:
        TRACE_CACHE.store(key, reason)
    if stats is not None:
        stats.note_deopt(reason)
    g.deopts[reason] += 1
    return None


def _consume(block, scripts):
    """Execute compiled warp scripts round by round.

    Mirrors the fast engine's observable order exactly: within a round,
    warps commit and account in ascending order; a warp's store commits
    before its group is accounted; the round's ``lane_steps``/
    ``mem_serial_rounds``/``rounds`` updates land after the last warp.
    """
    c = block.counters
    params = block.params
    access = block._l1.access
    rec = block.recorder
    cost_ld = block._cost_ld
    cost_st = block._cost_st
    sector_cycles = params.sector_cycles
    l1_sector_cycles = params.l1_sector_cycles
    lsu_cycles = params.lsu_transaction_cycles
    maxlen = 0
    for s in scripts:
        if len(s.steps) > maxlen:
            maxlen = len(s.steps)
    # Counters accumulate in locals for speed and flush to the block's
    # BlockCounters at the end (or just before a fault raises, so the
    # partial state an error leaves behind matches the interpreters).
    issues = c.issues
    issue_cycles = c.issue_cycles
    loads = c.loads
    stores = c.stores
    l1_hits = c.l1_hits
    l1_misses = c.l1_misses
    gl_sectors = c.global_load_sectors
    gs_sectors = c.global_store_sectors
    lsu = c.lsu_transactions
    mem_cycles = c.mem_cycles
    lane_steps = c.lane_steps
    serial_rounds = c.mem_serial_rounds
    rounds = c.rounds
    for r in range(maxlen):
        stall = False
        advanced = 0
        for script in scripts:
            steps = script.steps
            if r >= len(steps):
                continue
            step = steps[r]
            tag = step[0]
            if tag == "C":
                issues += 1
                issue_cycles += step[1]
                advanced += script.nlanes
            elif tag == "L":
                _, npos, nelem, secs, transactions = step
                issues += 1
                loads += nelem
                issue_cycles += cost_ld * npos
                hits, misses = access(secs)
                l1_hits += hits
                l1_misses += misses
                gl_sectors += misses
                if misses:
                    stall = True
                lsu += transactions
                mem_cycles += (
                    misses * sector_cycles
                    + hits * l1_sector_cycles
                    + transactions * lsu_cycles
                )
                advanced += script.nlanes
            elif tag == "S":
                _, npos, nelem, secs, transactions, buf, commits = step
                mark = buf.mark_dirty_sel
                if rec is not None and rec.tracks(buf):
                    for sel, values in commits:
                        rec.on_store_bulk(buf, sel, values)
                        buf.data[sel] = values
                        mark(sel)
                else:
                    data = buf.data
                    for sel, values in commits:
                        data[sel] = values
                        mark(sel)
                issues += 1
                stores += nelem
                issue_cycles += cost_st * npos
                hits, misses = access(secs)
                l1_hits += hits
                l1_misses += misses
                gs_sectors += misses
                lsu += transactions
                mem_cycles += (
                    misses * sector_cycles
                    + hits * l1_sector_cycles
                    + transactions * lsu_cycles
                )
                advanced += script.nlanes
            else:  # 'F' — commit the lane-major prefix, then fault.
                c.issues = issues
                c.issue_cycles = issue_cycles
                c.loads = loads
                c.stores = stores
                c.l1_hits = l1_hits
                c.l1_misses = l1_misses
                c.global_load_sectors = gl_sectors
                c.global_store_sectors = gs_sectors
                c.lsu_transactions = lsu
                c.mem_cycles = mem_cycles
                c.lane_steps = lane_steps
                c.mem_serial_rounds = serial_rounds
                c.rounds = rounds
                _, buf, prefix, bad_idx = step
                tracked = rec is not None and rec.tracks(buf)
                data = buf.data
                dirty = buf.dirty
                for i, v in prefix:
                    if tracked:
                        rec.on_store(buf, i, v)
                    data[i] = v
                    dirty[i >> PAGE_SHIFT] = 1
                buf.check_index(bad_idx)
                raise AssertionError("unreachable: bad_idx was in bounds")
        lane_steps += advanced
        if stall:
            serial_rounds += 1
        rounds += 1
    c.issues = issues
    c.issue_cycles = issue_cycles
    c.loads = loads
    c.stores = stores
    c.l1_hits = l1_hits
    c.l1_misses = l1_misses
    c.global_load_sectors = gl_sectors
    c.global_store_sectors = gs_sectors
    c.lsu_transactions = lsu
    c.mem_cycles = mem_cycles
    c.lane_steps = lane_steps
    c.mem_serial_rounds = serial_rounds
    c.rounds = rounds
    return c
