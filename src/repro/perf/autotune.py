"""Group-size auto-tuning — §6.5's advice, mechanized.

The paper's best-practices section ends with "It is likely best to
experiment with the different options to see which fits the specific
scenario best"; :func:`best_simd_len` does that experiment: run the caller's
kernel at every candidate group size, verify each run, and return the
cheapest.  Candidates default to the divisors of the warp size, optionally
filtered to those minimizing lane waste for a known inner trip count (the
paper's "choosing sizes that best evenly divide our loop trip count").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple


@dataclass
class TuneResult:
    """Outcome of a group-size tuning sweep."""

    best: int
    cycles: Dict[int, float]

    @property
    def speedup_over_worst(self) -> float:
        return max(self.cycles.values()) / self.cycles[self.best]

    def describe(self) -> str:
        lines = [f"best simd_len: {self.best}"]
        for g in sorted(self.cycles):
            mark = "  <-" if g == self.best else ""
            lines.append(f"  g={g:<3} {self.cycles[g]:>12,.0f} cycles{mark}")
        return "\n".join(lines)


def lane_waste(trip: int, group: int) -> float:
    """Fraction of lane-slots idle when ``group`` lanes share ``trip`` work."""
    if trip <= 0:
        return 0.0
    passes = -(-trip // group)
    return (passes * group - trip) / (passes * group)


def candidate_groups(
    warp_size: int = 32,
    inner_trip: Optional[int] = None,
    max_waste: float = 1.0,
) -> Tuple[int, ...]:
    """Valid group sizes (divisors of the warp), waste-filtered if possible.

    With ``inner_trip`` given, candidates wasting more than ``max_waste``
    are dropped — unless that would drop everything, in which case the
    full divisor list is returned (never return an empty search space).
    """
    divisors = tuple(g for g in (1, 2, 4, 8, 16, 32, 64) if warp_size % g == 0 and g <= warp_size)
    if inner_trip is None:
        return divisors
    filtered = tuple(g for g in divisors if lane_waste(inner_trip, g) <= max_waste)
    return filtered or divisors


def best_simd_len(
    run: Callable[[int], float],
    groups: Sequence[int] = (1, 2, 4, 8, 16, 32),
) -> TuneResult:
    """Run ``run(simd_len) -> cycles`` for each candidate; return the best.

    ``run`` is expected to build a fresh device, launch, verify
    correctness, and return the cost-model cycles.
    """
    cycles = {int(g): float(run(int(g))) for g in groups}
    best = min(cycles, key=cycles.get)
    return TuneResult(best=best, cycles=cycles)
