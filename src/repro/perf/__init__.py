"""Experiment harness regenerating the paper's evaluation (Figs 9 and 10).

* :mod:`repro.perf.experiment` — one function per figure series, returning
  structured results with paper reference values attached;
* :mod:`repro.perf.sweep` — generic group-size / mode / parameter sweeps;
* :mod:`repro.perf.report` — speedup tables, ASCII bar charts, and the
  EXPERIMENTS.md row format.
"""

from repro.perf.experiment import (
    PAPER_FIG9,
    PAPER_FIG10,
    Fig9Result,
    Fig10Result,
    run_fig9,
    run_fig10,
)
from repro.perf.report import ascii_bars, fig9_table, fig10_table

__all__ = [
    "PAPER_FIG9",
    "PAPER_FIG10",
    "Fig9Result",
    "Fig10Result",
    "ascii_bars",
    "fig9_table",
    "fig10_table",
    "run_fig9",
    "run_fig10",
]
