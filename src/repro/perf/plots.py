"""Dependency-free SVG rendering of the reproduction figures.

``python -m repro.perf --svg DIR`` (and the benches, via these helpers)
writes stand-alone SVG files for Fig 9 (grouped bars of speedup per SIMD
group size, with the paper's reference line) and Fig 10 (relative speedup
bars per variant).  Hand-rolled SVG keeps the repository free of plotting
dependencies while still producing figures a reader can open.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.perf.experiment import Fig9Result, Fig10Result

_FONT = "font-family='Helvetica,Arial,sans-serif'"


def _svg_header(width: int, height: int, title: str) -> List[str]:
    return [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' "
        f"height='{height}' viewBox='0 0 {width} {height}'>",
        f"<rect width='{width}' height='{height}' fill='white'/>",
        f"<text x='{width / 2}' y='22' text-anchor='middle' {_FONT} "
        f"font-size='15' font-weight='bold'>{title}</text>",
    ]


def _bars(
    values: Dict, width: int, height: int, y0: float, unit: str, ref: float = None
) -> List[str]:
    """Vertical bars with value labels and an optional reference line."""
    parts: List[str] = []
    margin_l, margin_r, margin_b = 56, 18, 42
    plot_w = width - margin_l - margin_r
    plot_h = height - y0 - margin_b
    peak = max(list(values.values()) + ([ref] if ref else [])) * 1.15 or 1.0
    n = len(values)
    slot = plot_w / n
    bar_w = slot * 0.6

    # y axis + gridlines
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = y0 + plot_h * (1 - frac)
        val = peak * frac
        parts.append(
            f"<line x1='{margin_l}' y1='{y:.1f}' x2='{width - margin_r}' "
            f"y2='{y:.1f}' stroke='#ddd'/>"
        )
        parts.append(
            f"<text x='{margin_l - 6}' y='{y + 4:.1f}' text-anchor='end' "
            f"{_FONT} font-size='10' fill='#555'>{val:.2f}</text>"
        )
    for i, (label, value) in enumerate(values.items()):
        x = margin_l + i * slot + (slot - bar_w) / 2
        h = plot_h * value / peak
        y = y0 + plot_h - h
        parts.append(
            f"<rect x='{x:.1f}' y='{y:.1f}' width='{bar_w:.1f}' "
            f"height='{h:.1f}' fill='#4878a8'/>"
        )
        parts.append(
            f"<text x='{x + bar_w / 2:.1f}' y='{y - 4:.1f}' text-anchor='middle' "
            f"{_FONT} font-size='10'>{value:.2f}{unit}</text>"
        )
        parts.append(
            f"<text x='{x + bar_w / 2:.1f}' y='{y0 + plot_h + 16:.1f}' "
            f"text-anchor='middle' {_FONT} font-size='11'>{label}</text>"
        )
    if ref is not None:
        y = y0 + plot_h * (1 - ref / peak)
        parts.append(
            f"<line x1='{margin_l}' y1='{y:.1f}' x2='{width - margin_r}' "
            f"y2='{y:.1f}' stroke='#c0392b' stroke-dasharray='6,3'/>"
        )
        parts.append(
            f"<text x='{width - margin_r}' y='{y - 5:.1f}' text-anchor='end' "
            f"{_FONT} font-size='10' fill='#c0392b'>paper max {ref:.2f}</text>"
        )
    return parts


def fig9_svg(result: Fig9Result, width: int = 520, height: int = 320) -> str:
    """Render one Fig 9 series (speedup vs group size) as an SVG string."""
    parts = _svg_header(
        width, height,
        f"Fig 9 — {result.kernel}: speedup vs SIMD group size",
    )
    values = {str(g): s for g, s in sorted(result.speedups.items())}
    parts += _bars(values, width, height, y0=40, unit="x",
                   ref=result.paper["max_speedup"])
    parts.append(
        f"<text x='{width / 2}' y='{height - 8}' text-anchor='middle' "
        f"{_FONT} font-size='11' fill='#555'>SIMD group size "
        f"(baseline: two-level, {result.baseline_cycles:,.0f} cycles)</text>"
    )
    parts.append("</svg>")
    return "\n".join(parts)


def fig10_svg(result: Fig10Result, width: int = 460, height: int = 300) -> str:
    """Render one Fig 10 series (relative speedup per variant) as SVG."""
    parts = _svg_header(
        width, height,
        f"Fig 10 — {result.kernel}: relative speedup vs No-SIMD",
    )
    parts += _bars(dict(result.relative), width, height, y0=40, unit="x", ref=1.0)
    parts.append("</svg>")
    return "\n".join(parts)


def save_svg(svg: str, path: str) -> None:
    with open(path, "w") as fh:
        fh.write(svg)
