"""Generic parameter sweeps used by the ablation benches.

Each sweep returns a list of ``(parameter_value, LaunchResult)`` pairs so
benches can inspect cycles and any counter.  Sweeps build a fresh device
per point — runs never share cache or allocator state.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.gpu.costmodel import CostParams, benchmark_profile
from repro.gpu.device import Device


def sweep(
    values: Sequence,
    run_one: Callable[[Device, object], object],
    params: Optional[CostParams] = None,
) -> List[Tuple[object, object]]:
    """Run ``run_one(device, value)`` for each value on fresh devices."""
    out = []
    for value in values:
        dev = Device(params if params is not None else benchmark_profile())
        out.append((value, run_one(dev, value)))
    return out


def sharing_space_sweep(
    build_and_run: Callable[[Device, int], object],
    sizes: Sequence[int] = (256, 512, 1024, 2048, 4096),
    params: Optional[CostParams] = None,
) -> List[Tuple[int, object]]:
    """Ablation A1: sweep the variable sharing space size (§5.3.1).

    ``build_and_run(device, sharing_bytes)`` must launch a generic-mode
    simd kernel with the given sharing space and return its LaunchResult;
    callers then compare cycles and ``omp_sharing_fallbacks``.
    """
    return sweep(sizes, build_and_run, params)


def group_size_sweep(
    build_and_run: Callable[[Device, int], object],
    groups: Sequence[int] = (1, 2, 4, 8, 16, 32),
    params: Optional[CostParams] = None,
) -> List[Tuple[int, object]]:
    """Sweep SIMD group sizes (the Fig 9 x-axis)."""
    return sweep(groups, build_and_run, params)
