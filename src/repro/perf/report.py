"""Result formatting: tables, ASCII figures, EXPERIMENTS.md rows.

The benches print these so a run of ``pytest benchmarks/ --benchmark-only``
reproduces the paper's figures as text next to the wall-clock numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

from repro.perf.experiment import Fig9Result, Fig10Result


def ascii_bars(
    series: Dict, width: int = 40, fmt: str = "{:>10}", unit: str = "x"
) -> str:
    """Horizontal ASCII bar chart of a label → value mapping."""
    if not series:
        return "(empty)"
    peak = max(series.values())
    lines = []
    for label, value in series.items():
        bar = "#" * max(1, round(width * value / peak)) if peak > 0 else ""
        lines.append(f"{fmt.format(str(label))} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def fig9_table(result: Fig9Result) -> str:
    """Fig 9 series as a markdown-ish table with the paper reference."""
    lines = [
        f"Fig 9 — {result.kernel}: speedup over the two-level baseline "
        f"({result.baseline_cycles:.0f} cycles)",
        "  group   speedup   cycles",
    ]
    for g, s in sorted(result.speedups.items()):
        marker = "  <- best" if g == result.best_group else ""
        lines.append(f"  {g:>5}   {s:6.2f}x   {result.cycles[g]:9.0f}{marker}")
    lines.append(
        f"  paper: max {result.paper['max_speedup']:.2f}x at group "
        f"{result.paper['best_group']} | measured: max "
        f"{result.max_speedup:.2f}x at group {result.best_group}"
    )
    lines.append(ascii_bars({g: s for g, s in sorted(result.speedups.items())}))
    return "\n".join(lines)


def fig10_table(result: Fig10Result) -> str:
    """Fig 10 series: relative speedup of each variant vs "No SIMD"."""
    lines = [
        f"Fig 10 — {result.kernel}: relative speedup vs the No-SIMD build",
        "  variant         measured   paper",
    ]
    paper = {"no_simd": 1.0, **result.paper}
    for variant, rel in result.relative.items():
        lines.append(
            f"  {variant:<14}  {rel:6.3f}x   {paper.get(variant, float('nan')):5.2f}x"
        )
    lines.append(ascii_bars(result.relative))
    return "\n".join(lines)


def cost_breakdown(result) -> str:
    """Attribute a launch's cost-model terms (a roofline-style report).

    Takes a :class:`~repro.core.api.LaunchResult` and shows where the
    cycles come from: critical path (rounds + dependent-miss latency),
    issue throughput, memory throughput, and barriers — summed over blocks,
    so shares are indicative rather than a re-derivation of the wave max.
    """
    kc = result.counters
    params = result.cfg.params
    critical = (
        kc.rounds * params.round_latency
        + kc.total("mem_serial_rounds") * params.mem_latency_cycles
    )
    terms = {
        "critical path (rounds + mem latency)": critical,
        "issue throughput": kc.issue_cycles / params.issue_width,
        "memory throughput (DRAM+L1+LSU)": kc.mem_cycles,
        "barriers": kc.sync_cycles,
    }
    total = sum(terms.values()) or 1.0
    lines = [f"cost breakdown ({kc.cycles:,.0f} modelled cycles):"]
    for label, value in terms.items():
        lines.append(f"  {label:<38} {value:>12,.0f}  ({value / total:5.1%})")
    lines.append(
        f"  geometry: {kc.num_blocks} blocks x {kc.threads_per_block} threads, "
        f"{kc.blocks_per_sm}/SM resident, {kc.waves} wave(s)"
    )
    return "\n".join(lines)


def experiments_md_fig9(results: Iterable[Fig9Result]) -> str:
    """Markdown rows for EXPERIMENTS.md (Fig 9 section)."""
    lines = [
        "| kernel | paper best | paper max | measured best | measured max |",
        "|---|---|---|---|---|",
    ]
    for r in results:
        lines.append(
            f"| {r.kernel} | g={r.paper['best_group']} | "
            f"{r.paper['max_speedup']:.2f}x | g={r.best_group} | "
            f"{r.max_speedup:.2f}x |"
        )
    return "\n".join(lines)


def experiments_md_fig10(results: Iterable[Fig10Result]) -> str:
    """Markdown rows for EXPERIMENTS.md (Fig 10 section)."""
    lines = [
        "| kernel | paper SPMD | measured SPMD | paper generic | measured generic |",
        "|---|---|---|---|---|",
    ]
    for r in results:
        lines.append(
            f"| {r.kernel} | {r.paper['spmd_simd']:.2f}x | "
            f"{r.relative['spmd_simd']:.3f}x | {r.paper['generic_simd']:.2f}x | "
            f"{r.relative['generic_simd']:.3f}x |"
        )
    return "\n".join(lines)
