"""Regenerate the paper's evaluation from the command line.

Usage::

    python -m repro.perf                  # print Fig 9 + Fig 10 series
    python -m repro.perf --quick          # small problem sizes
    python -m repro.perf --markdown PATH  # also write EXPERIMENTS.md rows

Every run verifies numerical correctness against the NumPy references and
prints each figure series next to the paper's reference points.
"""

from __future__ import annotations

import argparse
import sys

from repro.perf.experiment import (
    PAPER_FIG9,
    PAPER_FIG10,
    run_fig9,
    run_fig10,
)
from repro.perf.report import (
    experiments_md_fig9,
    experiments_md_fig10,
    fig9_table,
    fig10_table,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Reproduce the paper's Fig 9 / Fig 10 evaluation.",
    )
    parser.add_argument("--quick", action="store_true", help="small problems")
    parser.add_argument(
        "--markdown", metavar="PATH", help="write markdown result rows to PATH"
    )
    parser.add_argument(
        "--svg", metavar="DIR", help="write one SVG figure per series into DIR"
    )
    parser.add_argument(
        "--only",
        choices=sorted(PAPER_FIG9) + sorted(PAPER_FIG10),
        help="run a single series",
    )
    args = parser.parse_args(argv)

    fig9_results, fig10_results = [], []
    for kernel in sorted(PAPER_FIG9):
        if args.only and args.only != kernel:
            continue
        r = run_fig9(kernel, quick=args.quick)
        fig9_results.append(r)
        print(fig9_table(r))
        print()
    for kernel in sorted(PAPER_FIG10):
        if args.only and args.only != kernel:
            continue
        r = run_fig10(kernel, quick=args.quick)
        fig10_results.append(r)
        print(fig10_table(r))
        print()

    if args.svg:
        import os

        from repro.perf.plots import fig9_svg, fig10_svg, save_svg

        os.makedirs(args.svg, exist_ok=True)
        for r in fig9_results:
            path = os.path.join(args.svg, f"fig9_{r.kernel}.svg")
            save_svg(fig9_svg(r), path)
            print(f"wrote {path}")
        for r in fig10_results:
            path = os.path.join(args.svg, f"fig10_{r.kernel}.svg")
            save_svg(fig10_svg(r), path)
            print(f"wrote {path}")

    if args.markdown:
        parts = []
        if fig9_results:
            parts += ["### Fig 9 (measured)", "", experiments_md_fig9(fig9_results), ""]
        if fig10_results:
            parts += ["### Fig 10 (measured)", "", experiments_md_fig10(fig10_results), ""]
        with open(args.markdown, "w") as fh:
            fh.write("\n".join(parts))
        print(f"wrote {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
