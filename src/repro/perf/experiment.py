"""Experiment definitions for the paper's two result figures.

Every experiment runs on the documented benchmark device profile
(:func:`repro.gpu.costmodel.benchmark_profile`) with geometries recorded in
:data:`FIG9_CONFIGS` / :data:`FIG10_CONFIG`, verifies numerical correctness
against the kernel's NumPy reference on every launch, and returns speedups
computed from cost-model cycles.  The paper's reference numbers (what Figs
9 and 10 show) are attached for the side-by-side in EXPERIMENTS.md.

``quick=True`` shrinks the problems ~4× for use inside the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.gpu.costmodel import CostParams, benchmark_profile
from repro.gpu.device import Device
from repro.kernels import ideal, laplace3d, muram_interpol, muram_transpose
from repro.kernels import sparse_matvec, su3

#: SIMD group sizes swept in Fig 9.
FIG9_GROUPS = (2, 4, 8, 16, 32)

#: Fig 9 reference points from the paper's text (§6.3).
PAPER_FIG9 = {
    "sparse_matvec": {"best_group": 8, "max_speedup": 3.5},
    "su3_bench": {"best_group": 4, "max_speedup": 1.3},
    "benchmark_kernel": {"best_group": 32, "max_speedup": 2.15},
}

#: Fig 10 reference points (§6.4): relative speedup vs the "No SIMD" build.
PAPER_FIG10 = {
    "laplace3d": {"spmd_simd": 1.02, "generic_simd": 0.85},
    "muram_transpose": {"spmd_simd": 1.00, "generic_simd": 0.85},
    "muram_interpol": {"spmd_simd": 1.02, "generic_simd": 0.85},
}

#: Launch geometry per Fig 9 kernel: (baseline kwargs, simd kwargs, data kwargs).
FIG9_CONFIGS = {
    "sparse_matvec": {
        "data": {"n_rows": 512, "n_cols": 512, "mean_nnz": 12.0},
        "base": {"num_teams": 16, "team_size": 32},
        "simd": {"num_teams": 16, "team_size": 256},
        "quick_data": {"n_rows": 128, "n_cols": 128, "mean_nnz": 10.0},
        "quick_base": {"num_teams": 8, "team_size": 32},
        "quick_simd": {"num_teams": 8, "team_size": 128},
    },
    "su3_bench": {
        "data": {"sites": 2048},
        "base": {"num_teams": 16, "team_size": 128},
        "simd": {"num_teams": 16, "team_size": 128},
        "quick_data": {"sites": 512},
        "quick_base": {"num_teams": 8, "team_size": 64},
        "quick_simd": {"num_teams": 8, "team_size": 64},
    },
    "benchmark_kernel": {
        "data": {"n_rows": 256},
        "base": {"num_teams": 16, "team_size": 128},
        "simd": {"num_teams": 16, "team_size": 128},
        "quick_data": {"n_rows": 128},
        "quick_base": {"num_teams": 8, "team_size": 64},
        "quick_simd": {"num_teams": 8, "team_size": 64},
    },
}

FIG10_CONFIG = {
    "data": {"nx": 16, "ny": 16},
    "launch": {"num_teams": 16, "team_size": 128, "simd_len": 32},
    "quick_data": {"nx": 8, "ny": 8},
    "quick_launch": {"num_teams": 8, "team_size": 64, "simd_len": 32},
}

FIG10_KERNELS = {
    "laplace3d": laplace3d,
    "muram_transpose": muram_transpose,
    "muram_interpol": muram_interpol,
}

FIG10_VARIANTS = ("no_simd", "spmd_simd", "generic_simd")


@dataclass
class Fig9Result:
    """One Fig 9 series: speedup over the two-level baseline per group size."""

    kernel: str
    baseline_cycles: float
    cycles: Dict[int, float]
    speedups: Dict[int, float]
    paper: Dict[str, float]

    @property
    def best_group(self) -> int:
        return max(self.speedups, key=self.speedups.get)

    @property
    def max_speedup(self) -> float:
        return max(self.speedups.values())


@dataclass
class Fig10Result:
    """One Fig 10 series: relative speedup of each variant vs "No SIMD"."""

    kernel: str
    cycles: Dict[str, float]
    relative: Dict[str, float]
    paper: Dict[str, float]


def _check(data, label: str) -> None:
    if not data.check():
        raise ReproError(f"{label}: device result does not match the reference")


def _device(params: Optional[CostParams]) -> Device:
    return Device(params if params is not None else benchmark_profile())


def run_fig9_sparse(params=None, quick: bool = False) -> Fig9Result:
    cfg = FIG9_CONFIGS["sparse_matvec"]
    dev = _device(params)
    data = sparse_matvec.build_data(dev, **cfg["quick_data" if quick else "data"])
    base = sparse_matvec.run_two_level(
        dev, data, **cfg["quick_base" if quick else "base"]
    )
    _check(data, "sparse_matvec baseline")
    cycles, speed = {}, {}
    for g in FIG9_GROUPS:
        r = sparse_matvec.run_simd(
            dev, data, simd_len=g, **cfg["quick_simd" if quick else "simd"]
        )
        _check(data, f"sparse_matvec simd g={g}")
        cycles[g] = r.cycles
        speed[g] = base.cycles / r.cycles
    return Fig9Result(
        "sparse_matvec", base.cycles, cycles, speed, PAPER_FIG9["sparse_matvec"]
    )


def run_fig9_su3(params=None, quick: bool = False) -> Fig9Result:
    cfg = FIG9_CONFIGS["su3_bench"]
    dev = _device(params)
    data = su3.build_data(dev, **cfg["quick_data" if quick else "data"])
    base = su3.run_baseline(dev, data, **cfg["quick_base" if quick else "base"])
    _check(data, "su3 baseline")
    cycles, speed = {}, {}
    for g in FIG9_GROUPS:
        r = su3.run_simd(dev, data, simd_len=g, **cfg["quick_simd" if quick else "simd"])
        _check(data, f"su3 simd g={g}")
        cycles[g] = r.cycles
        speed[g] = base.cycles / r.cycles
    return Fig9Result("su3_bench", base.cycles, cycles, speed, PAPER_FIG9["su3_bench"])


def run_fig9_ideal(params=None, quick: bool = False) -> Fig9Result:
    cfg = FIG9_CONFIGS["benchmark_kernel"]
    dev = _device(params)
    data = ideal.build_data(dev, **cfg["quick_data" if quick else "data"])
    base = ideal.run_baseline(dev, data, **cfg["quick_base" if quick else "base"])
    _check(data, "benchmark kernel baseline")
    cycles, speed = {}, {}
    for g in FIG9_GROUPS:
        r = ideal.run_simd(
            dev, data, simd_len=g, **cfg["quick_simd" if quick else "simd"]
        )
        _check(data, f"benchmark kernel simd g={g}")
        cycles[g] = r.cycles
        speed[g] = base.cycles / r.cycles
    return Fig9Result(
        "benchmark_kernel", base.cycles, cycles, speed, PAPER_FIG9["benchmark_kernel"]
    )


FIG9_RUNNERS: Dict[str, Callable] = {
    "sparse_matvec": run_fig9_sparse,
    "su3_bench": run_fig9_su3,
    "benchmark_kernel": run_fig9_ideal,
}


def run_fig9(kernel: str, params=None, quick: bool = False) -> Fig9Result:
    """Run one Fig 9 series by kernel name."""
    try:
        runner = FIG9_RUNNERS[kernel]
    except KeyError:
        raise ReproError(
            f"unknown Fig 9 kernel {kernel!r}; expected {sorted(FIG9_RUNNERS)}"
        ) from None
    return runner(params=params, quick=quick)


def run_fig10(kernel: str, params=None, quick: bool = False) -> Fig10Result:
    """Run one Fig 10 series (three variants) by kernel name."""
    try:
        mod = FIG10_KERNELS[kernel]
    except KeyError:
        raise ReproError(
            f"unknown Fig 10 kernel {kernel!r}; expected {sorted(FIG10_KERNELS)}"
        ) from None
    dev = _device(params)
    data = mod.build_data(dev, **FIG10_CONFIG["quick_data" if quick else "data"])
    launch = FIG10_CONFIG["quick_launch" if quick else "launch"]
    cycles: Dict[str, float] = {}
    for variant in FIG10_VARIANTS:
        r = mod.run(dev, data, variant, **launch)
        _check(data, f"{kernel} {variant}")
        cycles[variant] = r.cycles
    base = cycles["no_simd"]
    relative = {v: base / cycles[v] for v in FIG10_VARIANTS}
    return Fig10Result(kernel, cycles, relative, PAPER_FIG10[kernel])
