"""repro — reproduction of "Implementing OpenMP's SIMD Directive in LLVM's
GPU Runtime" (ICPP 2023).

Layers (bottom-up):

* :mod:`repro.gpu` — a SIMT GPU simulator (the hardware substrate).
* :mod:`repro.runtime` — the OpenMP device runtime with the paper's
  three-level parallelism: ``__target_init``, ``__parallel``, ``__simd``,
  SIMD groups, state machines, and the variable sharing space.
* :mod:`repro.codegen` — the mini Clang/OpenMP-IRBuilder: directive trees,
  canonical loops, outlining, globalization, SPMDization.
* :mod:`repro.core` — the public API most users want: build a directive
  program, compile it, launch it.
* :mod:`repro.kernels` — the paper's evaluation codes.
* :mod:`repro.perf` — the experiment harness regenerating Fig 9 / Fig 10.

Quickstart::

    import numpy as np
    from repro import Device, omp

    dev = Device()
    x = dev.from_array("x", np.arange(1 << 14, dtype=np.float64))
    y = dev.from_array("y", np.zeros(1 << 14))

    def body(tc, i, args):
        v = yield from tc.load(args["x"], i)
        yield from tc.store(args["y"], i, 2.0 * v)

    prog = omp.target(
        omp.teams_distribute_parallel_for(x.size, body=body)
    )
    omp.launch(dev, prog, num_teams=32, team_size=128, args={"x": x, "y": y})
"""

from repro._version import __version__
from repro.gpu import Device
from repro.core import api as omp

__all__ = ["Device", "omp", "__version__"]
