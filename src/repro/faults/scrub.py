"""ECC-style memory scrubbing and launch-state snapshots.

Real GPUs detect in-flight memory corruption with ECC; this module gives
the simulated device the same contract in a form the fault plane can
exercise.  Before a launch (when a fault plan or launch retry is active)
the device captures a :class:`MemorySnapshot` of every live global
buffer: a full data copy plus per-page CRC32 checksums.  The snapshot
then serves three masters:

* **scrub** — after bit-flips are injected (or any time
  :meth:`MemorySnapshot.scrub` is called before execution), pages whose
  checksum no longer matches are detected; repairable faults are healed
  from the copy, unrepairable ones surface as
  :class:`~repro.errors.MemoryFault` carrying injection provenance.
* **rollback** — the launch retry ladder (``retries=`` on
  :meth:`~repro.gpu.device.Device.launch`) restores buffer contents and
  frees kernel-time allocations so a failed attempt leaves no partial
  state.
* **verification** — tests compare post-recovery memory against the
  snapshot-restored fault-free run.

Pages are ~:data:`PAGE_ELEMS` elements; the checksum granularity only
affects detection *reporting* (which pages were dirty), not correctness,
because repair copies whole pages from the snapshot.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import MemoryFault

#: Elements per checksum page.
PAGE_ELEMS = 256


def _page_checksums(data: np.ndarray) -> List[int]:
    raw = data.view(np.uint8)
    page_bytes = PAGE_ELEMS * data.dtype.itemsize
    return [zlib.crc32(raw[off:off + page_bytes].tobytes())
            for off in range(0, max(raw.nbytes, 1), max(page_bytes, 1))]


class MemorySnapshot:
    """Copy-plus-checksums of all live global buffers at one instant."""

    def __init__(self, gmem) -> None:
        self.gmem = gmem
        self.mark = gmem.mark()
        self._copies: Dict[int, np.ndarray] = {}
        self._checksums: Dict[int, List[int]] = {}
        self._names: Dict[int, str] = {}
        for buf in gmem.live_buffers():
            if buf.space != "global":
                continue
            self._copies[buf.handle] = buf.data.copy()
            self._checksums[buf.handle] = _page_checksums(buf.data)
            self._names[buf.handle] = buf.name

    # -- detection ---------------------------------------------------------
    def dirty_pages(self) -> List[Tuple[int, int]]:
        """``(handle, page)`` rows whose checksum no longer matches."""
        dirty = []
        for handle, sums in self._checksums.items():
            try:
                buf = self.gmem.lookup(handle)
            except MemoryFault:
                continue  # freed since the snapshot; nothing to scrub
            now = _page_checksums(buf.data)
            for page, (a, b) in enumerate(zip(sums, now)):
                if a != b:
                    dirty.append((handle, page))
        return dirty

    def scrub(self, plan=None, repair: bool = True) -> int:
        """Detect corrupted pages; repair from the copy or raise.

        Returns the number of dirty pages found.  With ``repair=False``
        (an unrepairable fault spec) the first dirty page raises
        :class:`MemoryFault` with provenance naming the buffer, page,
        and — when ``plan`` is given — the injection seed.
        """
        dirty = self.dirty_pages()
        for handle, page in dirty:
            name = self._names[handle]
            if not repair:
                seed = f", fault seed {plan.seed}" if plan is not None else ""
                raise MemoryFault(
                    f"ECC scrub: uncorrectable corruption in buffer {name!r} "
                    f"page {page}{seed}"
                )
            buf = self.gmem.lookup(handle)
            lo = page * PAGE_ELEMS
            hi = min(lo + PAGE_ELEMS, buf.size)
            buf.data[lo:hi] = self._copies[handle][lo:hi]
        return len(dirty)

    # -- rollback ----------------------------------------------------------
    def restore(self) -> None:
        """Rewind global memory to the snapshot instant.

        Buffer contents are restored from the copies and buffers
        allocated after the snapshot are freed (global) or dropped
        (registered shared/local), so a retried launch starts from the
        same state the failed attempt saw.
        """
        for buf in list(self.gmem.allocated_since(self.mark)):
            if buf.space == "global":
                self.gmem.free(buf)
            else:
                self.gmem.drop(buf)
        for handle, copy in self._copies.items():
            try:
                buf = self.gmem.lookup(handle)
            except MemoryFault:
                continue
            buf.data[:] = copy


def inject_bitflips(gmem, plan, spec, coords) -> int:
    """Flip ``spec.flips`` deterministic bits across live global buffers.

    Targets are drawn from :meth:`FaultPlan.rng` keyed by the firing
    coordinates, so a re-run with the same seed corrupts the same cells.
    Returns the number of flips applied (0 when no flippable buffer
    exists).  The caller records the fault with outcome provenance.
    """
    targets = [buf for buf in gmem.live_buffers()
               if buf.space == "global" and buf.size > 0]
    if not targets:
        return 0
    rng = plan.rng(spec.site, **coords)
    targets.sort(key=lambda b: b.handle)
    flips = 0
    for _ in range(max(1, spec.flips)):
        buf = rng.choice(targets)
        idx = rng.randrange(buf.size)
        bit = rng.randrange(buf.itemsize * 8)
        buf.flip_bit(idx, bit)
        flips += 1
    return flips
