"""ECC-style memory scrubbing and O(dirty-page) launch-state snapshots.

Real GPUs detect in-flight memory corruption with ECC; this module gives
the simulated device the same contract in a form the fault plane can
exercise.  Before a launch (when a fault plan or launch retry is active)
the device captures a :class:`MemorySnapshot` of every live global
buffer: a full data copy plus per-page CRC32 checksums.  The snapshot
then serves three masters:

* **scrub** — after bit-flips are injected (or any time
  :meth:`MemorySnapshot.scrub` is called before execution), pages whose
  checksum no longer matches are detected; repairable faults are healed
  from the copy, unrepairable ones surface as
  :class:`~repro.errors.MemoryFault` carrying injection provenance.
* **rollback** — the launch retry ladder (``retries=`` on
  :meth:`~repro.gpu.device.Device.launch`) restores buffer contents and
  frees kernel-time allocations so a failed attempt leaves no partial
  state.
* **verification** — tests compare post-recovery memory against the
  snapshot-restored fault-free run.

Pages are :data:`~repro.gpu.memory.PAGE_ELEMS` elements — the same
granularity as the buffers' dirty bitmaps, so one page index means the
same element span to the bitmap, the checksum table, and the repair
copy.

Cost model
==========

Construction and restore are **O(dirty pages)**, not O(live bytes):

* A snapshot *clears* every tracked buffer's dirty bitmap, opening a
  tracking window; each buffer's ``snap_epoch`` is recorded so the
  snapshot can later prove the bits still describe its own window.
* ``restore()`` re-copies only pages whose dirty bit is set.  If some
  other snapshot cleared the bitmap in between (epoch mismatch) it
  falls back to a full-buffer copy — correct either way, fast in the
  intended single-owner chains.
* ``MemorySnapshot(gmem, base=prev)`` *advances* a previous snapshot:
  it steals ``prev``'s copies/checksum storage and refreshes only the
  pages dirtied since, which is what makes the retry ladder's
  per-attempt snapshot and the serve tier's per-request cloning cheap.
  ``prev`` is consumed — using it afterwards raises.

Corruption *detection* (``dirty_pages``/``scrub``) intentionally stays
a full checksum scan: a bit-flip is modelled as a physical upset the
memory controller cannot see, so detection must not trust any write
tracking (and :meth:`~repro.gpu.memory.Buffer.flip_bit` marking its
page dirty is only for the rollback path, not relied on here).
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import MemoryFault
from repro.gpu.memory import PAGE_ELEMS


def _page_checksums(data: np.ndarray) -> List[int]:
    raw = data.view(np.uint8)
    page_bytes = PAGE_ELEMS * data.dtype.itemsize
    return [zlib.crc32(raw[off:off + page_bytes].tobytes())
            for off in range(0, max(raw.nbytes, 1), max(page_bytes, 1))]


def _page_crc(data: np.ndarray, lo: int, hi: int) -> int:
    """CRC32 of one page's element span — matches :func:`_page_checksums`
    for the same page (both hash the identical raw byte window)."""
    return zlib.crc32(np.ascontiguousarray(data[lo:hi]).view(np.uint8)
                      .tobytes())


class MemorySnapshot:
    """Copy-plus-checksums of all live global buffers at one instant.

    ``base`` chains snapshots: pass the previous attempt's (or previous
    request's) snapshot to pay only for pages dirtied since it was
    taken.  The base is consumed by the handoff.
    """

    def __init__(self, gmem, base: "MemorySnapshot | None" = None) -> None:
        self.gmem = gmem
        self.mark = gmem.mark()
        self._consumed = False
        if base is not None and (base._consumed or base.gmem is not gmem):
            raise ValueError("base snapshot already consumed or foreign")
        prev_copies = base._copies if base is not None else {}
        prev_sums = base._checksums if base is not None else {}
        prev_epochs = base._epochs if base is not None else {}
        self._copies: Dict[int, np.ndarray] = {}
        self._checksums: Dict[int, List[int]] = {}
        self._names: Dict[int, str] = {}
        self._epochs: Dict[int, int] = {}
        for buf in gmem.live_buffers():
            if buf.space != "global":
                continue
            handle = buf.handle
            copy = prev_copies.get(handle)
            if copy is not None and buf.snap_epoch == prev_epochs.get(handle):
                # The dirty bits describe exactly the window since
                # ``base`` — refresh only those pages in place.
                sums = prev_sums[handle]
                for page in buf.dirty_page_indices():
                    lo, hi = buf.page_span(page)
                    copy[lo:hi] = buf.data[lo:hi]
                    sums[page] = _page_crc(buf.data, lo, hi)
            else:
                copy = buf.data.copy()
                sums = _page_checksums(buf.data)
            buf.clear_dirty()
            self._copies[handle] = copy
            self._checksums[handle] = sums
            self._names[handle] = buf.name
            self._epochs[handle] = buf.snap_epoch
        if base is not None:
            # The storage moved; a restore through the stale base would
            # silently resurrect refreshed pages.  Fail loudly instead.
            base._consumed = True

    def _check_live(self) -> None:
        if self._consumed:
            raise RuntimeError(
                "snapshot was consumed as the base of a newer snapshot"
            )

    # -- detection ---------------------------------------------------------
    def dirty_pages(self) -> List[Tuple[int, int]]:
        """``(handle, page)`` rows whose checksum no longer matches."""
        self._check_live()
        dirty = []
        for handle, sums in self._checksums.items():
            try:
                buf = self.gmem.lookup(handle)
            except MemoryFault:
                continue  # freed since the snapshot; nothing to scrub
            now = _page_checksums(buf.data)
            for page, (a, b) in enumerate(zip(sums, now)):
                if a != b:
                    dirty.append((handle, page))
        return dirty

    def scrub(self, plan=None, repair: bool = True) -> int:
        """Detect corrupted pages; repair from the copy or raise.

        Returns the number of dirty pages found.  With ``repair=False``
        (an unrepairable fault spec) the first dirty page raises
        :class:`MemoryFault` with provenance naming the buffer, page,
        and — when ``plan`` is given — the injection seed.
        """
        dirty = self.dirty_pages()
        for handle, page in dirty:
            name = self._names[handle]
            if not repair:
                seed = f", fault seed {plan.seed}" if plan is not None else ""
                raise MemoryFault(
                    f"ECC scrub: uncorrectable corruption in buffer {name!r} "
                    f"page {page}{seed}"
                )
            buf = self.gmem.lookup(handle)
            lo = page * PAGE_ELEMS
            hi = min(lo + PAGE_ELEMS, buf.size)
            buf.data[lo:hi] = self._copies[handle][lo:hi]
        return len(dirty)

    # -- rollback ----------------------------------------------------------
    def restore(self) -> None:
        """Rewind global memory to the snapshot instant.

        Buffer contents are restored from the copies and buffers
        allocated after the snapshot are freed (global) or dropped
        (registered shared/local), so a retried launch starts from the
        same state the failed attempt saw.  Only dirty pages are copied
        back; an epoch mismatch (another snapshot cleared the bits in
        between) downgrades that buffer to a full copy.
        """
        self._check_live()
        for buf in list(self.gmem.allocated_since(self.mark)):
            if buf.space == "global":
                self.gmem.free(buf)
            else:
                self.gmem.drop(buf)
        for handle, copy in self._copies.items():
            try:
                buf = self.gmem.lookup(handle)
            except MemoryFault:
                continue
            if buf.snap_epoch == self._epochs[handle]:
                for page in buf.dirty_page_indices():
                    lo, hi = buf.page_span(page)
                    buf.data[lo:hi] = copy[lo:hi]
            else:
                buf.data[:] = copy
            # Post-restore the buffer equals this snapshot again: reopen
            # the window so a follow-up restore (or a chained snapshot)
            # stays O(dirty).
            buf.clear_dirty()
            self._epochs[handle] = buf.snap_epoch


def inject_bitflips(gmem, plan, spec, coords) -> int:
    """Flip ``spec.flips`` deterministic bits across live global buffers.

    Targets are drawn from :meth:`FaultPlan.rng` keyed by the firing
    coordinates, so a re-run with the same seed corrupts the same cells.
    Returns the number of flips applied (0 when no flippable buffer
    exists).  The caller records the fault with outcome provenance.
    """
    targets = [buf for buf in gmem.live_buffers()
               if buf.space == "global" and buf.size > 0]
    if not targets:
        return 0
    rng = plan.rng(spec.site, **coords)
    targets.sort(key=lambda b: b.handle)
    flips = 0
    for _ in range(max(1, spec.flips)):
        buf = rng.choice(targets)
        idx = rng.randrange(buf.size)
        bit = rng.randrange(buf.itemsize * 8)
        buf.flip_bit(idx, bit)
        flips += 1
    return flips
