"""repro.faults — deterministic fault injection and recovery campaigns.

The fault plane has two halves.  *Injection* is a :class:`FaultPlan`
(:mod:`repro.faults.plan`): a seeded, stateless decision oracle that hook
points across the stack consult — worker crash/hang in
:mod:`repro.exec.pool`, memory bit-flips via the ECC-style scrubber
(:mod:`repro.faults.scrub`), forced sharing-space overflow in
:mod:`repro.runtime.sharing`, transient atomic failure in
:mod:`repro.gpu.atomics`.  *Recovery* lives in the layers themselves:
the worker pool retries/redistributes/degrades instead of dying,
launches gain watchdogs and retry-with-rollback
(:meth:`repro.gpu.device.Device.launch`), and the scrubber repairs
flipped pages from snapshots.  Campaigns
(:mod:`repro.faults.campaign`, ``python -m repro.faults``) drive seeded
fault schedules over the evaluation kernels and sanitizer corpus and
assert recovered runs are bit-identical to fault-free serial runs.

Selection, most specific wins (mirroring the executor knob):

1. ``device.launch(..., faults=...)`` per launch;
2. ``Device(..., faults=...)`` per device;
3. :func:`set_default_faults` process-wide override (used by the
   campaign CLI);
4. the ``REPRO_FAULTS`` environment variable:

   ==============================  =====================================
   unset / ``""`` / ``off``        no fault plane (the zero-cost path)
   ``<seed>``                      plan with that seed and no specs —
                                   attached but inert, for off-path and
                                   plumbing checks
   ``<seed>:site[=prob][,...]``    plan with one spec per listed site;
                                   bare site means probability 1.0
   ==============================  =====================================

   Example: ``REPRO_FAULTS=42:worker.crash=0.5,sharing.overflow``.
"""

from __future__ import annotations

import os
import threading

from repro.errors import FaultInjectionError
from repro.faults.checkpoint import LaunchCheckpoint
from repro.faults.plan import (
    SITES,
    FaultCounters,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.faults.scrub import MemorySnapshot, inject_bitflips

__all__ = [
    "SITES",
    "FaultCounters",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "LaunchCheckpoint",
    "MemorySnapshot",
    "coerce_faults",
    "default_faults",
    "inject_bitflips",
    "set_default_faults",
]

#: Environment variable consulted by :func:`default_faults`.
FAULTS_ENV = "REPRO_FAULTS"

_override = None
_OFF = object()  # sentinel: override explicitly set to "no faults"
#: Serve-tier launches resolve the default from multiple threads; guard
#: the override like the executor default (see ``repro.exec``).
_override_lock = threading.Lock()


def set_default_faults(plan) -> None:
    """Install (or clear, with None) a process-wide default fault plan.

    Takes precedence over :data:`FAULTS_ENV`; pass ``False`` to force
    faults *off* even when the environment variable is set.  Thread-safe.
    """
    global _override
    with _override_lock:
        _override = _OFF if plan is False else plan


def coerce_faults(spec: str):
    """Parse a fault spec string (the ``REPRO_FAULTS`` grammar).

    Returns a :class:`FaultPlan` or None (for ``""``/``off``); an
    already-built plan passes through unchanged.
    """
    if isinstance(spec, FaultPlan):
        return spec
    spec = (spec or "").strip()
    if spec.lower() in ("", "off", "none"):
        return None
    head, _, tail = spec.partition(":")
    try:
        seed = int(head)
    except ValueError:
        raise FaultInjectionError(
            f"bad fault spec {spec!r}: expected <seed>[:site[=prob],...]"
        ) from None
    specs = []
    if tail:
        for part in tail.split(","):
            part = part.strip()
            if not part:
                continue
            site, _, prob = part.partition("=")
            try:
                probability = float(prob) if prob else 1.0
            except ValueError:
                raise FaultInjectionError(
                    f"bad probability in fault spec part {part!r}"
                ) from None
            specs.append(FaultSpec(site.strip(), probability=probability))
    return FaultPlan(seed=seed, specs=specs)


def default_faults():
    """The fault plan launches use when none is given explicitly.

    Re-reads the environment on every call so fixtures and campaign
    subprocesses pick up changes without import-order games.
    """
    if _override is not None:
        return None if _override is _OFF else _override
    return coerce_faults(os.environ.get(FAULTS_ENV, ""))
