"""Block-granular launch checkpoints: resume instead of full rollback.

The parallel engine runs **every block against the pre-launch snapshot**
and merges per-block :class:`~repro.exec.record.BlockRecord` deltas
afterwards (see :mod:`repro.exec.engine`).  That isolation is exactly
what makes a checkpoint sound: a completed block's record is a pure
function of the pre-launch state, so after the retry ladder rolls memory
back to the snapshot the record is *still valid* — it can be merged on a
later attempt as if the block had just run.  Side-state deltas ride the
records and apply only at merge time, so a resumed block's counters are
never double-counted.

:class:`LaunchCheckpoint` is the carrier.  ``Device.launch(retries=...,
resume=True)`` attaches one to the plan; when an attempt dies mid-flight
(watchdog timeout, worker crash exhausting the pool ladder) the engine
harvests every block that *did* complete into the checkpoint before the
error propagates, and the next attempt re-executes only the remainder —
``kc.extra["blocks_resumed"]``/``["blocks_replayed"]`` report the split.

Checkpoints also persist: :meth:`save`/:meth:`load` write the records
through an atomic tmp-rename with fsync, so a launch killed by process
death can resume in a fresh process (the serve tier's crash-recovery
path).  Only ``completed=True`` records are ever checkpointed — a
partial or erroring block re-executes from scratch.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Dict, Iterable, List, Optional, Set


class LaunchCheckpoint:
    """Completed per-block records for one logical launch.

    ``num_blocks``/``threads_per_block`` fingerprint the grid geometry;
    :meth:`matches` refuses to resume a plan with a different shape (the
    engine then falls back to full re-execution — a stale checkpoint can
    cost performance, never correctness).
    """

    def __init__(self, num_blocks: Optional[int] = None,
                 threads_per_block: Optional[int] = None) -> None:
        self.num_blocks = num_blocks
        self.threads_per_block = threads_per_block
        self.records: Dict[int, object] = {}

    # -- population --------------------------------------------------------
    def bind(self, num_blocks: int, threads_per_block: int) -> None:
        """Pin the grid geometry (first launch attempt); a geometry
        change discards previously checkpointed records."""
        if (self.num_blocks, self.threads_per_block) != (
                num_blocks, threads_per_block):
            self.records.clear()
        self.num_blocks = num_blocks
        self.threads_per_block = threads_per_block

    def add(self, records: Iterable[object]) -> int:
        """Absorb completed records; returns how many were new."""
        fresh = 0
        for rec in records:
            if rec is None or not getattr(rec, "completed", False):
                continue
            if getattr(rec, "error", None) is not None:
                continue
            if rec.block_id not in self.records:
                fresh += 1
            self.records[rec.block_id] = rec
        return fresh

    def clear(self) -> None:
        self.records.clear()

    # -- queries -----------------------------------------------------------
    def matches(self, num_blocks: int, threads_per_block: int) -> bool:
        return (self.num_blocks == num_blocks
                and self.threads_per_block == threads_per_block)

    def completed_ids(self) -> Set[int]:
        return set(self.records)

    def take(self, block_ids: Iterable[int]) -> List[object]:
        return [self.records[b] for b in block_ids if b in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return True  # an empty checkpoint is still a checkpoint

    # -- persistence -------------------------------------------------------
    def save(self, path: str) -> None:
        """Atomically persist (tmp + fsync + rename): a crash mid-save
        leaves the previous checkpoint file intact, never a torn one."""
        payload = pickle.dumps({
            "num_blocks": self.num_blocks,
            "threads_per_block": self.threads_per_block,
            "records": self.records,
        }, protocol=pickle.HIGHEST_PROTOCOL)
        directory = os.path.dirname(os.path.abspath(path)) or "."
        fd, tmp = tempfile.mkstemp(dir=directory, prefix=".ckpt-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str) -> "LaunchCheckpoint":
        """Load a saved checkpoint; a missing or unreadable file yields
        an empty checkpoint (resume then degrades to full execution)."""
        ckpt = cls()
        try:
            with open(path, "rb") as fh:
                state = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return ckpt
        ckpt.num_blocks = state.get("num_blocks")
        ckpt.threads_per_block = state.get("threads_per_block")
        records = state.get("records") or {}
        if isinstance(records, dict):
            ckpt.records = records
        return ckpt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LaunchCheckpoint(blocks={self.num_blocks}, "
                f"completed={len(self.records)})")
